//! The store: a directory of WAL segments and snapshot files.
//!
//! The directory listing is the manifest. WAL segments are named by the
//! epoch of their first record, snapshots by the epoch of the state they
//! capture, so ordering and coverage questions are answered by file names
//! alone; file *contents* are additionally checksummed frame by frame.
//!
//! Recovery discipline, enforced in [`Store::open`]:
//!
//! * leftover `.tmp` files (a crash mid-snapshot-write) are deleted;
//! * every frame of every segment is checksum-verified;
//! * a torn tail — the file ends mid-frame — is tolerated on the **newest**
//!   segment only, and is physically truncated so appends continue from a
//!   clean boundary; a tear anywhere else, or any CRC mismatch on a
//!   complete frame, is corruption and fails loudly;
//! * segment first-epochs must chain contiguously (a deleted middle
//!   segment is unrecoverable and fails loudly);
//! * a half-executed sweep needs no repair at all: pruning deletes
//!   newest-first (a delta falls before the base it builds on) and
//!   compaction ([`Store::sweep`]) deletes segments oldest-first, with
//!   the manifest updated only after each removal succeeds, so any
//!   surviving file set is one a clean store could have produced — the
//!   next open just recomputes the remaining [`SweepPlan`] from the
//!   directory listing.

use crate::error::StoreError;
use crate::metrics::StoreMetrics;
use crate::record::encode_frame;
use crate::segment::{scan_segment_with, segment_file_name, SegmentScan};
use crate::sweep::{SnapshotMeta, SweepOutcome, SweepPlan};
use crate::vfs::{RealFs, Vfs, VfsFile};
use nemo_obs::trace::Tracer;
use nemo_obs::Class;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// When appended records reach the disk platter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every appended record: no acknowledged record is ever
    /// lost, at one disk round-trip per mutation.
    EveryRecord,
    /// No automatic `fsync`; the caller invokes [`Store::sync`] at batch
    /// boundaries, amortizing the round-trip over the batch.
    EveryBatch,
    /// Never `fsync` (tests and benchmarks): durability degrades to
    /// whatever the OS page cache survives.
    Never,
    /// Group commit: `append` itself never fsyncs (like [`EveryBatch`]),
    /// but a committer — [`crate::group::GroupCommitter`] — coalesces
    /// concurrent appenders onto one [`Store::sync`] per batch, so every
    /// acknowledged record is durable ([`EveryRecord`] semantics) at a
    /// fraction of the fsync count. Segment and snapshot metadata fsyncs
    /// stay on, exactly as under [`EveryBatch`].
    ///
    /// [`EveryRecord`]: FsyncPolicy::EveryRecord
    /// [`EveryBatch`]: FsyncPolicy::EveryBatch
    GroupCommit {
        /// Sync as soon as this many records are pending (at least 1).
        max_batch: u32,
        /// Sync no later than this many microseconds after the oldest
        /// pending record arrived, even if the batch is not full.
        max_wait_micros: u64,
    },
}

impl FsyncPolicy {
    /// True when metadata operations (segment creation, snapshot install,
    /// directory renames) must reach the platter — every policy except
    /// [`FsyncPolicy::Never`].
    pub fn durable_metadata(&self) -> bool {
        !matches!(self, FsyncPolicy::Never)
    }
}

/// File extension of snapshot documents.
pub const SNAPSHOT_EXT: &str = "snap";

/// File name of the snapshot capturing state at `epoch`.
pub fn snapshot_file_name(epoch: u64) -> String {
    format!("snap-{epoch:020}.{SNAPSHOT_EXT}")
}

/// Parses a *full* snapshot file name back to its epoch. Delta snapshot
/// names ([`delta_snapshot_file_name`]) do not match — readers predating
/// the delta format simply never see delta files.
pub fn parse_snapshot_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("snap-")?;
    let digits = rest.strip_suffix(&format!(".{SNAPSHOT_EXT}"))?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// File name of a *delta* snapshot capturing state at `epoch` as a
/// difference against the snapshot at `base`. The base epoch lives in
/// the file name so retention and recovery can follow delta chains from
/// the directory listing alone, without opening documents.
pub fn delta_snapshot_file_name(epoch: u64, base: u64) -> String {
    format!("snap-{epoch:020}-from-{base:020}.{SNAPSHOT_EXT}")
}

/// Parses a delta snapshot file name back to `(epoch, base)`.
pub fn parse_delta_snapshot_name(name: &str) -> Option<(u64, u64)> {
    let rest = name.strip_prefix("snap-")?;
    let rest = rest.strip_suffix(&format!(".{SNAPSHOT_EXT}"))?;
    let (epoch_digits, base_digits) = rest.split_once("-from-")?;
    for digits in [epoch_digits, base_digits] {
        if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
    }
    Some((epoch_digits.parse().ok()?, base_digits.parse().ok()?))
}

/// Sizing and durability knobs of one store.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Magic string written into (and required from) every segment header;
    /// the payload format version tag (e.g. `nemo-wal/v1`).
    pub magic: String,
    /// Automatic fsync behavior on append.
    pub fsync: FsyncPolicy,
    /// Seal the active segment and open a new one once it holds at least
    /// this many bytes.
    pub segment_max_bytes: u64,
    /// Report a snapshot as due once this many WAL bytes accumulated since
    /// the newest snapshot (0 disables the byte trigger).
    pub snapshot_every_bytes: u64,
    /// Report a snapshot as due once this many epochs passed since the
    /// newest snapshot (0 disables the epoch trigger).
    pub snapshot_every_epochs: u64,
    /// How many snapshots to retain (at least 1). Older ones — except
    /// bases that a retained delta snapshot still builds on — are deleted
    /// by [`Store::sweep`], not on install.
    pub keep_snapshots: usize,
}

impl StoreConfig {
    /// A config with the given magic and defaults sized for serving: 1 MiB
    /// segments, batch-boundary fsync, snapshot every 256 KiB of WAL or
    /// 1024 epochs, two snapshots retained.
    pub fn new(magic: &str) -> Self {
        StoreConfig {
            magic: magic.to_string(),
            fsync: FsyncPolicy::EveryBatch,
            segment_max_bytes: 1 << 20,
            snapshot_every_bytes: 256 << 10,
            snapshot_every_epochs: 1024,
            keep_snapshots: 2,
        }
    }
}

/// A fully validated, no-longer-written segment.
#[derive(Debug)]
struct Sealed {
    path: PathBuf,
    first_epoch: u64,
    records: u64,
    bytes: u64,
}

/// The newest segment, open for append.
#[derive(Debug)]
struct Active {
    file: Box<dyn VfsFile>,
    path: PathBuf,
    first_epoch: u64,
    records: u64,
    bytes: u64,
}

impl Active {
    fn last_epoch(&self) -> Option<u64> {
        self.records.checked_sub(1).map(|i| self.first_epoch + i)
    }
}

/// What [`Store::open`] found and repaired.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OpenReport {
    /// Bytes cut off the newest segment's torn tail (0 on a clean open).
    pub truncated_bytes: u64,
    /// Newest segment deleted whole because its header frame never landed.
    pub removed_torn_segment: bool,
    /// Leftover `.tmp` files deleted.
    pub removed_tmp_files: usize,
    /// Segments present after repair.
    pub segments: usize,
    /// Snapshot files present.
    pub snapshots: usize,
    /// Deletable files left behind by an interrupted sweep (or a crash
    /// between snapshot install and sweep): the removals the recomputed
    /// [`SweepPlan`] calls for. 0 on a fully swept store.
    pub pending_sweep_removals: usize,
}

/// A directory of checksummed WAL segments plus snapshot files.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    config: StoreConfig,
    /// Every filesystem operation goes through this seam; [`RealFs`] by
    /// default, a fault injector under test.
    vfs: Arc<dyn Vfs>,
    sealed: Vec<Sealed>,
    active: Option<Active>,
    /// Snapshots on disk, ascending by epoch.
    snapshots: Vec<SnapshotMeta>,
    /// Epoch of the last record or snapshot, whichever is newest; `None`
    /// for an empty store.
    last_epoch: Option<u64>,
    /// Epoch through which records are *known durable*: set on open (the
    /// platter holds whatever survived), advanced by successful fsyncs.
    /// Meaningful under durable policies; under [`FsyncPolicy::Never`] it
    /// tracks explicit [`Store::sync`] calls only.
    durable_epoch: Option<u64>,
    /// Set once the write path is permanently wounded (a failed fsync
    /// over appended records, an unrollbackable write). All mutating
    /// operations are rejected with a clone of this error; reads stay up.
    poisoned: Option<StoreError>,
    /// WAL bytes appended since the newest snapshot was installed — the
    /// byte trigger of [`Store::snapshot_due`]. On reopen this is
    /// approximated from segments holding records past the newest
    /// snapshot (whole-segment granularity, conservative).
    bytes_since_snapshot: u64,
    /// Hot-path instrumentation; detached (recording goes nowhere) until
    /// [`Store::attach_metrics`] binds it to a shared registry.
    metrics: StoreMetrics,
    /// Request-scoped tracing; disabled (spans are no-ops) until
    /// [`Store::attach_tracer`] binds it to a shared flight recorder.
    tracer: Tracer,
}

impl Store {
    /// Opens (creating if needed) the store at `dir`, validating every
    /// frame and repairing a crash tail — see the module docs for the
    /// recovery discipline. Uses the production filesystem ([`RealFs`]);
    /// [`Store::open_with`] takes an explicit [`Vfs`].
    pub fn open(dir: &Path, config: StoreConfig) -> Result<(Store, OpenReport), StoreError> {
        Store::open_with(dir, config, Arc::new(RealFs))
    }

    /// [`Store::open`] with every filesystem operation routed through
    /// `vfs` — the production seam for deterministic fault injection.
    pub fn open_with(
        dir: &Path,
        config: StoreConfig,
        vfs: Arc<dyn Vfs>,
    ) -> Result<(Store, OpenReport), StoreError> {
        if config.keep_snapshots == 0 {
            return Err(StoreError::InvalidArgument(
                "keep_snapshots must be at least 1".to_string(),
            ));
        }
        vfs.create_dir_all(dir)
            .map_err(|e| StoreError::io_at("create", dir, e))?;
        let mut report = OpenReport::default();
        let mut segment_paths: Vec<PathBuf> = Vec::new();
        let mut snapshots: Vec<SnapshotMeta> = Vec::new();
        let entries = vfs
            .read_dir(dir)
            .map_err(|e| StoreError::io_at("list", dir, e))?;
        for path in entries {
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if name.ends_with(".tmp") {
                vfs.remove_file(&path)
                    .map_err(|e| StoreError::io_at("remove", &path, e))?;
                report.removed_tmp_files += 1;
            } else if crate::segment::parse_segment_name(name).is_some() {
                segment_paths.push(path);
            } else if let Some(epoch) = parse_snapshot_name(name) {
                snapshots.push(SnapshotMeta::full(epoch));
            } else if let Some((epoch, base)) = parse_delta_snapshot_name(name) {
                if base >= epoch {
                    return Err(StoreError::Corrupt(format!(
                        "{name}: delta snapshot base epoch {base} is not older than its \
                         own epoch {epoch}"
                    )));
                }
                snapshots.push(SnapshotMeta::delta(epoch, base));
            }
        }
        segment_paths.sort();
        snapshots.sort_unstable_by_key(|m| m.epoch);
        for pair in snapshots.windows(2) {
            if pair[0].epoch == pair[1].epoch {
                // The installers refuse an epoch at or below the newest
                // snapshot, so two documents for one epoch cannot arise
                // from any crash — only from external meddling.
                return Err(StoreError::Corrupt(format!(
                    "two snapshot files capture epoch {} — cannot tell which to trust",
                    pair[0].epoch
                )));
            }
        }

        // Scan and validate every segment; repair the newest one's tail.
        let mut scans: Vec<SegmentScan> = Vec::with_capacity(segment_paths.len());
        for path in &segment_paths {
            scans.push(scan_segment_with(vfs.as_ref(), path, &config.magic)?);
        }
        for (i, scan) in scans.iter().enumerate() {
            let is_last = i + 1 == scans.len();
            if !is_last && (scan.torn_at.is_some() || scan.first_epoch.is_none()) {
                return Err(StoreError::Corrupt(format!(
                    "{}: torn frame in a non-final segment (a later segment exists, \
                     so this cannot be a crash tail)",
                    scan.path.display()
                )));
            }
            if i > 0 {
                let prev = &scans[i - 1];
                let expected = prev.first_epoch.expect("non-final segments have headers")
                    + prev.record_count();
                let got = scan.first_epoch.unwrap_or(expected);
                if got != expected {
                    return Err(StoreError::Corrupt(format!(
                        "epoch gap between segments: {} starts at epoch {}, expected {} \
                         (a WAL segment is missing)",
                        scan.path.display(),
                        got,
                        expected
                    )));
                }
            }
        }
        if let Some(last) = scans.last_mut() {
            if last.first_epoch.is_none() {
                // The crash hit before the header frame landed: the file
                // holds nothing; remove it entirely.
                vfs.remove_file(&last.path)
                    .map_err(|e| StoreError::io_at("remove", &last.path, e))?;
                report.truncated_bytes += last.file_len;
                report.removed_torn_segment = true;
                scans.pop();
            } else if let Some(torn_at) = last.torn_at {
                let file = vfs
                    .open_write(&last.path)
                    .map_err(|e| StoreError::io_at("open", &last.path, e))?;
                file.set_len(torn_at)
                    .map_err(|e| StoreError::io_at("truncate", &last.path, e))?;
                file.sync_data()
                    .map_err(|e| StoreError::io_at("fsync", &last.path, e))?;
                report.truncated_bytes += last.file_len - torn_at;
                last.file_len = torn_at;
                last.torn_at = None;
            }
        }

        // All but the newest segment are sealed; the newest reopens for
        // append.
        let mut sealed: Vec<Sealed> = Vec::new();
        let mut active: Option<Active> = None;
        let scan_count = scans.len();
        for (i, scan) in scans.into_iter().enumerate() {
            let first_epoch = scan.first_epoch.expect("headerless segment was removed");
            let records = scan.record_count();
            if i + 1 == scan_count {
                let file = vfs
                    .open_append(&scan.path)
                    .map_err(|e| StoreError::io_at("open", &scan.path, e))?;
                active = Some(Active {
                    file,
                    path: scan.path,
                    first_epoch,
                    records,
                    bytes: scan.file_len,
                });
            } else {
                sealed.push(Sealed {
                    path: scan.path,
                    first_epoch,
                    records,
                    bytes: scan.file_len,
                });
            }
        }

        let wal_last = active.as_ref().and_then(Active::last_epoch).or_else(|| {
            sealed
                .last()
                .and_then(|s| s.records.checked_sub(1).map(|i| s.first_epoch + i))
        });
        let snap_last = snapshots.last().map(|m| m.epoch);
        let last_epoch = match (wal_last, snap_last) {
            (Some(w), Some(s)) => Some(w.max(s)),
            (w, s) => w.or(s),
        };
        report.segments = sealed.len() + usize::from(active.is_some());
        report.snapshots = snapshots.len();
        // Bytes-since-snapshot approximation: segments whose records reach
        // past the newest snapshot still count toward the next byte
        // trigger.
        let newest_snapshot = snap_last;
        let segment_counts = |first: u64, records: u64, bytes: u64| -> u64 {
            let last = records.checked_sub(1).map(|i| first + i);
            match (last, newest_snapshot) {
                (Some(last), Some(snap)) if last <= snap => 0,
                (None, _) => 0,
                _ => bytes,
            }
        };
        let bytes_since_snapshot = sealed
            .iter()
            .map(|s| segment_counts(s.first_epoch, s.records, s.bytes))
            .sum::<u64>()
            + active
                .as_ref()
                .map_or(0, |a| segment_counts(a.first_epoch, a.records, a.bytes));
        let store = Store {
            dir: dir.to_path_buf(),
            config,
            vfs,
            sealed,
            active,
            snapshots,
            last_epoch,
            // Whatever survived on the platter to be scanned is durable.
            durable_epoch: last_epoch,
            poisoned: None,
            bytes_since_snapshot,
            metrics: StoreMetrics::default(),
            tracer: Tracer::default(),
        };
        // A crash mid-sweep needs no repair — the surviving files are a
        // valid store — but report the leftover work so the caller knows
        // a sweep is pending.
        report.pending_sweep_removals = store.sweep_plan().removals();
        Ok((store, report))
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configuration the store was opened with.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Binds the store's instrumentation to `metrics` (typically
    /// [`StoreMetrics::register`]ed on a shared registry) and folds the
    /// current on-disk state into the `store_segments` /
    /// `store_snapshots` gauges. The gauges are maintained with delta
    /// updates — and given back on drop — so several stores sharing one
    /// registry sum correctly. Call at most once per store.
    pub fn attach_metrics(&mut self, metrics: StoreMetrics) {
        self.metrics = metrics;
        let segments = self.sealed.len() + usize::from(self.active.is_some());
        self.metrics.segments.add(segments as i64);
        self.metrics.snapshots.add(self.snapshots.len() as i64);
    }

    /// The store's instrumentation handles (detached unless
    /// [`Store::attach_metrics`] was called).
    pub fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }

    /// Binds the store's fsync spans and poison error tags to `tracer`
    /// (typically the serving layer's per-server flight recorder).
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The store's tracer (disabled unless [`Store::attach_tracer`] was
    /// called); the group committer hooks its spans onto the same one.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// True when the store holds no segments and no snapshots.
    pub fn is_empty(&self) -> bool {
        self.sealed.is_empty() && self.active.is_none() && self.snapshots.is_empty()
    }

    /// Epoch of the last record or snapshot, whichever is newest.
    pub fn last_epoch(&self) -> Option<u64> {
        self.last_epoch
    }

    /// Epoch through which records are known durable (see the field docs:
    /// advanced by successful fsyncs, best-effort under
    /// [`FsyncPolicy::Never`]).
    pub fn durable_epoch(&self) -> Option<u64> {
        self.durable_epoch
    }

    /// Why the write path is permanently wounded, if it is. A poisoned
    /// store rejects every mutation with a clone of this error; reads
    /// ([`Store::replay`], [`Store::read_snapshot`]) stay available, and
    /// reopening the directory recovers whatever the platter holds.
    pub fn poisoned(&self) -> Option<&StoreError> {
        self.poisoned.as_ref()
    }

    /// Permanently wounds the write path (idempotent: the first cause
    /// wins). Used internally on fsync failure and by the group committer,
    /// whose batch fsync runs outside the store.
    pub(crate) fn mark_poisoned(&mut self, cause: StoreError) {
        if self.poisoned.is_none() {
            self.metrics.poison_events.inc();
            self.poisoned = Some(match cause {
                already @ StoreError::Poisoned(_) => already,
                other => StoreError::Poisoned(format!(
                    "write path disabled after an unrecoverable I/O failure \
                     (records past durable epoch {:?} have unknown durability): {other}",
                    self.durable_epoch
                )),
            });
            // Attribute the wound to the request that hit it: the cause
            // lands on the innermost open span of the owning trace.
            if let Some(poison) = &self.poisoned {
                self.tracer.tag_error(&poison.to_string());
            }
        }
    }

    /// Records a successful externally-issued fsync covering everything
    /// appended up to `epoch` (the group committer's batch fsync).
    pub(crate) fn note_synced(&mut self, epoch: u64) {
        if self.durable_epoch.map_or(true, |d| epoch > d) {
            self.durable_epoch = Some(epoch);
        }
    }

    fn check_poisoned(&self) -> Result<(), StoreError> {
        match &self.poisoned {
            Some(err) => Err(err.clone()),
            None => Ok(()),
        }
    }

    /// Snapshot epochs on disk, ascending.
    pub fn snapshot_epochs(&self) -> Vec<u64> {
        self.snapshots.iter().map(|m| m.epoch).collect()
    }

    /// Snapshots on disk (epoch plus delta base), ascending by epoch.
    pub fn snapshot_metas(&self) -> &[SnapshotMeta] {
        &self.snapshots
    }

    /// Paths of all WAL segments, oldest first (the active segment last).
    pub fn segment_paths(&self) -> Vec<PathBuf> {
        let mut paths: Vec<PathBuf> = self.sealed.iter().map(|s| s.path.clone()).collect();
        paths.extend(self.active.as_ref().map(|a| a.path.clone()));
        paths
    }

    /// Total bytes across all WAL segment files.
    pub fn wal_bytes(&self) -> u64 {
        self.sealed.iter().map(|s| s.bytes).sum::<u64>()
            + self.active.as_ref().map_or(0, |a| a.bytes)
    }

    /// Appends one record. `epoch` must continue the store's epoch sequence
    /// contiguously (`last_epoch + 1`); the first append of an empty store
    /// sets the sequence's origin.
    pub fn append(&mut self, epoch: u64, payload: &[u8]) -> Result<(), StoreError> {
        self.check_poisoned()?;
        if payload.is_empty() {
            // An empty frame is 8 zero bytes — what the decoder classifies
            // as a zero-filled crash tail. Writing one would make the next
            // open silently truncate it (and everything after it).
            return Err(StoreError::InvalidArgument(
                "record payloads must be non-empty".to_string(),
            ));
        }
        if let Some(last) = self.last_epoch {
            if epoch != last + 1 {
                return Err(StoreError::InvalidArgument(format!(
                    "append epoch {epoch} does not continue the log (last epoch is {last})"
                )));
            }
        }
        // Rotate when the active segment is full (or absent).
        let needs_new = match &self.active {
            None => true,
            Some(active) => active.bytes >= self.config.segment_max_bytes,
        };
        if needs_new {
            if let Some(active) = self.active.take() {
                self.metrics.rotations.inc();
                // Seal durably: `sync` only ever covers the *active* file,
                // so under EveryBatch/GroupCommit an unsynced outgoing
                // segment would never be covered by a later batch fsync.
                if self.config.fsync.durable_metadata() {
                    let started = Instant::now();
                    let _fsync_span = self.tracer.span("store.fsync", Class::Physical);
                    if let Err(e) = active.file.sync_data() {
                        let err = StoreError::io_at("fsync", &active.path, e);
                        // The records exist on disk regardless of the
                        // fsync's fate: keep the manifest agreeing with
                        // the directory, then wound the write path —
                        // retrying an fsync over possibly-dropped dirty
                        // pages would fake durability (fsyncgate).
                        self.sealed.push(Sealed {
                            path: active.path,
                            first_epoch: active.first_epoch,
                            records: active.records,
                            bytes: active.bytes,
                        });
                        self.metrics.fsync_failures.inc();
                        self.mark_poisoned(err.clone());
                        return Err(err);
                    }
                    self.metrics.fsync_ok(started);
                }
                // The seal fsync covered every record in the outgoing
                // segment.
                if let Some(sealed_last) = active.last_epoch() {
                    if self.config.fsync.durable_metadata() {
                        self.note_synced(sealed_last);
                    }
                }
                self.sealed.push(Sealed {
                    path: active.path,
                    first_epoch: active.first_epoch,
                    records: active.records,
                    bytes: active.bytes,
                });
            }
            self.active = Some(self.create_segment(epoch)?);
            self.metrics.segments.add(1);
        }
        let frame = encode_frame(payload);
        let active = self.active.as_mut().expect("just ensured");
        if let Err(e) = active.file.write_all(&frame) {
            let err = StoreError::io_at("append", &active.path, e);
            // The write may have landed partially (ENOSPC mid-buffer, a
            // short write). Truncate back to the last clean frame
            // boundary; append-mode handles then resume at the new EOF,
            // so a retried append starts from exactly the pre-write
            // state. If even the truncation fails the tail's contents are
            // unknowable — poison the write path.
            if let Err(trunc) = active.file.set_len(active.bytes) {
                let poison = StoreError::Poisoned(format!(
                    "append to {} failed ({err}) and truncating the partial tail back \
                     to {} bytes failed too ({trunc}) — the segment tail is unknowable",
                    active.path.display(),
                    active.bytes,
                ));
                self.poisoned = Some(poison.clone());
                return Err(poison);
            }
            return Err(err);
        }
        active.records += 1;
        active.bytes += frame.len() as u64;
        self.bytes_since_snapshot += frame.len() as u64;
        self.metrics.appends.inc();
        self.metrics.bytes_written.add(frame.len() as u64);
        // Count the record *before* the policy fsync: it is physically in
        // the file, so memory and disk agree whether or not the fsync
        // below succeeds. The ack (an `Ok` return) is still withheld
        // until durability is established.
        self.last_epoch = Some(epoch);
        if self.config.fsync == FsyncPolicy::EveryRecord {
            let started = Instant::now();
            let _fsync_span = self.tracer.span("store.fsync", Class::Physical);
            if let Err(e) = active.file.sync_data() {
                let err = StoreError::io_at("fsync", &active.path, e);
                self.metrics.fsync_failures.inc();
                self.mark_poisoned(err.clone());
                return Err(err);
            }
            self.metrics.fsync_ok(started);
            self.durable_epoch = Some(epoch);
        }
        Ok(())
    }

    /// Forces the active segment to disk (the batch-boundary fsync under
    /// [`FsyncPolicy::EveryBatch`]; a no-op when nothing is open). Syncs
    /// regardless of policy — the policy only governs *automatic* syncs.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.check_poisoned()?;
        if let Some(active) = &self.active {
            let started = Instant::now();
            let _fsync_span = self.tracer.span("store.fsync", Class::Physical);
            if let Err(e) = active.file.sync_data() {
                let err = StoreError::io_at("fsync", &active.path, e);
                self.metrics.fsync_failures.inc();
                self.mark_poisoned(err.clone());
                return Err(err);
            }
            self.metrics.fsync_ok(started);
        }
        self.durable_epoch = self.last_epoch;
        Ok(())
    }

    /// A duplicated handle to the active segment file (`None` when no
    /// segment is open). Fsyncing the duplicate covers every record
    /// already written to the active segment — the group committer uses
    /// this to issue the batch fsync *without* holding the store, so
    /// appends land during the disk wait and form the next batch. Records
    /// in sealed segments need no further coverage: rotation seals them
    /// with their own fsync.
    #[allow(clippy::type_complexity)]
    pub(crate) fn clone_active_handle(
        &self,
    ) -> Result<Option<(Box<dyn VfsFile>, PathBuf)>, StoreError> {
        match &self.active {
            Some(active) => active
                .file
                .try_clone()
                .map(|file| Some((file, active.path.clone())))
                .map_err(|e| StoreError::io_at("clone", &active.path, e)),
            None => Ok(None),
        }
    }

    /// Creates a fresh segment whose first record will carry `first_epoch`.
    ///
    /// Error safety: any failure after the file exists rolls the creation
    /// back (best-effort removal), so a retried append re-creates the
    /// segment instead of colliding with a half-written orphan. Because
    /// the rollback erases the file, a failed header fsync here does
    /// *not* poison the store: no appended record's durability rides on
    /// pages the kernel may have dropped.
    fn create_segment(&self, first_epoch: u64) -> Result<Active, StoreError> {
        let path = self.dir.join(segment_file_name(first_epoch));
        let mut file = self
            .vfs
            .create_new(&path)
            .map_err(|e| StoreError::io_at("create", &path, e))?;
        let header = crate::segment::header_frame(&self.config.magic, first_epoch);
        let staged: Result<(), StoreError> = (|| {
            file.write_all(&header)
                .map_err(|e| StoreError::io_at("write header", &path, e))?;
            if self.config.fsync.durable_metadata() {
                file.sync_data()
                    .map_err(|e| StoreError::io_at("fsync", &path, e))?;
                self.sync_dir()?;
            }
            Ok(())
        })();
        if let Err(err) = staged {
            drop(file);
            let _ = self.vfs.remove_file(&path);
            return Err(err);
        }
        Ok(Active {
            file,
            path,
            first_epoch,
            records: 0,
            bytes: header.len() as u64,
        })
    }

    fn sync_dir(&self) -> Result<(), StoreError> {
        self.vfs
            .sync_dir(&self.dir)
            .map_err(|e| StoreError::io_at("fsync dir", &self.dir, e))
    }

    /// Validations shared by both snapshot installers.
    fn check_snapshot_install(&self, epoch: u64, document: &[u8]) -> Result<(), StoreError> {
        if document.is_empty() {
            return Err(StoreError::InvalidArgument(
                "snapshot documents must be non-empty".to_string(),
            ));
        }
        if let Some(newest) = self.snapshots.last().map(|m| m.epoch) {
            if epoch <= newest {
                return Err(StoreError::InvalidArgument(format!(
                    "snapshot epoch {epoch} is not newer than the existing snapshot at {newest}"
                )));
            }
        }
        if let Some(last) = self.last_epoch {
            if epoch > last {
                return Err(StoreError::InvalidArgument(format!(
                    "snapshot epoch {epoch} is ahead of the log (last epoch is {last})"
                )));
            }
        }
        Ok(())
    }

    /// Writes a snapshot document to `file_name` atomically: temp file,
    /// framed and checksummed, fsynced (per policy), renamed into place.
    ///
    /// Error safety: every failure rolls the filesystem back to "no such
    /// snapshot" (best-effort removal of the temp file *and* the final
    /// name — a torn rename can report failure after the entry already
    /// moved). The manifest never records a snapshot this function
    /// errored on, so disk must not keep one either: a leftover
    /// same-epoch file would collide with a retried install of a
    /// different kind (full vs delta) and read as corruption on reopen.
    /// No poisoning — the rollback erases the only pages a failed fsync
    /// here could have covered, and no appended record depends on them.
    fn write_snapshot_file(&self, file_name: &str, document: &[u8]) -> Result<(), StoreError> {
        let final_path = self.dir.join(file_name);
        let tmp_path = self.dir.join(format!("{file_name}.tmp"));
        let staged: Result<(), StoreError> = (|| {
            let mut file = self
                .vfs
                .create_truncate(&tmp_path)
                .map_err(|e| StoreError::io_at("create", &tmp_path, e))?;
            file.write_all(&encode_frame(document))
                .map_err(|e| StoreError::io_at("write", &tmp_path, e))?;
            if self.config.fsync.durable_metadata() {
                file.sync_data()
                    .map_err(|e| StoreError::io_at("fsync", &tmp_path, e))?;
            }
            Ok(())
        })();
        if let Err(err) = staged {
            let _ = self.vfs.remove_file(&tmp_path);
            return Err(err);
        }
        if let Err(e) = self.vfs.rename(&tmp_path, &final_path) {
            let err = StoreError::io_at("rename", &final_path, e);
            let _ = self.vfs.remove_file(&final_path);
            let _ = self.vfs.remove_file(&tmp_path);
            return Err(err);
        }
        if self.config.fsync.durable_metadata() {
            if let Err(err) = self.sync_dir() {
                let _ = self.vfs.remove_file(&final_path);
                return Err(err);
            }
        }
        Ok(())
    }

    /// Atomically installs a full snapshot of the state at `epoch`. The
    /// manifest is updated only after the file is durably in place, and
    /// nothing is deleted here: pruning and compaction are recorded as a
    /// [`SweepPlan`] (recomputable at any time, so a crash loses nothing)
    /// and executed off the write path by [`Store::sweep`].
    pub fn install_snapshot(&mut self, epoch: u64, document: &[u8]) -> Result<(), StoreError> {
        self.check_poisoned()?;
        self.check_snapshot_install(epoch, document)?;
        self.write_snapshot_file(&snapshot_file_name(epoch), document)?;
        self.snapshots.push(SnapshotMeta::full(epoch));
        self.metrics.snapshots.add(1);
        self.metrics.full_snapshots_written.inc();
        self.last_epoch = Some(self.last_epoch.map_or(epoch, |l| l.max(epoch)));
        if self.config.fsync.durable_metadata() {
            // The fsynced, renamed document durably captures `epoch`.
            self.note_synced(epoch);
        }
        self.bytes_since_snapshot = 0;
        Ok(())
    }

    /// Atomically installs a *delta* snapshot of the state at `epoch`,
    /// expressed against the existing snapshot at `base`. The write is
    /// O(delta document); like [`Store::install_snapshot`] it deletes
    /// nothing — deferred work accrues to the [`SweepPlan`].
    pub fn install_delta_snapshot(
        &mut self,
        epoch: u64,
        base: u64,
        document: &[u8],
    ) -> Result<(), StoreError> {
        self.check_poisoned()?;
        self.check_snapshot_install(epoch, document)?;
        if !self.snapshots.iter().any(|m| m.epoch == base) {
            return Err(StoreError::InvalidArgument(format!(
                "delta snapshot at epoch {epoch} names base {base}, but no snapshot \
                 captures that epoch"
            )));
        }
        self.write_snapshot_file(&delta_snapshot_file_name(epoch, base), document)?;
        self.snapshots.push(SnapshotMeta::delta(epoch, base));
        self.metrics.snapshots.add(1);
        self.metrics.delta_snapshots_written.inc();
        self.last_epoch = Some(self.last_epoch.map_or(epoch, |l| l.max(epoch)));
        if self.config.fsync.durable_metadata() {
            self.note_synced(epoch);
        }
        self.bytes_since_snapshot = 0;
        Ok(())
    }

    /// Epochs of the snapshots retention must keep, ascending: the newest
    /// `keep_snapshots` by epoch, plus — transitively — every base a
    /// retained delta snapshot builds on.
    fn retained_roots(&self) -> Vec<u64> {
        let keep_from = self
            .snapshots
            .len()
            .saturating_sub(self.config.keep_snapshots);
        let mut roots: BTreeSet<u64> = self.snapshots[keep_from..]
            .iter()
            .map(|m| m.epoch)
            .collect();
        let mut frontier: Vec<u64> = roots.iter().copied().collect();
        while let Some(epoch) = frontier.pop() {
            let base = self
                .snapshots
                .iter()
                .find(|m| m.epoch == epoch)
                .and_then(|m| m.base);
            // A base missing from the manifest means the chain is already
            // broken (external damage); retention just keeps what exists.
            if let Some(base) = base {
                if self.snapshots.iter().any(|m| m.epoch == base) && roots.insert(base) {
                    frontier.push(base);
                }
            }
        }
        roots.into_iter().collect()
    }

    /// Computes what a sweep would delete, purely from the in-memory
    /// manifest: snapshots outside the retention set, then WAL segments
    /// wholly covered by the oldest *retained* snapshot. Every retained
    /// snapshot keeps a replayable WAL suffix, so recovery can fall back
    /// past a damaged newer document; with `keep_snapshots == 1` and no
    /// delta chain, coverage reaches the newest snapshot.
    pub fn sweep_plan(&self) -> SweepPlan {
        let roots = self.retained_roots();
        let covered = roots.first().copied();
        // Newest first: a delta is always deleted before the base it
        // builds on (bases are strictly older), so no prefix of the plan
        // ever leaves an on-disk snapshot whose chain cannot resolve.
        let prune_snapshots: Vec<u64> = self
            .snapshots
            .iter()
            .rev()
            .map(|m| m.epoch)
            .filter(|e| !roots.contains(e))
            .collect();
        let mut remove_segments: Vec<PathBuf> = Vec::new();
        if let Some(covered) = covered {
            for segment in &self.sealed {
                // A sealed segment covering [first, first+records-1]; a
                // header-only segment (records 0) is covered once the
                // epoch it was created for is.
                let last = segment.first_epoch + segment.records.saturating_sub(1);
                if last <= covered {
                    remove_segments.push(segment.path.clone());
                }
            }
            if let Some(active) = &self.active {
                if active
                    .last_epoch()
                    .unwrap_or(active.first_epoch.saturating_sub(1))
                    <= covered
                {
                    remove_segments.push(active.path.clone());
                }
            }
        }
        SweepPlan {
            prune_snapshots,
            remove_segments,
            covered_epoch: covered,
        }
    }

    /// Removes `path`, treating "already gone" as success: a crash after
    /// the removal but before the manifest caught up (or a half-executed
    /// sweep resumed after reopen) must not fail the resumed sweep.
    fn remove_swept_file(&self, path: &Path) -> Result<(), StoreError> {
        match self.vfs.remove_file(path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(StoreError::io_at("remove", path, e)),
        }
    }

    /// Executes up to `max_removals` steps of the current [`SweepPlan`]:
    /// prunes unretained snapshots (newest first, so a delta never
    /// outlives losing its base), then deletes WAL segments wholly
    /// covered by the oldest retained snapshot (oldest first). Call with
    /// `usize::MAX` to sweep everything at once, or with a small budget
    /// from batch boundaries / idle ticks to keep removals off the write
    /// path.
    ///
    /// Error safety: each filesystem removal happens *before* the
    /// matching manifest entry is dropped, so an error (or a kill) at any
    /// point leaves memory and disk in agreement and the next call — or
    /// the next open — resumes from the remaining plan. The ordering
    /// guarantees any prefix of a sweep leaves every retained snapshot
    /// resolvable (deltas fall before their bases, segments only after
    /// all pruning) plus an unbroken WAL suffix from the oldest retained
    /// snapshot to the tip.
    pub fn sweep(&mut self, max_removals: usize) -> Result<SweepOutcome, StoreError> {
        self.check_poisoned()?;
        let mut outcome = SweepOutcome::default();
        let mut budget = max_removals;
        let plan = self.sweep_plan();
        for epoch in &plan.prune_snapshots {
            if budget == 0 {
                break;
            }
            let index = self
                .snapshots
                .iter()
                .position(|m| m.epoch == *epoch)
                .expect("planned snapshot is in the manifest");
            let meta = self.snapshots[index];
            let name = match meta.base {
                Some(base) => delta_snapshot_file_name(meta.epoch, base),
                None => snapshot_file_name(meta.epoch),
            };
            self.remove_swept_file(&self.dir.join(name))?;
            self.snapshots.remove(index);
            outcome.pruned_snapshots += 1;
            budget -= 1;
        }
        if outcome.pruned_snapshots == plan.prune_snapshots.len() {
            // Segments are sorted by first epoch, so covered segments form
            // a prefix of `sealed` (possibly followed by a covered active
            // segment once every sealed one is gone).
            let mut segments_left = plan.remove_segments.len();
            while budget > 0 && segments_left > 0 {
                if let Some(path) = self.sealed.first().map(|s| s.path.clone()) {
                    self.remove_swept_file(&path)?;
                    self.sealed.remove(0);
                } else {
                    let path = self
                        .active
                        .as_ref()
                        .expect("plan names the active segment")
                        .path
                        .clone();
                    self.remove_swept_file(&path)?;
                    self.active = None;
                }
                outcome.removed_segments += 1;
                segments_left -= 1;
                budget -= 1;
            }
        }
        self.metrics
            .sweep_pruned_snapshots
            .add(outcome.pruned_snapshots as u64);
        self.metrics.snapshots.sub(outcome.pruned_snapshots as i64);
        self.metrics
            .sweep_removed_segments
            .add(outcome.removed_segments as u64);
        self.metrics.segments.sub(outcome.removed_segments as i64);
        if outcome.removed() > 0 && self.config.fsync.durable_metadata() {
            self.sync_dir()?;
        }
        outcome.remaining = self.sweep_plan().removals();
        Ok(outcome)
    }

    /// Whether the configured thresholds call for a snapshot at
    /// `current_epoch`: enough WAL bytes or enough epochs accumulated past
    /// the newest snapshot.
    pub fn snapshot_due(&self, current_epoch: u64) -> bool {
        let newest = self.snapshots.last().map(|m| m.epoch);
        let byte_due = self.config.snapshot_every_bytes > 0
            && self.bytes_since_snapshot >= self.config.snapshot_every_bytes;
        let epoch_due = self.config.snapshot_every_epochs > 0
            && newest.map_or(true, |n| {
                current_epoch.saturating_sub(n) >= self.config.snapshot_every_epochs
            });
        byte_due || epoch_due
    }

    /// Reads and checksum-verifies a snapshot document (full or delta —
    /// the manifest resolves which file captures `epoch`).
    pub fn read_snapshot(&self, epoch: u64) -> Result<Vec<u8>, StoreError> {
        let name = match self.snapshots.iter().find(|m| m.epoch == epoch) {
            Some(SnapshotMeta {
                base: Some(base), ..
            }) => delta_snapshot_file_name(epoch, *base),
            _ => snapshot_file_name(epoch),
        };
        let path = self.dir.join(name);
        let bytes = self
            .vfs
            .read(&path)
            .map_err(|e| StoreError::io_at("read", &path, e))?;
        let context = path.display().to_string();
        let scan = crate::record::scan_frames(&bytes, &context)?;
        if scan.torn_at.is_some() || scan.frames.len() != 1 {
            return Err(StoreError::Corrupt(format!(
                "{context}: expected exactly one complete frame"
            )));
        }
        Ok(scan.frames.into_iter().next().expect("one frame").payload)
    }

    /// Replays the WAL: every `(epoch, payload)` with epoch strictly above
    /// `from_epoch`, in order. Segments wholly at or below `from_epoch` are
    /// skipped without reading.
    pub fn replay(&self, from_epoch: u64) -> Result<Vec<(u64, Vec<u8>)>, StoreError> {
        let mut out = Vec::new();
        let ranges: Vec<(PathBuf, u64, u64)> = self
            .sealed
            .iter()
            .map(|s| (s.path.clone(), s.first_epoch, s.records))
            .chain(
                self.active
                    .as_ref()
                    .map(|a| (a.path.clone(), a.first_epoch, a.records)),
            )
            .collect();
        for (path, first_epoch, records) in ranges {
            if records > 0 && first_epoch + records - 1 <= from_epoch {
                continue;
            }
            let scan = scan_segment_with(self.vfs.as_ref(), &path, &self.config.magic)?;
            if scan.torn_at.is_some() {
                return Err(StoreError::Corrupt(format!(
                    "{}: segment changed since open (unexpected torn frame)",
                    path.display()
                )));
            }
            for (i, frame) in scan.frames.iter().enumerate() {
                let epoch = first_epoch + i as u64;
                if epoch > from_epoch {
                    out.push((epoch, frame.payload.clone()));
                }
            }
        }
        Ok(out)
    }
}

impl Drop for Store {
    /// Best-effort flush so a clean shutdown never depends on the caller
    /// remembering a final [`Store::sync`], plus giving the on-disk
    /// counts this store contributed back to the (possibly shared)
    /// `store_segments` / `store_snapshots` gauges.
    fn drop(&mut self) {
        let _ = self.sync();
        let segments = self.sealed.len() + usize::from(self.active.is_some());
        self.metrics.segments.sub(segments as i64);
        self.metrics.snapshots.sub(self.snapshots.len() as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nemo-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn test_config() -> StoreConfig {
        let mut config = StoreConfig::new("test-wal/v1");
        config.fsync = FsyncPolicy::Never;
        config.segment_max_bytes = 64; // tiny: a few records per segment
        config.snapshot_every_bytes = 0;
        config.snapshot_every_epochs = 0;
        config
    }

    fn payload(epoch: u64) -> Vec<u8> {
        format!("record-{epoch}").into_bytes()
    }

    #[test]
    fn append_rotate_reopen_replay() {
        let dir = temp_dir("rotate");
        let (mut store, report) = Store::open(&dir, test_config()).unwrap();
        assert!(store.is_empty());
        assert_eq!(report, OpenReport::default());
        for epoch in 1..=20 {
            store.append(epoch, &payload(epoch)).unwrap();
        }
        assert!(store.segment_paths().len() > 1, "tiny segments must rotate");
        assert_eq!(store.last_epoch(), Some(20));
        drop(store);

        let (store, report) = Store::open(&dir, test_config()).unwrap();
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(store.last_epoch(), Some(20));
        let all = store.replay(0).unwrap();
        assert_eq!(all.len(), 20);
        for (i, (epoch, bytes)) in all.iter().enumerate() {
            assert_eq!(*epoch, i as u64 + 1);
            assert_eq!(*bytes, payload(*epoch));
        }
        // Suffix replay skips early segments.
        let suffix = store.replay(15).unwrap();
        assert_eq!(suffix.len(), 5);
        assert_eq!(suffix[0].0, 16);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_contiguous_appends_are_rejected() {
        let dir = temp_dir("contig");
        let (mut store, _) = Store::open(&dir, test_config()).unwrap();
        store.append(1, b"one").unwrap();
        assert!(matches!(
            store.append(3, b"three"),
            Err(StoreError::InvalidArgument(_))
        ));
        // Empty payloads are rejected: their frames are byte-identical to
        // a zero-filled crash tail.
        assert!(matches!(
            store.append(2, b""),
            Err(StoreError::InvalidArgument(_))
        ));
        // A snapshot also anchors the sequence.
        store.install_snapshot(5, b"state at five").unwrap_err();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_reopen() {
        let dir = temp_dir("torn");
        let (mut store, _) = Store::open(&dir, test_config()).unwrap();
        for epoch in 1..=3 {
            store.append(epoch, &payload(epoch)).unwrap();
        }
        let last = store.segment_paths().pop().unwrap();
        drop(store);
        // Cut the newest segment mid-record.
        let bytes = std::fs::read(&last).unwrap();
        std::fs::write(&last, &bytes[..bytes.len() - 3]).unwrap();

        let (store, report) = Store::open(&dir, test_config()).unwrap();
        assert_eq!(report.truncated_bytes, {
            let tail_frame = encode_frame(&payload(3));
            tail_frame.len() as u64 - 3
        });
        let all = store.replay(0).unwrap();
        assert_eq!(all.last().map(|(e, _)| *e), Some(2), "torn record dropped");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_fails_loudly() {
        let dir = temp_dir("flip");
        let (mut store, _) = Store::open(&dir, test_config()).unwrap();
        for epoch in 1..=3 {
            store.append(epoch, &payload(epoch)).unwrap();
        }
        let first = store.segment_paths().remove(0);
        drop(store);
        let mut bytes = std::fs::read(&first).unwrap();
        let mid = bytes.len() - 2; // payload byte of the last record
        bytes[mid] ^= 0x40;
        std::fs::write(&first, &bytes).unwrap();
        match Store::open(&dir, test_config()) {
            Err(StoreError::Corrupt(msg)) => assert!(msg.contains("checksum")),
            other => panic!("expected loud corruption failure, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn deleted_middle_segment_fails_loudly() {
        let dir = temp_dir("gap");
        let (mut store, _) = Store::open(&dir, test_config()).unwrap();
        for epoch in 1..=20 {
            store.append(epoch, &payload(epoch)).unwrap();
        }
        let paths = store.segment_paths();
        assert!(paths.len() >= 3, "need at least three segments");
        drop(store);
        std::fs::remove_file(&paths[1]).unwrap();
        match Store::open(&dir, test_config()) {
            Err(StoreError::Corrupt(msg)) => assert!(msg.contains("gap"), "{msg}"),
            other => panic!("expected loud gap failure, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_in_non_final_segment_fails_loudly() {
        let dir = temp_dir("midtear");
        let (mut store, _) = Store::open(&dir, test_config()).unwrap();
        for epoch in 1..=20 {
            store.append(epoch, &payload(epoch)).unwrap();
        }
        let paths = store.segment_paths();
        drop(store);
        let bytes = std::fs::read(&paths[0]).unwrap();
        std::fs::write(&paths[0], &bytes[..bytes.len() - 2]).unwrap();
        match Store::open(&dir, test_config()) {
            Err(StoreError::Corrupt(msg)) => assert!(msg.contains("non-final"), "{msg}"),
            other => panic!("expected loud failure, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshots_install_prune_and_compact() {
        let dir = temp_dir("snap");
        let (mut store, _) = Store::open(&dir, test_config()).unwrap();
        store.install_snapshot(0, b"genesis").unwrap();
        for epoch in 1..=20 {
            store.append(epoch, &payload(epoch)).unwrap();
        }
        let before = store.segment_paths().len();
        assert!(before >= 3);
        store.install_snapshot(12, b"state at twelve").unwrap();
        assert!(store.sweep(usize::MAX).unwrap().removed() == 0);
        // Both snapshots are retained, and the WAL is compacted only to
        // the *oldest* retained one (epoch 0): nothing deletable yet, so a
        // fallback past snap-12 can still replay from genesis.
        assert_eq!(store.snapshot_epochs(), &[0, 12]);
        assert_eq!(store.segment_paths().len(), before);
        assert_eq!(store.replay(0).unwrap().len(), 20);
        // The third snapshot prunes epoch 0 and compacts to epoch 12:
        // segments wholly at or below 12 are gone, the suffix stays.
        store.append(21, &payload(21)).unwrap();
        store.install_snapshot(21, b"state at twenty-one").unwrap();
        // Installing deletes nothing — removals happen in the sweep.
        assert_eq!(store.snapshot_epochs(), &[0, 12, 21]);
        assert!(store.segment_paths().len() >= before);
        let outcome = store.sweep(usize::MAX).unwrap();
        assert_eq!(outcome.pruned_snapshots, 1);
        assert!(outcome.removed_segments > 0);
        assert_eq!(outcome.remaining, 0);
        assert_eq!(store.snapshot_epochs(), &[12, 21]);
        let after = store.segment_paths().len();
        assert!(after < before, "compaction must delete covered segments");
        let suffix = store.replay(12).unwrap();
        assert_eq!(suffix.first().map(|(e, _)| *e), Some(13));
        assert_eq!(suffix.last().map(|(e, _)| *e), Some(21));
        assert_eq!(store.read_snapshot(21).unwrap(), b"state at twenty-one");
        assert!(store.read_snapshot(0).is_err(), "pruned snapshot is gone");
        // Nothing newer than epoch 21 remains; appends continue at 22.
        assert_eq!(store.replay(21).unwrap(), vec![]);
        store.append(22, &payload(22)).unwrap();
        drop(store);
        let (store, report) = Store::open(&dir, test_config()).unwrap();
        assert_eq!(report.pending_sweep_removals, 0);
        assert_eq!(store.last_epoch(), Some(22));
        assert_eq!(store.replay(21).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_due_thresholds() {
        let dir = temp_dir("due");
        let mut config = test_config();
        config.snapshot_every_epochs = 5;
        let (mut store, _) = Store::open(&dir, config).unwrap();
        // No snapshot at all: due immediately (the genesis snapshot).
        assert!(store.snapshot_due(0));
        store.install_snapshot(0, b"genesis").unwrap();
        for epoch in 1..=4 {
            store.append(epoch, &payload(epoch)).unwrap();
            assert!(!store.snapshot_due(epoch));
        }
        store.append(5, &payload(5)).unwrap();
        assert!(store.snapshot_due(5));
        std::fs::remove_dir_all(&dir).unwrap();

        // The byte trigger counts bytes appended *since the newest
        // snapshot*; installing a snapshot resets it even while older
        // (not yet compacted) segments remain on disk.
        let dir = temp_dir("due-bytes");
        let mut config = test_config();
        config.snapshot_every_bytes = 200;
        let (mut store, _) = Store::open(&dir, config).unwrap();
        store.install_snapshot(0, b"genesis").unwrap();
        let mut epoch = 0;
        while !store.snapshot_due(epoch) {
            epoch += 1;
            store.append(epoch, &payload(epoch)).unwrap();
        }
        store
            .install_snapshot(epoch, b"threshold snapshot")
            .unwrap();
        assert!(
            !store.snapshot_due(epoch),
            "a fresh snapshot must clear the byte trigger (wal bytes: {})",
            store.wal_bytes()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tmp_files_are_cleaned_up() {
        let dir = temp_dir("tmp");
        let (mut store, _) = Store::open(&dir, test_config()).unwrap();
        store.append(1, b"one").unwrap();
        drop(store);
        std::fs::write(dir.join("snap-00000000000000000009.snap.tmp"), b"half").unwrap();
        let (store, report) = Store::open(&dir, test_config()).unwrap();
        assert_eq!(report.removed_tmp_files, 1);
        assert_eq!(store.snapshot_epochs(), &[] as &[u64]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_policy_appends_and_replays() {
        let dir = temp_dir("group-policy");
        let mut config = test_config();
        config.fsync = FsyncPolicy::GroupCommit {
            max_batch: 4,
            max_wait_micros: 100,
        };
        assert!(config.fsync.durable_metadata());
        assert!(!FsyncPolicy::Never.durable_metadata());
        let (mut store, _) = Store::open(&dir, config.clone()).unwrap();
        // Enough records to rotate: the outgoing segment is fsynced at the
        // seal, so a later `sync` genuinely covers everything appended.
        for epoch in 1..=12 {
            store.append(epoch, &payload(epoch)).unwrap();
        }
        assert!(store.segment_paths().len() > 1);
        store.sync().unwrap();
        drop(store);
        let (store, report) = Store::open(&dir, config).unwrap();
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(store.replay(0).unwrap().len(), 12);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Replaces `path` with an empty directory of the same name, so
    /// `remove_file` fails (EISDIR) even when the test runs as root —
    /// read-only directory permissions would not stop root.
    fn obstruct(path: &Path) {
        std::fs::remove_file(path).unwrap();
        std::fs::create_dir(path).unwrap();
    }

    /// A store with pending sweep work: snapshots at 0, 12 and 21 over
    /// epochs 1..=21, where the sweep must prune snapshot 0 and remove
    /// the segments covered by snapshot 12.
    fn store_with_pending_sweep(tag: &str) -> (PathBuf, Store) {
        let dir = temp_dir(tag);
        let (mut store, _) = Store::open(&dir, test_config()).unwrap();
        store.install_snapshot(0, b"genesis").unwrap();
        for epoch in 1..=21 {
            store.append(epoch, &payload(epoch)).unwrap();
        }
        store.install_snapshot(12, b"state at twelve").unwrap();
        store.install_snapshot(21, b"state at twenty-one").unwrap();
        let plan = store.sweep_plan();
        assert_eq!(plan.prune_snapshots, vec![0]);
        assert!(
            plan.remove_segments.len() >= 2,
            "need several covered segments"
        );
        assert_eq!(plan.covered_epoch, Some(12));
        (dir, store)
    }

    #[test]
    fn failed_compaction_keeps_the_manifest_consistent() {
        let (dir, mut store) = store_with_pending_sweep("sweep-fault");
        // Obstruct the *second* covered segment so the failure strikes
        // mid-loop, after the first removal already succeeded.
        let blocked = store.sweep_plan().remove_segments[1].clone();
        obstruct(&blocked);
        let err = store.sweep(usize::MAX).unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }), "{err:?}");
        // The prune and the first segment removal committed; the blocked
        // segment stays in the manifest — nothing was silently dropped.
        assert_eq!(store.snapshot_epochs(), &[12, 21]);
        assert!(store.segment_paths().contains(&blocked));
        // The store stays usable: appends and covered replay still work.
        store.append(22, &payload(22)).unwrap();
        let suffix = store.replay(12).unwrap();
        assert_eq!(suffix.first().map(|(e, _)| *e), Some(13));
        assert_eq!(suffix.last().map(|(e, _)| *e), Some(22));
        // Clearing the obstruction leaves the file gone; the next sweep
        // treats it as already removed and completes.
        std::fs::remove_dir(&blocked).unwrap();
        let outcome = store.sweep(usize::MAX).unwrap();
        assert_eq!(outcome.remaining, 0);
        assert!(!store.segment_paths().contains(&blocked));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pre_deleted_segment_does_not_fail_the_sweep() {
        let (dir, mut store) = store_with_pending_sweep("sweep-predel");
        let gone = store.sweep_plan().remove_segments[0].clone();
        std::fs::remove_file(&gone).unwrap();
        let outcome = store.sweep(usize::MAX).unwrap();
        assert_eq!(outcome.remaining, 0);
        assert!(!store.segment_paths().contains(&gone));
        store.append(22, &payload(22)).unwrap();
        assert_eq!(store.replay(12).unwrap().len(), 10);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_snapshot_prune_leaves_memory_matching_disk() {
        let (dir, mut store) = store_with_pending_sweep("prune-fault");
        let snap0 = dir.join(snapshot_file_name(0));
        obstruct(&snap0);
        store.sweep(usize::MAX).unwrap_err();
        // The prune failed before anything else ran: the manifest still
        // lists all three snapshots, matching the directory.
        assert_eq!(store.snapshot_epochs(), &[0, 12, 21]);
        // A subsequent install still succeeds on the consistent store...
        store.append(22, &payload(22)).unwrap();
        store.install_snapshot(22, b"state at twenty-two").unwrap();
        assert_eq!(store.snapshot_epochs(), &[0, 12, 21, 22]);
        // ...and once the obstruction clears, sweep and reopen recover.
        std::fs::remove_dir(&snap0).unwrap();
        let outcome = store.sweep(usize::MAX).unwrap();
        assert_eq!(outcome.remaining, 0);
        assert_eq!(store.snapshot_epochs(), &[21, 22]);
        drop(store);
        let (store, report) = Store::open(&dir, test_config()).unwrap();
        assert_eq!(report.pending_sweep_removals, 0);
        assert_eq!(store.snapshot_epochs(), &[21, 22]);
        assert_eq!(store.read_snapshot(21).unwrap(), b"state at twenty-one");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn kill_at_any_sweep_step_leaves_a_recoverable_store() {
        // Execute the sweep one removal at a time; after each step the
        // on-disk file set is exactly what a kill at that point leaves.
        // Reopen a copy and prove the store recovers and the retained
        // snapshots plus WAL suffix survive.
        let (dir, mut store) = store_with_pending_sweep("sweep-kill");
        let total = store.sweep_plan().removals();
        assert!(total >= 3);
        for step in 0..=total {
            // Snapshot the directory as a reopen target.
            let copy = temp_dir(&format!("sweep-kill-copy-{step}"));
            std::fs::create_dir_all(&copy).unwrap();
            for entry in std::fs::read_dir(&dir).unwrap() {
                let entry = entry.unwrap();
                std::fs::copy(entry.path(), copy.join(entry.file_name())).unwrap();
            }
            let (reopened, report) = Store::open(&copy, test_config()).unwrap();
            assert_eq!(report.pending_sweep_removals, total - step, "step {step}");
            // Retained snapshots are intact and the WAL replays from the
            // oldest retained snapshot to the tip.
            assert!(
                reopened.snapshot_epochs().ends_with(&[12, 21]),
                "step {step}"
            );
            assert_eq!(reopened.read_snapshot(12).unwrap(), b"state at twelve");
            assert_eq!(reopened.read_snapshot(21).unwrap(), b"state at twenty-one");
            let suffix = reopened.replay(12).unwrap();
            assert_eq!(suffix.first().map(|(e, _)| *e), Some(13), "step {step}");
            assert_eq!(suffix.last().map(|(e, _)| *e), Some(21), "step {step}");
            drop(reopened);
            std::fs::remove_dir_all(&copy).unwrap();
            if step < total {
                let outcome = store.sweep(1).unwrap();
                assert_eq!(outcome.removed(), 1);
                assert_eq!(outcome.remaining, total - step - 1);
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delta_snapshots_install_resolve_and_retain_their_bases() {
        let dir = temp_dir("delta");
        let (mut store, _) = Store::open(&dir, test_config()).unwrap();
        store.install_snapshot(0, b"full at zero").unwrap();
        for epoch in 1..=10 {
            store.append(epoch, &payload(epoch)).unwrap();
        }
        // A delta against a base no snapshot captures is refused.
        assert!(matches!(
            store.install_delta_snapshot(6, 3, b"delta 3->6"),
            Err(StoreError::InvalidArgument(_))
        ));
        store.install_delta_snapshot(6, 0, b"delta 0->6").unwrap();
        store.install_delta_snapshot(10, 6, b"delta 6->10").unwrap();
        assert_eq!(store.snapshot_epochs(), &[0, 6, 10]);
        assert_eq!(store.read_snapshot(6).unwrap(), b"delta 0->6");
        // keep_snapshots is 2, but the retained deltas chain back to the
        // full snapshot at 0: everything is a root, nothing is deletable,
        // and compaction cannot pass epoch 0.
        let plan = store.sweep_plan();
        assert!(plan.is_empty(), "{plan:?}");
        assert_eq!(plan.covered_epoch, Some(0));
        // Reopen: the delta file names restore the base relationships.
        drop(store);
        let (mut store, report) = Store::open(&dir, test_config()).unwrap();
        assert_eq!(report.snapshots, 3);
        assert_eq!(
            store.snapshot_metas(),
            &[
                SnapshotMeta::full(0),
                SnapshotMeta::delta(6, 0),
                SnapshotMeta::delta(10, 6),
            ]
        );
        // Two newer full snapshots age the whole chain out of retention.
        store.append(11, &payload(11)).unwrap();
        store.install_snapshot(11, b"full at eleven").unwrap();
        store.append(12, &payload(12)).unwrap();
        store.install_snapshot(12, b"full at twelve").unwrap();
        let plan = store.sweep_plan();
        // Newest first: deltas fall before the bases they build on.
        assert_eq!(plan.prune_snapshots, vec![10, 6, 0]);
        assert_eq!(plan.covered_epoch, Some(11));
        let outcome = store.sweep(usize::MAX).unwrap();
        assert_eq!(outcome.pruned_snapshots, 3);
        assert_eq!(outcome.remaining, 0);
        assert_eq!(store.snapshot_epochs(), &[11, 12]);
        assert!(store.read_snapshot(6).is_err(), "pruned delta is gone");
        assert_eq!(store.replay(11).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_name_parsers_distinguish_full_and_delta() {
        assert_eq!(
            delta_snapshot_file_name(42, 7),
            "snap-00000000000000000042-from-00000000000000000007.snap"
        );
        assert_eq!(
            parse_delta_snapshot_name("snap-00000000000000000042-from-00000000000000000007.snap"),
            Some((42, 7))
        );
        // A v1 reader's parser never matches a delta name, and the delta
        // parser never matches a full name.
        assert_eq!(
            parse_snapshot_name("snap-00000000000000000042-from-00000000000000000007.snap"),
            None
        );
        assert_eq!(parse_delta_snapshot_name(&snapshot_file_name(42)), None);
        assert_eq!(parse_delta_snapshot_name("snap-42-from-7.snap"), None);
        // A delta whose base is not older than itself is corruption.
        let dir = temp_dir("delta-bad-name");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(delta_snapshot_file_name(5, 9)), b"x").unwrap();
        assert!(matches!(
            Store::open(&dir, test_config()),
            Err(StoreError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    use crate::vfs::{FaultFs, FaultKind};

    fn open_faulty(
        dir: &Path,
        config: StoreConfig,
        kind: FaultKind,
        fault_at: u64,
    ) -> (Store, FaultFs) {
        let fault = FaultFs::new(kind, fault_at);
        let (store, _) = Store::open_with(dir, config, Arc::new(fault.clone())).unwrap();
        (store, fault)
    }

    #[test]
    fn short_write_on_append_is_repaired_and_retryable() {
        let dir = temp_dir("fault-shortwrite");
        // Op order: create_dir(0), read_dir(1), create_new(2), header
        // write(3), frame write(4) — arm the tear on the frame write.
        let (mut store, fault) = open_faulty(&dir, test_config(), FaultKind::ShortWrite, 4);
        let err = store.append(1, &payload(1)).unwrap_err();
        assert!(
            matches!(&err, StoreError::Io { op, .. } if op == "append"),
            "{err:?}"
        );
        assert!(err.retryable());
        assert!(fault.injection().is_some());
        assert!(store.poisoned().is_none(), "repaired tear must not poison");
        assert_eq!(store.last_epoch(), None, "failed append is not counted");
        // The torn half-frame was truncated away: the retry lands on a
        // clean boundary and replay sees exactly the retried record.
        store.append(1, &payload(1)).unwrap();
        store.append(2, &payload(2)).unwrap();
        assert_eq!(store.replay(0).unwrap().len(), 2);
        drop(store);
        let (store, report) = Store::open(&dir, test_config()).unwrap();
        assert_eq!(report.truncated_bytes, 0, "no crash tail left behind");
        assert_eq!(store.replay(0).unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_record_fsync_poisons_but_reopen_recovers() {
        let dir = temp_dir("fault-fsyncgate");
        let mut config = test_config();
        config.fsync = FsyncPolicy::EveryRecord;
        // Op order: create_dir(0), read_dir(1), create_new(2), header
        // write(3), header fsync(4), dir fsync(5), frame write(6), record
        // fsync(7). Arm at 6: the frame write is not fsync-class, so the
        // fault lands on the record fsync at 7.
        let (mut store, _fault) = open_faulty(&dir, config.clone(), FaultKind::FailedFsync, 6);
        let err = store.append(1, &payload(1)).unwrap_err();
        assert!(
            matches!(&err, StoreError::Io { op, .. } if op == "fsync"),
            "{err:?}"
        );
        assert!(!err.retryable(), "fsync failures must never be retried");
        // Fsyncgate: the store is permanently poisoned; reads stay up.
        assert!(matches!(store.poisoned(), Some(StoreError::Poisoned(_))));
        assert!(matches!(
            store.append(2, &payload(2)),
            Err(StoreError::Poisoned(_))
        ));
        assert!(matches!(store.sync(), Err(StoreError::Poisoned(_))));
        assert!(matches!(
            store.install_snapshot(1, b"doc"),
            Err(StoreError::Poisoned(_))
        ));
        assert!(matches!(
            store.sweep(usize::MAX),
            Err(StoreError::Poisoned(_))
        ));
        assert_eq!(store.replay(0).unwrap().len(), 1, "reads still answer");
        assert_eq!(
            store.durable_epoch(),
            None,
            "nothing was ever acked durable"
        );
        drop(store);
        // Reopen through the real fs: the unacked record survived in the
        // page cache here, which is a state a clean store could produce
        // (append succeeded, crash before ack).
        let (store, _) = Store::open(&dir, config).unwrap();
        assert!(store.poisoned().is_none());
        assert_eq!(store.replay(0).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_seal_fsync_keeps_manifest_matching_disk() {
        let dir = temp_dir("fault-seal");
        let mut config = test_config();
        config.fsync = FsyncPolicy::EveryBatch; // durable metadata: seals fsync
                                                // Appends 1..=3 fill the 64-byte segment; append 4 rotates and the
                                                // seal fsync is the first fsync-class op after the frame writes:
                                                // create_dir(0), read_dir(1), create_new(2), header(3), header
                                                // fsync(4), dir fsync(5), frames(6,7,8), seal fsync(9).
        let (mut store, _fault) = open_faulty(&dir, config.clone(), FaultKind::FailedFsync, 8);
        for epoch in 1..=3 {
            store.append(epoch, &payload(epoch)).unwrap();
        }
        let err = store.append(4, &payload(4)).unwrap_err();
        assert!(
            matches!(&err, StoreError::Io { op, .. } if op == "fsync"),
            "{err:?}"
        );
        assert!(store.poisoned().is_some());
        // The outgoing segment's records are on disk; the manifest must
        // still list them (sealed), not drop them.
        assert_eq!(store.segment_paths().len(), 1);
        assert_eq!(store.replay(0).unwrap().len(), 3);
        assert_eq!(
            store.last_epoch(),
            Some(3),
            "the rotating append never landed"
        );
        drop(store);
        let (store, _) = Store::open(&dir, config).unwrap();
        assert_eq!(store.replay(0).unwrap().len(), 3);
        assert_eq!(store.last_epoch(), Some(3));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_segment_creation_rolls_back_the_orphan() {
        let dir = temp_dir("fault-create");
        // ENOSPC on the header write (op 3): the half-created segment must
        // be rolled back so the retry's create_new does not collide.
        let (mut store, _fault) = open_faulty(&dir, test_config(), FaultKind::Enospc, 3);
        let err = store.append(1, &payload(1)).unwrap_err();
        assert!(
            matches!(&err, StoreError::Io { op, .. } if op == "write header"),
            "{err:?}"
        );
        assert!(err.retryable());
        assert!(store.poisoned().is_none());
        assert!(
            !dir.join(segment_file_name(1)).exists(),
            "orphaned segment file must be rolled back"
        );
        store.append(1, &payload(1)).unwrap();
        assert_eq!(store.replay(0).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_snapshot_rename_rolls_back_and_retries() {
        let dir = temp_dir("fault-rename");
        // Ops: create_dir(0), read_dir(1), append ops (2..=4), then
        // install: create tmp(5), write(6), rename(7) — the first
        // rename-class op, wherever it falls.
        let (mut store, fault) = open_faulty(&dir, test_config(), FaultKind::FailedRename, 0);
        store.append(1, &payload(1)).unwrap();
        let err = store.install_snapshot(1, b"state at one").unwrap_err();
        assert!(
            matches!(&err, StoreError::Io { op, .. } if op == "rename"),
            "{err:?}"
        );
        assert!(err.retryable());
        assert!(fault.injection().unwrap().contains("rename"));
        // Manifest never got ahead of the directory, and no tmp leaked.
        assert_eq!(store.snapshot_epochs(), &[] as &[u64]);
        assert!(!dir.join(snapshot_file_name(1)).exists());
        assert!(!dir.join(format!("{}.tmp", snapshot_file_name(1))).exists());
        // The retry succeeds and reopen agrees.
        store.install_snapshot(1, b"state at one").unwrap();
        assert_eq!(store.read_snapshot(1).unwrap(), b"state at one");
        drop(store);
        let (store, report) = Store::open(&dir, test_config()).unwrap();
        assert_eq!(report.snapshots, 1);
        assert_eq!(store.read_snapshot(1).unwrap(), b"state at one");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_snapshot_rename_cannot_create_a_duplicate_epoch() {
        let dir = temp_dir("fault-torn-rename");
        // A torn rename *lands in the directory* but reports failure. If
        // the store left the file there, a follow-up install capturing the
        // same epoch as a *delta* would put two files for one epoch on
        // disk — which reopen rejects as corruption. The rollback must
        // remove the landed file.
        let (mut store, fault) = open_faulty(&dir, test_config(), FaultKind::TornRename, 5);
        store.install_snapshot(0, b"genesis").unwrap(); // rename op 4: passes
        store.append(1, &payload(1)).unwrap();
        let err = store.install_snapshot(1, b"full at one").unwrap_err();
        assert!(
            matches!(&err, StoreError::Io { op, .. } if op == "rename"),
            "{err:?}"
        );
        assert!(fault.injection().unwrap().contains("torn-rename"));
        assert_eq!(store.snapshot_epochs(), &[0]);
        assert!(
            !dir.join(snapshot_file_name(1)).exists(),
            "torn-rename landed file must be rolled back"
        );
        // The same epoch now installs as a delta — no duplicate on disk.
        store.install_delta_snapshot(1, 0, b"delta 0->1").unwrap();
        assert_eq!(store.read_snapshot(1).unwrap(), b"delta 0->1");
        drop(store);
        let (store, report) = Store::open(&dir, test_config()).unwrap();
        assert_eq!(report.snapshots, 2);
        assert_eq!(
            store.snapshot_metas(),
            &[SnapshotMeta::full(0), SnapshotMeta::delta(1, 0)]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_epoch_tracks_fsync_coverage() {
        let dir = temp_dir("durable-epoch");
        let mut config = test_config();
        config.fsync = FsyncPolicy::EveryBatch;
        let (mut store, _) = Store::open(&dir, config.clone()).unwrap();
        assert_eq!(store.durable_epoch(), None);
        store.append(1, &payload(1)).unwrap();
        store.append(2, &payload(2)).unwrap();
        assert_eq!(
            store.durable_epoch(),
            None,
            "no fsync covered the batch yet"
        );
        store.sync().unwrap();
        assert_eq!(store.durable_epoch(), Some(2));
        store.append(3, &payload(3)).unwrap();
        assert_eq!(store.durable_epoch(), Some(2));
        // A durable snapshot install advances coverage to its epoch.
        store.install_snapshot(3, b"state at three").unwrap();
        assert_eq!(store.durable_epoch(), Some(3));
        drop(store);
        // On reopen everything scanned off the platter counts as durable.
        let (store, _) = Store::open(&dir, config).unwrap();
        assert_eq!(store.durable_epoch(), Some(3));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_read_is_loud_but_scoped() {
        let dir = temp_dir("snapflip");
        let (mut store, _) = Store::open(&dir, test_config()).unwrap();
        store.install_snapshot(0, b"genesis document").unwrap();
        let path = dir.join(snapshot_file_name(0));
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        // Opening still works (snapshot contents are read lazily)...
        let (store, _) = Store::open(&dir, test_config()).unwrap();
        // ...but reading the snapshot reports the damage.
        assert!(matches!(
            store.read_snapshot(0),
            Err(StoreError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
