//! Metric handles for the storage engine.
//!
//! Both structs are bundles of pre-registered [`nemo_obs`] handles:
//! `Default` yields detached cells (recording goes nowhere visible, at
//! the same near-zero cost), [`StoreMetrics::register`] /
//! [`CommitMetrics::register`] bind the bundle to a shared
//! [`Registry`] under the `store_*` / `commit_*` name families. Several
//! stores (e.g. one per shard) may share one registry: counters and
//! histograms aggregate naturally, and the gauges are maintained with
//! delta updates so they sum correctly too.
//!
//! Every metric here is [`Class::Physical`]: byte counts, fsync
//! latencies and file layouts depend on the shard count and thread
//! schedule, so none of them participate in determinism comparisons.

use nemo_obs::{Class, Counter, Gauge, Histogram, Registry};
use std::time::Instant;

/// Hot-path instrumentation of one (or several) [`crate::Store`]s.
#[derive(Debug, Clone, Default)]
pub struct StoreMetrics {
    /// Records appended.
    pub appends: Counter,
    /// WAL frame bytes written by appends.
    pub bytes_written: Counter,
    /// Successful fsyncs on the record-durability path (seal, per-record,
    /// explicit [`crate::Store::sync`]).
    pub fsyncs: Counter,
    /// Fsyncs on the record-durability path that failed (each one poisons
    /// the write path).
    pub fsync_failures: Counter,
    /// Latency of successful record-durability fsyncs, in microseconds.
    pub fsync_micros: Histogram,
    /// Active segments sealed because they reached the size threshold.
    pub rotations: Counter,
    /// WAL segment files currently on disk.
    pub segments: Gauge,
    /// Snapshot files currently on disk.
    pub snapshots: Gauge,
    /// Full snapshots installed.
    pub full_snapshots_written: Counter,
    /// Delta snapshots installed.
    pub delta_snapshots_written: Counter,
    /// Snapshots deleted by [`crate::Store::sweep`].
    pub sweep_pruned_snapshots: Counter,
    /// WAL segments deleted by [`crate::Store::sweep`].
    pub sweep_removed_segments: Counter,
    /// Transitions into the poisoned state (at most one per store).
    pub poison_events: Counter,
}

impl StoreMetrics {
    /// Binds the bundle to `registry` under the `store_*` names.
    pub fn register(registry: &Registry) -> StoreMetrics {
        StoreMetrics {
            appends: registry.counter("store_appends", Class::Physical),
            bytes_written: registry.counter("store_bytes_written", Class::Physical),
            fsyncs: registry.counter("store_fsyncs", Class::Physical),
            fsync_failures: registry.counter("store_fsync_failures", Class::Physical),
            fsync_micros: registry.histogram("store_fsync_micros", Class::Physical),
            rotations: registry.counter("store_rotations", Class::Physical),
            segments: registry.gauge("store_segments", Class::Physical),
            snapshots: registry.gauge("store_snapshots", Class::Physical),
            full_snapshots_written: registry
                .counter("store_full_snapshots_written", Class::Physical),
            delta_snapshots_written: registry
                .counter("store_delta_snapshots_written", Class::Physical),
            sweep_pruned_snapshots: registry
                .counter("store_sweep_pruned_snapshots", Class::Physical),
            sweep_removed_segments: registry
                .counter("store_sweep_removed_segments", Class::Physical),
            poison_events: registry.counter("store_poison_events", Class::Physical),
        }
    }

    /// Records one completed record-durability fsync started at `started`.
    pub(crate) fn fsync_ok(&self, started: Instant) {
        self.fsyncs.inc();
        self.fsync_micros
            .record(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX));
    }
}

/// Instrumentation of one [`crate::GroupCommitter`].
#[derive(Debug, Clone, Default)]
pub struct CommitMetrics {
    /// Completed group fsyncs.
    pub fsyncs: Counter,
    /// Group fsyncs that failed (each one poisons the committer).
    pub fsync_failures: Counter,
    /// Records covered per group fsync — the achieved batch size.
    pub records_per_fsync: Histogram,
    /// Appenders in flight at the moment each batch froze: how much of
    /// the pipeline the leader's disk wait overlapped with.
    pub pipeline_occupancy: Histogram,
    /// Time from entering `append` to the durability acknowledgement, in
    /// microseconds (leaders and followers alike).
    pub waiter_micros: Histogram,
}

impl CommitMetrics {
    /// Binds the bundle to `registry` under the `commit_*` names.
    pub fn register(registry: &Registry) -> CommitMetrics {
        CommitMetrics {
            fsyncs: registry.counter("commit_fsyncs", Class::Physical),
            fsync_failures: registry.counter("commit_fsync_failures", Class::Physical),
            records_per_fsync: registry.histogram("commit_records_per_fsync", Class::Physical),
            pipeline_occupancy: registry.histogram("commit_pipeline_occupancy", Class::Physical),
            waiter_micros: registry.histogram("commit_waiter_micros", Class::Physical),
        }
    }
}
