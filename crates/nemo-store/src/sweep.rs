//! Deferred pruning and compaction: the sweep plan and its outcome.
//!
//! [`Store::install_snapshot`] used to prune old snapshots and delete
//! covered WAL segments inline, which put filesystem removals on the
//! write path and — worse — mutated the in-memory manifest *before* the
//! corresponding removals succeeded, so an I/O error mid-loop desynced
//! memory from disk. This module carries the types of the replacement
//! discipline:
//!
//! * [`SnapshotMeta`] describes one snapshot on disk, including the base
//!   epoch of a delta document, so retention can follow delta chains.
//! * [`SweepPlan`] is what [`Store::sweep_plan`] computes: everything a
//!   sweep *would* delete, derived purely from the current manifest.
//!   Nothing about the plan is persisted — after a crash the next open
//!   recomputes an equivalent plan from whatever files remain, which is
//!   what makes a kill at any point during a sweep safe.
//! * [`SweepOutcome`] reports what one [`Store::sweep`] call actually
//!   deleted and how much deletable work remains.
//!
//! [`Store::sweep`] executes a plan incrementally (a removal budget per
//! call) and error-safely: each filesystem removal happens *first*, and
//! the matching manifest entry is dropped only after it succeeds, so an
//! error leaves memory and disk in agreement and the next sweep simply
//! resumes.
//!
//! [`Store::install_snapshot`]: crate::Store::install_snapshot
//! [`Store::sweep_plan`]: crate::Store::sweep_plan
//! [`Store::sweep`]: crate::Store::sweep

use std::path::PathBuf;

/// One snapshot on disk: the epoch it captures and, for a delta
/// document, the epoch of the snapshot it builds on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Epoch of the state the snapshot captures.
    pub epoch: u64,
    /// For a delta snapshot, the epoch of the snapshot the document
    /// builds on; `None` for a full (self-contained) snapshot.
    pub base: Option<u64>,
}

impl SnapshotMeta {
    /// A full (self-contained) snapshot at `epoch`.
    pub fn full(epoch: u64) -> SnapshotMeta {
        SnapshotMeta { epoch, base: None }
    }

    /// A delta snapshot at `epoch` building on the snapshot at `base`.
    pub fn delta(epoch: u64, base: u64) -> SnapshotMeta {
        SnapshotMeta {
            epoch,
            base: Some(base),
        }
    }
}

/// Everything a sweep would delete, computed from the current manifest:
/// snapshots outside the retention set (newest first), then WAL segments
/// wholly covered by the oldest *retained* snapshot (oldest first).
///
/// The ordering is the crash-safety argument: snapshots are pruned
/// before segments, pruning runs newest-first so a delta is always
/// deleted before the base it builds on, and segment removal runs
/// oldest-first — so after any prefix of the plan the surviving files
/// still include every retained snapshot (with its full delta chain) and
/// an unbroken WAL suffix from the oldest retained snapshot to the tip.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SweepPlan {
    /// Epochs of snapshots to prune, newest first (a delta always falls
    /// before the base it builds on).
    pub prune_snapshots: Vec<u64>,
    /// Paths of WAL segments wholly covered by `covered_epoch`, oldest
    /// first.
    pub remove_segments: Vec<PathBuf>,
    /// Epoch of the oldest retained snapshot — segments whose records
    /// all fall at or below it are deletable. `None` when the store has
    /// no snapshots.
    pub covered_epoch: Option<u64>,
}

impl SweepPlan {
    /// True when the plan deletes nothing.
    pub fn is_empty(&self) -> bool {
        self.prune_snapshots.is_empty() && self.remove_segments.is_empty()
    }

    /// Total removals the plan calls for.
    pub fn removals(&self) -> usize {
        self.prune_snapshots.len() + self.remove_segments.len()
    }
}

/// What one [`Store::sweep`](crate::Store::sweep) call deleted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepOutcome {
    /// Snapshot files pruned by this call.
    pub pruned_snapshots: usize,
    /// WAL segment files removed by this call.
    pub removed_segments: usize,
    /// Removals still pending after this call (0 when the store is fully
    /// swept; nonzero when the budget ran out first).
    pub remaining: usize,
}

impl SweepOutcome {
    /// Files deleted by this call.
    pub fn removed(&self) -> usize {
        self.pruned_snapshots + self.removed_segments
    }
}
