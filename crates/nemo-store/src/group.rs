//! Leader-based group commit.
//!
//! Under [`FsyncPolicy::EveryRecord`] every append pays one disk
//! round-trip. [`GroupCommitter`] keeps the same contract — an append that
//! returns `Ok` is durable — while letting concurrent appenders share
//! fsyncs: appenders enqueue their records under a mutex, and exactly one
//! of them (the *leader*) issues a single [`Store::sync`] covering every
//! record appended so far. Followers block until the leader's fsync covers
//! their epoch.
//!
//! The leader waits for stragglers (bounded by `max_batch` records and
//! `max_wait_micros`) but never waits when it is alone: an appender with
//! no concurrent peers syncs immediately, so single-threaded latency
//! matches `EveryRecord`. The fsync itself runs with the committer lock
//! released, so the *next* batch accumulates while the disk is busy —
//! under sustained concurrency the achieved batch size tracks
//! `arrival rate x fsync latency` rather than the straggler window.

use crate::error::StoreError;
use crate::metrics::CommitMetrics;
use crate::store::{FsyncPolicy, Store};
use nemo_obs::trace::Tracer;
use nemo_obs::Class;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Why the committer poisons itself when an appender thread panics while
/// holding the lock: the batch bookkeeping may be mid-update, so acked
/// durability can no longer be reasoned about.
const LOCK_POISONED: &str =
    "an appender panicked while holding the committer lock; batch state is unknowable";

/// How long a follower waits per wake-up check. Bounded so a leader that
/// died without notifying (a panic while unwinding) degrades the batch
/// into an error instead of hanging every follower forever.
const FOLLOWER_WAIT: Duration = Duration::from_millis(50);

struct State {
    store: Store,
    /// Epoch of the newest appended record (0 before the first append —
    /// store epochs start at 1 when the committer assigns them).
    appended: u64,
    /// Epoch covered by the newest completed fsync.
    synced: u64,
    /// A leader is currently collecting a batch or inside `sync`.
    leader_active: bool,
    /// Completed group fsyncs.
    sync_count: u64,
    /// A failed fsync poisons the committer: durability of already-acked
    /// records is unknown territory, so every later append fails too.
    poisoned: Option<StoreError>,
}

/// Shares one [`Store`] between concurrent appenders, coalescing their
/// fsyncs. Wrap it in an `Arc` to append from several threads.
///
/// Epochs are assigned internally (each append continues the store's
/// sequence), because concurrent callers cannot know the next epoch.
pub struct GroupCommitter {
    state: Mutex<State>,
    /// Wakes the leader when another record lands in its batch.
    arrived: Condvar,
    /// Wakes followers when a group fsync completes.
    synced: Condvar,
    /// Appenders that entered [`GroupCommitter::append`] but have not yet
    /// finished their store append. While nonzero the leader keeps
    /// waiting: more records are about to join the batch.
    arriving: AtomicU64,
    max_batch: u64,
    max_wait: Duration,
    /// Batch-formation instrumentation; detached unless constructed via
    /// [`GroupCommitter::with_metrics`].
    metrics: CommitMetrics,
    /// The wrapped store's tracer (cloned at construction): leader/waiter
    /// handoff spans attach to whatever trace is active on the calling
    /// thread, and are no-ops otherwise.
    tracer: Tracer,
}

impl GroupCommitter {
    /// Wraps `store`, whose config must carry
    /// [`FsyncPolicy::GroupCommit`] (the committer owns all fsyncs, so
    /// `append` must not auto-sync underneath it).
    pub fn new(store: Store) -> Result<GroupCommitter, StoreError> {
        GroupCommitter::with_metrics(store, CommitMetrics::default())
    }

    /// [`GroupCommitter::new`] with batch-formation instrumentation bound
    /// to `metrics` (typically [`CommitMetrics::register`]ed on a shared
    /// registry).
    pub fn with_metrics(
        store: Store,
        metrics: CommitMetrics,
    ) -> Result<GroupCommitter, StoreError> {
        let FsyncPolicy::GroupCommit {
            max_batch,
            max_wait_micros,
        } = store.config().fsync
        else {
            return Err(StoreError::InvalidArgument(
                "GroupCommitter requires FsyncPolicy::GroupCommit".to_string(),
            ));
        };
        if max_batch == 0 {
            return Err(StoreError::InvalidArgument(
                "GroupCommit max_batch must be at least 1".to_string(),
            ));
        }
        let synced = store.last_epoch().unwrap_or(0);
        let tracer = store.tracer().clone();
        Ok(GroupCommitter {
            state: Mutex::new(State {
                store,
                appended: synced,
                synced,
                leader_active: false,
                sync_count: 0,
                poisoned: None,
            }),
            arrived: Condvar::new(),
            synced: Condvar::new(),
            arriving: AtomicU64::new(0),
            max_batch: u64::from(max_batch),
            max_wait: Duration::from_micros(max_wait_micros),
            metrics,
            tracer,
        })
    }

    /// Appends one record and blocks until it is durable (covered by a
    /// group fsync). Returns the epoch the record was assigned.
    ///
    /// On return, `last_synced() >= epoch` always holds — acknowledgement
    /// *is* durability.
    pub fn append(&self, payload: &[u8]) -> Result<u64, StoreError> {
        let entered = Instant::now();
        self.arriving.fetch_add(1, Ordering::SeqCst);
        let mut state = self.lock();
        if let Some(err) = &state.poisoned {
            let err = err.clone();
            self.depart();
            return Err(err);
        }
        let epoch = state.store.last_epoch().map_or(1, |last| last + 1);
        let appended = state.store.append(epoch, payload);
        self.depart();
        if let Err(err) = appended {
            // Validation errors (e.g. an empty payload) wrote nothing and
            // leave the log healthy; I/O failures may have left a torn
            // tail, which the next open repairs, so neither poisons the
            // committer. Only a failed *fsync* does (below).
            self.arrived.notify_all();
            return Err(err);
        }
        state.appended = epoch;
        self.arrived.notify_all();

        // Waiter handoff: covers everything from the append landing to
        // the covering fsync's ack, including a stint as leader.
        let _wait_span = self.tracer.span("commit.wait", Class::Physical);
        loop {
            if state.synced >= epoch {
                self.metrics
                    .waiter_micros
                    .record(u64::try_from(entered.elapsed().as_micros()).unwrap_or(u64::MAX));
                return Ok(epoch);
            }
            if let Some(err) = &state.poisoned {
                return Err(err.clone());
            }
            if state.leader_active {
                state = match self.synced.wait_timeout(state, FOLLOWER_WAIT) {
                    Ok((guard, _timeout)) => guard,
                    Err(poison) => {
                        // A peer panicked while holding the lock. Recover
                        // the guard and degrade the committer to a typed
                        // error instead of cascading the panic here.
                        let (mut guard, _timeout) = poison.into_inner();
                        Self::note_lock_poison(&mut guard);
                        guard
                    }
                };
                continue;
            }
            state = self.lead(state);
        }
    }

    /// Collects a batch and issues its fsync; returns with the lock held
    /// so the caller's loop re-checks its own epoch.
    ///
    /// The fsync itself runs with the lock **released** (on a duplicated
    /// handle to the active segment): appends land while the disk is busy
    /// and form the next leader's batch, so in steady state the batch size
    /// tracks the arrival rate times the fsync latency — pipelined group
    /// commit — instead of whatever trickled in during the straggler wait.
    fn lead<'a>(&'a self, mut state: MutexGuard<'a, State>) -> MutexGuard<'a, State> {
        let _lead_span = self.tracer.span("commit.lead", Class::Physical);
        state.leader_active = true;
        let deadline = Instant::now() + self.max_wait;
        // Wait for stragglers: more appends are worth waiting for while
        // appenders are mid-flight, the batch has room, and the deadline
        // has not passed. A lone appender (nobody arriving) syncs at once.
        while state.poisoned.is_none()
            && state.appended - state.synced < self.max_batch
            && self.arriving.load(Ordering::SeqCst) > 0
        {
            let now = Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                break;
            };
            state = match self.arrived.wait_timeout(state, remaining) {
                Ok((guard, _timeout)) => guard,
                Err(poison) => {
                    let (mut guard, _timeout) = poison.into_inner();
                    Self::note_lock_poison(&mut guard);
                    guard
                }
            };
        }
        if state.poisoned.is_some() {
            state.leader_active = false;
            self.synced.notify_all();
            return state;
        }
        let covered = state.appended;
        let frozen_synced = state.synced;
        let handle = state.store.clone_active_handle();
        // How deep the pipeline ran while this batch froze: appenders
        // mid-flight will land during the fsync and form the next batch.
        self.metrics
            .pipeline_occupancy
            .record(self.arriving.load(Ordering::SeqCst));
        drop(state);
        // Lock released: the batch is frozen at `covered`, the disk wait
        // overlaps with the next batch's appends. Records <= covered are
        // either in the duplicated active file or in sealed segments
        // (rotation fsyncs those as it seals them).
        let result = {
            let _fsync_span = self.tracer.span("commit.fsync", Class::Physical);
            match handle {
                Ok(Some((file, path))) => file
                    .sync_data()
                    .map_err(|e| StoreError::io_at("fsync", &path, e)),
                Ok(None) => Ok(()),
                Err(err) => Err(err),
            }
        };
        let mut state = self.lock();
        match result {
            Ok(()) => {
                state.synced = state.synced.max(covered);
                if covered > 0 {
                    state.store.note_synced(covered);
                }
                state.sync_count += 1;
                self.metrics.fsyncs.inc();
                self.metrics
                    .records_per_fsync
                    .record(covered.saturating_sub(frozen_synced));
            }
            Err(err) => {
                self.metrics.fsync_failures.inc();
                // Fsyncgate: the kernel may have dropped the batch's dirty
                // pages while marking them clean, so no retry can ever
                // prove durability. Poison the store first (so the error
                // carries its durable-epoch context), then the committer.
                state.store.mark_poisoned(err.clone());
                let poison = state.store.poisoned().cloned().unwrap_or(err);
                state.poisoned = Some(poison);
            }
        }
        state.leader_active = false;
        self.synced.notify_all();
        state
    }

    /// Epoch of the newest record covered by a completed fsync.
    pub fn last_synced(&self) -> u64 {
        self.lock().synced
    }

    /// Epoch of the newest appended record (0 while empty).
    pub fn last_appended(&self) -> u64 {
        self.lock().appended
    }

    /// How many group fsyncs have completed. Records divided by this is
    /// the achieved batch size.
    pub fn sync_count(&self) -> u64 {
        self.lock().sync_count
    }

    /// Unwraps the store (callers must hold the only reference). A
    /// committer degraded by a failed fsync or a panicked appender hands
    /// back a store whose write path is poisoned the same way — reads and
    /// recovery-by-reopen remain available.
    pub fn into_store(self) -> Store {
        let (mut store, poisoned) = match self.state.into_inner() {
            Ok(state) => (state.store, state.poisoned),
            Err(poison) => {
                let state = poison.into_inner();
                let cause = state
                    .poisoned
                    .unwrap_or_else(|| StoreError::Poisoned(LOCK_POISONED.to_string()));
                (state.store, Some(cause))
            }
        };
        if let Some(err) = poisoned {
            store.mark_poisoned(err);
        }
        store
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poison) => {
                let mut guard = poison.into_inner();
                Self::note_lock_poison(&mut guard);
                guard
            }
        }
    }

    /// Degrades the committer after a mutex/condvar poison: the panicking
    /// thread may have died mid-update, so both the committer and the
    /// store reject further mutations with a typed error instead of
    /// cascading panics across appender threads.
    fn note_lock_poison(state: &mut State) {
        if state.poisoned.is_none() {
            let err = StoreError::Poisoned(LOCK_POISONED.to_string());
            state.store.mark_poisoned(err.clone());
            state.poisoned = Some(err);
        }
    }

    fn depart(&self) {
        self.arriving.fetch_sub(1, Ordering::SeqCst);
    }
}

impl std::fmt::Debug for GroupCommitter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.lock();
        f.debug_struct("GroupCommitter")
            .field("appended", &state.appended)
            .field("synced", &state.synced)
            .field("sync_count", &state.sync_count)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use std::path::PathBuf;
    use std::sync::{Arc, Barrier};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nemo-group-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn group_config(max_batch: u32, max_wait_micros: u64) -> StoreConfig {
        let mut config = StoreConfig::new("test-wal/v1");
        config.fsync = FsyncPolicy::GroupCommit {
            max_batch,
            max_wait_micros,
        };
        config.snapshot_every_bytes = 0;
        config.snapshot_every_epochs = 0;
        config
    }

    #[test]
    fn requires_group_commit_policy() {
        let dir = temp_dir("policy");
        let mut config = group_config(4, 100);
        config.fsync = FsyncPolicy::EveryBatch;
        let (store, _) = Store::open(&dir, config).unwrap();
        assert!(matches!(
            GroupCommitter::new(store),
            Err(StoreError::InvalidArgument(_))
        ));
        let (store, _) = Store::open(&dir, group_config(0, 100)).unwrap();
        assert!(matches!(
            GroupCommitter::new(store),
            Err(StoreError::InvalidArgument(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_appends_are_contiguous_durable_and_coalesced() {
        let dir = temp_dir("concurrent");
        let (store, _) = Store::open(&dir, group_config(4, 50_000)).unwrap();
        let committer = Arc::new(GroupCommitter::new(store).unwrap());
        let threads = 4;
        let rounds = 25;
        let barrier = Arc::new(Barrier::new(threads));
        std::thread::scope(|scope| {
            for t in 0..threads {
                let committer = Arc::clone(&committer);
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    for round in 0..rounds {
                        // Release all appenders together so their appends
                        // genuinely overlap and batches form.
                        barrier.wait();
                        let payload = format!("t{t}-r{round}");
                        let epoch = committer.append(payload.as_bytes()).unwrap();
                        // Acknowledgement IS durability: the covering
                        // fsync completed before append returned.
                        assert!(committer.last_synced() >= epoch);
                    }
                });
            }
        });
        let total = (threads * rounds) as u64;
        let syncs = committer.sync_count();
        assert!(
            syncs < total,
            "barriered appenders must share fsyncs ({syncs} syncs for {total} records)"
        );
        let store = Arc::into_inner(committer).unwrap().into_store();
        assert_eq!(store.last_epoch(), Some(total));
        drop(store);
        // Reopen and replay: every acked record survives, contiguously.
        let (store, report) = Store::open(&dir, group_config(4, 50_000)).unwrap();
        assert_eq!(report.truncated_bytes, 0);
        let records = store.replay(0).unwrap();
        assert_eq!(records.len(), total as usize);
        for (i, (epoch, _)) in records.iter().enumerate() {
            assert_eq!(*epoch, i as u64 + 1);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lone_appender_does_not_wait_for_the_deadline() {
        let dir = temp_dir("lone");
        // A 5-second window: if a lone appender waited it out, this test
        // would take 15+ seconds instead of milliseconds.
        let (store, _) = Store::open(&dir, group_config(64, 5_000_000)).unwrap();
        let committer = GroupCommitter::new(store).unwrap();
        let start = Instant::now();
        for _ in 0..3 {
            committer.append(b"solo").unwrap();
        }
        assert!(start.elapsed() < Duration::from_secs(5));
        assert_eq!(committer.last_synced(), 3);
        assert_eq!(committer.sync_count(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn panicking_appender_poisons_instead_of_cascading() {
        let dir = temp_dir("panic");
        let (store, _) = Store::open(&dir, group_config(4, 100)).unwrap();
        let committer = GroupCommitter::new(store).unwrap();
        committer.append(b"before").unwrap();
        // An appender dies while holding the committer lock.
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = committer.state.lock().unwrap();
            panic!("appender dies mid-update");
        }));
        assert!(panicked.is_err());
        // Later appenders get a typed error, not a propagated panic.
        match committer.append(b"after") {
            Err(StoreError::Poisoned(msg)) => assert!(msg.contains("committer lock"), "{msg}"),
            other => panic!("expected Poisoned, got {other:?}"),
        }
        // The unwrapped store carries the poison too...
        let store = committer.into_store();
        assert!(matches!(store.poisoned(), Some(StoreError::Poisoned(_))));
        assert!(matches!(
            store.replay(0),
            Ok(records) if records.len() == 1
        ));
        drop(store);
        // ...and a reopen recovers cleanly with every acked record.
        let (store, _) = Store::open(&dir, group_config(4, 100)).unwrap();
        assert!(store.poisoned().is_none());
        assert_eq!(store.replay(0).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_group_fsync_poisons_committer_and_store() {
        use crate::vfs::{FaultFs, FaultKind};
        let dir = temp_dir("fsyncgate");
        // Arm an fsync fault past the segment-creation fsyncs so it lands
        // on the first *group* fsync (the next fsync-class op after the
        // header fsync + dir fsync + frame write).
        let fault = FaultFs::new(FaultKind::FailedFsync, 6);
        let (store, _) = Store::open_with(
            &dir,
            group_config(4, 100),
            std::sync::Arc::new(fault.clone()),
        )
        .unwrap();
        let committer = GroupCommitter::new(store).unwrap();
        let err = committer.append(b"doomed").unwrap_err();
        assert!(matches!(err, StoreError::Poisoned(_)), "{err:?}");
        assert!(
            fault.injection().unwrap().contains("fsync"),
            "{:?}",
            fault.injection()
        );
        // Permanently: the next append is rejected without touching disk.
        assert!(matches!(
            committer.append(b"rejected"),
            Err(StoreError::Poisoned(_))
        ));
        assert_eq!(
            committer.last_synced(),
            0,
            "no ack without a covering fsync"
        );
        let store = committer.into_store();
        assert!(store.poisoned().is_some());
        drop(store);
        // Reopen (real fs): the unacked record may or may not have reached
        // the platter — both are legal — but the store itself is healthy.
        let (store, _) = Store::open(&dir, group_config(4, 100)).unwrap();
        assert!(store.poisoned().is_none());
        assert!(store.replay(0).unwrap().len() <= 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn traced_appenders_capture_leader_and_waiter_spans() {
        let dir = temp_dir("traced");
        let (mut store, _) = Store::open(&dir, group_config(4, 50_000)).unwrap();
        let tracer = Tracer::new();
        tracer.enable(64);
        store.attach_tracer(tracer.clone());
        let committer = Arc::new(GroupCommitter::new(store).unwrap());
        let threads = 3;
        let barrier = Arc::new(Barrier::new(threads));
        std::thread::scope(|scope| {
            for t in 0..threads {
                let committer = Arc::clone(&committer);
                let barrier = Arc::clone(&barrier);
                let tracer = tracer.clone();
                scope.spawn(move || {
                    barrier.wait();
                    let _trace = tracer.begin("request.mutate");
                    committer.append(format!("t{t}").as_bytes()).unwrap();
                });
            }
        });
        let traces = tracer.traces(0);
        assert_eq!(traces.len(), threads);
        let names: Vec<Vec<&str>> = traces
            .iter()
            .map(|t| t.spans.iter().map(|s| s.name).collect())
            .collect();
        // Every appender waited for its covering fsync; at least one of
        // them led a batch (and issued its fsync) inside that wait.
        for spans in &names {
            assert!(spans.contains(&"commit.wait"), "{names:?}");
        }
        assert!(
            names.iter().any(|s| s.contains(&"commit.lead")),
            "{names:?}"
        );
        assert!(
            names.iter().any(|s| s.contains(&"commit.fsync")),
            "{names:?}"
        );
        // The leader's spans nest under its waiter span.
        let leader = traces
            .iter()
            .find(|t| t.spans.iter().any(|s| s.name == "commit.lead"))
            .unwrap();
        let wait_id = leader
            .spans
            .iter()
            .find(|s| s.name == "commit.wait")
            .unwrap()
            .span_id;
        let lead = leader
            .spans
            .iter()
            .find(|s| s.name == "commit.lead")
            .unwrap();
        assert_eq!(lead.parent_id, Some(wait_id));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn validation_errors_do_not_poison() {
        let dir = temp_dir("validation");
        let (store, _) = Store::open(&dir, group_config(4, 100)).unwrap();
        let committer = GroupCommitter::new(store).unwrap();
        assert!(matches!(
            committer.append(b""),
            Err(StoreError::InvalidArgument(_))
        ));
        assert_eq!(committer.append(b"fine").unwrap(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
