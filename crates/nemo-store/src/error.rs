//! The storage engine's error type.

use std::fmt;

/// Why a store operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An underlying filesystem operation failed (rendered message; the
    /// original `io::Error` is not kept so the type stays `Clone + Eq` for
    /// tests).
    Io(String),
    /// On-disk bytes are damaged in a way a crash cannot explain: a CRC
    /// mismatch on a complete frame, a bad segment header, an epoch gap
    /// between segments, a tear anywhere but the newest segment's tail.
    /// Recovery refuses to continue past this.
    Corrupt(String),
    /// The caller broke an append-side invariant (non-contiguous epoch,
    /// snapshot older than an existing one).
    InvalidArgument(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(msg) => write!(f, "storage I/O error: {msg}"),
            StoreError::Corrupt(msg) => write!(f, "corrupt store: {msg}"),
            StoreError::InvalidArgument(msg) => write!(f, "invalid store operation: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl StoreError {
    /// Wraps an `io::Error` with the path it concerned.
    pub fn io(context: &str, err: std::io::Error) -> StoreError {
        StoreError::Io(format!("{context}: {err}"))
    }
}
