//! The storage engine's error type.

use std::fmt;
use std::path::Path;

/// Why a store operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An underlying filesystem operation failed. The operation verb
    /// (`"append"`, `"fsync"`, `"rename"`, …) and the path it concerned
    /// are kept structured so callers can classify the failure
    /// ([`StoreError::retryable`]); the original `io::Error` is rendered
    /// to a string so the type stays `Clone + Eq` for tests.
    Io {
        /// What the store was doing: `"create"`, `"append"`, `"fsync"`,
        /// `"fsync dir"`, `"rename"`, `"remove"`, `"read"`, `"list"`,
        /// `"open"`, `"truncate"`, `"clone"`, `"write header"`, `"write"`.
        op: String,
        /// The file or directory the operation targeted.
        path: String,
        /// The rendered `io::Error`.
        detail: String,
    },
    /// On-disk bytes are damaged in a way a crash cannot explain: a CRC
    /// mismatch on a complete frame, a bad segment header, an epoch gap
    /// between segments, a tear anywhere but the newest segment's tail.
    /// Recovery refuses to continue past this.
    Corrupt(String),
    /// The caller broke an append-side invariant (non-contiguous epoch,
    /// snapshot older than an existing one).
    InvalidArgument(String),
    /// The store's write path is permanently wounded: an fsync covering
    /// already-appended records failed (fsyncgate — the kernel may have
    /// dropped the dirty pages, so retrying the fsync would falsely
    /// report durability), or a failed write could not be rolled back to
    /// a clean frame boundary, or an appender panicked while holding the
    /// group-commit lock. Every subsequent mutation is rejected with this
    /// error; reads and recovery-by-reopen remain available.
    Poisoned(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, path, detail } => {
                write!(f, "storage I/O error: {op} {path}: {detail}")
            }
            StoreError::Corrupt(msg) => write!(f, "corrupt store: {msg}"),
            StoreError::InvalidArgument(msg) => write!(f, "invalid store operation: {msg}"),
            StoreError::Poisoned(msg) => write!(f, "store poisoned: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl StoreError {
    /// Wraps an `io::Error` with the operation verb and path it concerned.
    pub fn io_at(op: &str, path: &Path, err: std::io::Error) -> StoreError {
        StoreError::Io {
            op: op.to_string(),
            path: path.display().to_string(),
            detail: err.to_string(),
        }
    }

    /// Whether retrying the *same* operation can legitimately succeed.
    ///
    /// Plain I/O failures (a write that hit ENOSPC, a rename or removal
    /// that got EIO) left the store in a rolled-back state, so the caller
    /// may retry within a budget. Fsync failures are **never** retryable:
    /// after a failed fsync the kernel may have discarded the dirty pages
    /// while leaving the file descriptor clean, so a retried fsync that
    /// "succeeds" proves nothing (fsyncgate). Corruption, invariant
    /// violations and poisoning are states, not transients.
    pub fn retryable(&self) -> bool {
        match self {
            StoreError::Io { op, .. } => !op.starts_with("fsync"),
            StoreError::Corrupt(_) | StoreError::InvalidArgument(_) | StoreError::Poisoned(_) => {
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_errors_keep_operation_and_path_context() {
        let err = StoreError::io_at(
            "fsync",
            Path::new("wal-00000000000000000001.seg"),
            std::io::Error::other("injected fault: fsync"),
        );
        assert_eq!(
            err.to_string(),
            "storage I/O error: fsync wal-00000000000000000001.seg: injected fault: fsync"
        );
        match &err {
            StoreError::Io { op, path, .. } => {
                assert_eq!(op, "fsync");
                assert_eq!(path, "wal-00000000000000000001.seg");
            }
            other => panic!("expected Io, got {other:?}"),
        }
    }

    #[test]
    fn retryability_follows_the_fsyncgate_rule() {
        let write = StoreError::io_at("append", Path::new("w.seg"), std::io::Error::other("x"));
        let fsync = StoreError::io_at("fsync", Path::new("w.seg"), std::io::Error::other("x"));
        let dir_fsync = StoreError::io_at("fsync dir", Path::new("d"), std::io::Error::other("x"));
        assert!(write.retryable());
        assert!(!fsync.retryable(), "fsync failures must never be retried");
        assert!(!dir_fsync.retryable());
        assert!(!StoreError::Poisoned("x".into()).retryable());
        assert!(!StoreError::Corrupt("x".into()).retryable());
        assert!(!StoreError::InvalidArgument("x".into()).retryable());
    }
}
