//! # nemo-store
//!
//! The durable storage engine under the serving layer: an append-only,
//! segmented write-ahead log of length-prefixed CRC32-checksummed records,
//! epoch-tagged snapshot files, and the retention/compaction/recovery
//! discipline that ties the two together. The crate is deliberately
//! *payload-agnostic* — records and snapshots are opaque byte strings, the
//! caller (`nemo-serve`) owns the codec — so the storage rules stay small
//! enough to reason about and property-test exhaustively:
//!
//! * **Records** ([`record`]) — every frame on disk is
//!   `[len: u32 LE][crc32(payload): u32 LE][payload]`. A frame that ends
//!   past the end of its file is *torn* (a crash cut it); a complete frame
//!   whose CRC does not match is *corrupt* (the disk or an editor did it).
//!   The two are never conflated.
//! * **Segments** ([`segment`]) — WAL files named by the epoch of their
//!   first record (`wal-<epoch20>.seg`), each starting with a magic header
//!   frame. A segment is sealed when it reaches the configured size and a
//!   new one is opened.
//! * **Snapshots** — opaque documents framed like records in
//!   `snap-<epoch20>.snap`, written to a temp file and atomically renamed.
//!   A *delta* snapshot (`snap-<epoch20>-from-<base20>.snap`) captures the
//!   same state as a difference against an older snapshot, so installs are
//!   O(delta) instead of O(state).
//! * **The store** ([`Store`]) — opens a directory, validates every frame,
//!   truncates a torn tail on the *newest* segment only (any other tear or
//!   any CRC mismatch fails loudly), appends with a configurable
//!   [`FsyncPolicy`], and triggers snapshots on byte/epoch thresholds.
//! * **The sweep** ([`sweep`], [`Store::sweep`]) — pruning of unretained
//!   snapshots and deletion of WAL segments wholly covered by the oldest
//!   retained snapshot, deferred off the write path: installs only write,
//!   the caller executes the (recomputable) [`SweepPlan`] incrementally at
//!   batch boundaries or idle ticks. Every removal hits the filesystem
//!   before the in-memory manifest, so an error or a kill at any point
//!   leaves a consistent store that resumes where it stopped.
//! * **The filesystem seam** ([`vfs`]) — every filesystem call the engine
//!   makes goes through a [`Vfs`]: [`RealFs`] in production, [`FaultFs`]
//!   under test to deterministically inject the k-th-operation fault
//!   (ENOSPC, EIO, short write, failed fsync, failed/torn rename) and
//!   prove *error-anywhere* safety the way the crash tests prove
//!   kill-anywhere safety. A failed fsync over appended records poisons
//!   the store permanently ([`StoreError::Poisoned`]) — never retried on
//!   possibly-dropped dirty pages — while rolled-back write faults stay
//!   retryable ([`StoreError::retryable`]).
//!
//! ```
//! use nemo_store::{FsyncPolicy, Store, StoreConfig};
//!
//! let dir = std::env::temp_dir().join(format!("nemo-store-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let mut config = StoreConfig::new("nemo-wal/v1");
//! config.fsync = FsyncPolicy::Never;
//! let (mut store, report) = Store::open(&dir, config.clone()).unwrap();
//! assert_eq!(report.truncated_bytes, 0);
//! store.install_snapshot(0, b"genesis state").unwrap();
//! store.append(1, b"first mutation").unwrap();
//! store.append(2, b"second mutation").unwrap();
//! store.sync().unwrap();
//!
//! // A reopened store sees the same log.
//! let (store, _) = Store::open(&dir, config).unwrap();
//! let suffix = store.replay(0).unwrap();
//! assert_eq!(suffix.len(), 2);
//! assert_eq!(suffix[1], (2, b"second mutation".to_vec()));
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![warn(missing_docs)]

pub mod crc32;
mod error;
pub mod group;
pub mod metrics;
pub mod record;
pub mod segment;
mod store;
pub mod sweep;
pub mod vfs;

pub use error::StoreError;
pub use group::GroupCommitter;
pub use metrics::{CommitMetrics, StoreMetrics};
pub use store::{
    delta_snapshot_file_name, parse_delta_snapshot_name, parse_snapshot_name, snapshot_file_name,
    FsyncPolicy, OpenReport, Store, StoreConfig,
};
pub use sweep::{SnapshotMeta, SweepOutcome, SweepPlan};
pub use vfs::{FaultFs, FaultKind, RealFs, Vfs, VfsFile};
