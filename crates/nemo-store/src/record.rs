//! Frame codec: `[len: u32 LE][crc32(payload): u32 LE][payload]`.
//!
//! A frame is the unit of both WAL records and snapshot documents. Decoding
//! a byte buffer classifies every position into exactly one of three
//! outcomes, and the distinction is the heart of crash recovery:
//!
//! * **Complete** — the full frame is present and the payload matches its
//!   CRC.
//! * **Torn** — the buffer ends before the frame does (mid-header or
//!   mid-payload). Only a crash while appending produces this, and only at
//!   the very end of the newest file, so recovery truncates it and
//!   continues.
//! * **Corrupt** — the full frame is present but the CRC does not match.
//!   No crash produces this (appends never rewrite earlier bytes), so
//!   recovery fails loudly.

use crate::crc32::crc32;
use crate::error::StoreError;

/// Bytes of frame overhead before the payload (length + checksum).
pub const FRAME_HEADER_BYTES: usize = 8;

/// Encodes one payload as a frame. Payloads must be non-empty: an empty
/// frame is `8` zero bytes (`crc32("") == 0`), which is exactly what a
/// zero-filled crash tail looks like — see [`decode_frame`].
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    debug_assert!(
        !payload.is_empty(),
        "empty frames are reserved for tear detection"
    );
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// One decoded frame: its payload and the byte range it occupied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Offset of the frame's first header byte within the scanned buffer.
    pub offset: usize,
    /// Total frame length (header + payload).
    pub len: usize,
    /// The verified payload.
    pub payload: Vec<u8>,
}

/// Result of decoding the frame starting at `offset`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decoded {
    /// A complete, checksum-verified frame.
    Complete(Frame),
    /// The buffer ends inside this frame: a crash tail. `offset` is where
    /// the torn frame starts (the truncation point).
    Torn {
        /// Start of the incomplete frame.
        offset: usize,
    },
    /// A complete frame whose checksum does not match.
    Corrupt {
        /// Start of the damaged frame.
        offset: usize,
        /// Checksum stored in the frame header.
        stored: u32,
        /// Checksum computed over the payload actually present.
        computed: u32,
    },
}

/// Decodes the frame starting at `offset`, or `None` at end of buffer.
pub fn decode_frame(buf: &[u8], offset: usize) -> Option<Decoded> {
    if offset >= buf.len() {
        return None;
    }
    let rest = &buf[offset..];
    if rest.len() < FRAME_HEADER_BYTES {
        return Some(Decoded::Torn { offset });
    }
    let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes")) as usize;
    let stored = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
    // A zero length field marks a tear, not a record: writers never emit
    // empty payloads, but a crash can persist a file-size extension before
    // the data blocks land, leaving a zero-filled tail whose first 8 zero
    // bytes would otherwise parse as a checksum-valid empty frame
    // (`crc32("") == 0`) and turn phantom padding into phantom records.
    if len == 0 {
        return Some(Decoded::Torn { offset });
    }
    if rest.len() < FRAME_HEADER_BYTES + len {
        return Some(Decoded::Torn { offset });
    }
    let payload = &rest[FRAME_HEADER_BYTES..FRAME_HEADER_BYTES + len];
    let computed = crc32(payload);
    if computed != stored {
        return Some(Decoded::Corrupt {
            offset,
            stored,
            computed,
        });
    }
    Some(Decoded::Complete(Frame {
        offset,
        len: FRAME_HEADER_BYTES + len,
        payload: payload.to_vec(),
    }))
}

/// Everything learned from scanning a whole buffer of frames.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Scan {
    /// Complete frames, in order.
    pub frames: Vec<Frame>,
    /// Offset of a torn tail, if the buffer ends mid-frame.
    pub torn_at: Option<usize>,
}

/// Scans `buf` into complete frames plus an optional torn tail.
///
/// A corrupt (complete but checksum-failing) frame is an error: appends
/// never rewrite earlier bytes, so a crash cannot explain it. `context`
/// names the file for the error message.
pub fn scan_frames(buf: &[u8], context: &str) -> Result<Scan, StoreError> {
    let mut scan = Scan::default();
    let mut offset = 0;
    while let Some(decoded) = decode_frame(buf, offset) {
        match decoded {
            Decoded::Complete(frame) => {
                offset = frame.offset + frame.len;
                scan.frames.push(frame);
            }
            Decoded::Torn { offset } => {
                scan.torn_at = Some(offset);
                return Ok(scan);
            }
            Decoded::Corrupt {
                offset,
                stored,
                computed,
            } => {
                return Err(StoreError::Corrupt(format!(
                    "{context}: frame at byte {offset} fails its checksum \
                     (stored {stored:#010x}, computed {computed:#010x})"
                )));
            }
        }
    }
    Ok(scan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_scan() {
        let mut buf = Vec::new();
        for payload in [b"alpha".as_slice(), b"b", b"gamma-longer-payload"] {
            buf.extend_from_slice(&encode_frame(payload));
        }
        let scan = scan_frames(&buf, "test").unwrap();
        assert_eq!(scan.frames.len(), 3);
        assert_eq!(scan.frames[0].payload, b"alpha");
        assert_eq!(scan.frames[1].payload, b"b");
        assert_eq!(scan.frames[2].payload, b"gamma-longer-payload");
        assert_eq!(scan.torn_at, None);
        // Frames tile the buffer exactly.
        let end = scan.frames.last().map(|f| f.offset + f.len).unwrap();
        assert_eq!(end, buf.len());
    }

    #[test]
    fn zero_filled_tails_are_torn_not_phantom_records() {
        // A crash can persist a file-size extension before the data blocks
        // flush, leaving zeros; those must read as a tear (truncate and
        // continue), never as checksum-valid empty records.
        let mut buf = encode_frame(b"real record");
        let valid = buf.len();
        buf.extend_from_slice(&[0u8; 64]);
        let scan = scan_frames(&buf, "test").unwrap();
        assert_eq!(scan.frames.len(), 1);
        assert_eq!(scan.torn_at, Some(valid));
    }

    #[test]
    fn every_truncation_is_torn_never_corrupt() {
        let mut buf = encode_frame(b"first");
        buf.extend_from_slice(&encode_frame(b"second record"));
        for cut in 0..buf.len() {
            let scan = scan_frames(&buf[..cut], "test").unwrap();
            // The surviving frames are exactly those wholly below the cut.
            let expect = [b"first".len() + FRAME_HEADER_BYTES]
                .iter()
                .filter(|&&end| end <= cut)
                .count()
                + usize::from(cut == buf.len());
            assert_eq!(scan.frames.len(), expect, "cut at {cut}");
            // Anything partial is reported torn, at a frame boundary.
            if cut == 0 || cut == 13 || cut == buf.len() {
                assert_eq!(scan.torn_at, None, "cut at {cut}");
            } else {
                assert!(scan.torn_at.is_some(), "cut at {cut}");
            }
        }
    }

    #[test]
    fn payload_and_crc_flips_are_corrupt_not_torn() {
        let buf = encode_frame(b"payload-under-test");
        // Flip every bit of the CRC field and the payload; all must be
        // reported as corruption (the frame is complete).
        for byte in 4..buf.len() {
            for bit in 0..8 {
                let mut damaged = buf.clone();
                damaged[byte] ^= 1 << bit;
                match scan_frames(&damaged, "test") {
                    Err(StoreError::Corrupt(_)) => {}
                    other => panic!("flip at byte {byte} bit {bit}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn length_field_growth_reads_as_torn() {
        // A bit flip that enlarges the length field is indistinguishable
        // from a tear (the "payload" now extends past end of file); the
        // store treats it as a torn tail on the newest segment and as
        // corruption anywhere else. Document the classification here.
        let buf = encode_frame(b"x");
        let mut damaged = buf.clone();
        damaged[2] ^= 0x10; // len 1 -> len 0x100001
        match decode_frame(&damaged, 0) {
            Some(Decoded::Torn { offset: 0 }) => {}
            other => panic!("expected torn, got {other:?}"),
        }
        // A flip that shrinks the length leaves a complete frame whose CRC
        // fails: corrupt.
        let mut buf2 = encode_frame(b"a longer payload so shrinking stays in range");
        buf2[0] ^= 0x08;
        assert!(matches!(
            decode_frame(&buf2, 0),
            Some(Decoded::Corrupt { .. })
        ));
    }
}
