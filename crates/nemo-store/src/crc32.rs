//! CRC-32 (IEEE 802.3, the zlib/`cksum -o3` polynomial), table-driven.
//!
//! Every frame the store writes carries the CRC of its payload; recovery
//! distinguishes "the crash cut this frame short" (torn: truncate and
//! continue) from "these bytes were silently damaged" (corrupt: fail
//! loudly), and the checksum is what makes the second case detectable.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xedb8_8320;

/// 256-entry lookup table, built once on first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        table
    })
}

/// CRC-32 of `bytes` (IEEE, reflected, init/final xor `0xffff_ffff`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = table();
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    crc ^ 0xffff_ffff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let payload = b"nemo-wal record payload".to_vec();
        let base = crc32(&payload);
        for byte in 0..payload.len() {
            for bit in 0..8 {
                let mut flipped = payload.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(
                    crc32(&flipped),
                    base,
                    "flip at byte {byte} bit {bit} undetected"
                );
            }
        }
    }
}
