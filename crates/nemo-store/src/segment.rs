//! WAL segment files.
//!
//! A segment is a sequence of frames ([`crate::record`]): a header frame
//! whose payload is `<magic>\n<first_epoch>` followed by one frame per WAL
//! record. The file is named `wal-<first_epoch as 20 digits>.seg`, so a
//! directory listing *is* the manifest: lexicographic filename order is
//! epoch order, and the epoch of record `i` in a segment is
//! `first_epoch + i` (the store enforces contiguous appends).

use crate::error::StoreError;
use crate::record::{encode_frame, scan_frames, Frame};
use crate::vfs::{RealFs, Vfs};
use std::path::{Path, PathBuf};

/// File extension of WAL segments.
pub const SEGMENT_EXT: &str = "seg";

/// File name of the segment whose first record carries `first_epoch`.
pub fn segment_file_name(first_epoch: u64) -> String {
    format!("wal-{first_epoch:020}.{SEGMENT_EXT}")
}

/// Parses a segment file name back to its first epoch.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("wal-")?;
    let digits = rest.strip_suffix(&format!(".{SEGMENT_EXT}"))?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Encodes a segment's header frame.
pub fn header_frame(magic: &str, first_epoch: u64) -> Vec<u8> {
    encode_frame(format!("{magic}\n{first_epoch}").as_bytes())
}

/// Everything learned from scanning one segment file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentScan {
    /// Path scanned.
    pub path: PathBuf,
    /// First epoch, per the validated header frame. `None` when the header
    /// frame itself is torn (the segment was created but the crash hit
    /// before the header landed) — such a segment holds no records.
    pub first_epoch: Option<u64>,
    /// Record frames (header excluded), in epoch order.
    pub frames: Vec<Frame>,
    /// Byte offset of a torn tail, if the file ends mid-frame.
    pub torn_at: Option<u64>,
    /// Total file length in bytes.
    pub file_len: u64,
}

impl SegmentScan {
    /// Number of complete records (header excluded).
    pub fn record_count(&self) -> u64 {
        self.frames.len() as u64
    }

    /// Epoch of the last complete record, if any.
    pub fn last_epoch(&self) -> Option<u64> {
        let first = self.first_epoch?;
        self.record_count().checked_sub(1).map(|i| first + i)
    }
}

/// Reads and validates one segment file.
///
/// The header frame (when complete) must carry `magic` and the epoch the
/// file name claims — both mismatches are corruption, not tears. A torn
/// tail is reported, never an error: whether a tear is tolerable depends on
/// the segment's position in the log, which is the store's call.
pub fn scan_segment(path: &Path, magic: &str) -> Result<SegmentScan, StoreError> {
    scan_segment_with(&RealFs, path, magic)
}

/// [`scan_segment`] reading through an explicit [`Vfs`].
pub fn scan_segment_with(
    vfs: &dyn Vfs,
    path: &Path,
    magic: &str,
) -> Result<SegmentScan, StoreError> {
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| StoreError::Corrupt(format!("unreadable segment name: {path:?}")))?;
    let named_epoch = parse_segment_name(name)
        .ok_or_else(|| StoreError::Corrupt(format!("not a segment file name: {name}")))?;
    let bytes = vfs
        .read(path)
        .map_err(|e| StoreError::io_at("read", path, e))?;
    let context = path.display().to_string();
    let scan = scan_frames(&bytes, &context)?;
    let mut frames = scan.frames;
    let first_epoch = if frames.is_empty() {
        None
    } else {
        let header = frames.remove(0);
        let text = String::from_utf8(header.payload)
            .map_err(|_| StoreError::Corrupt(format!("{context}: header is not UTF-8")))?;
        let (file_magic, epoch_text) = text
            .split_once('\n')
            .ok_or_else(|| StoreError::Corrupt(format!("{context}: malformed header")))?;
        if file_magic != magic {
            return Err(StoreError::Corrupt(format!(
                "{context}: header magic is {file_magic:?}, want {magic:?}"
            )));
        }
        let header_epoch: u64 = epoch_text
            .parse()
            .map_err(|_| StoreError::Corrupt(format!("{context}: bad header epoch")))?;
        if header_epoch != named_epoch {
            return Err(StoreError::Corrupt(format!(
                "{context}: header epoch {header_epoch} disagrees with file name ({named_epoch})"
            )));
        }
        Some(header_epoch)
    };
    Ok(SegmentScan {
        path: path.to_path_buf(),
        first_epoch,
        frames,
        torn_at: scan.torn_at.map(|o| o as u64),
        file_len: bytes.len() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("nemo-store-segment-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn names_round_trip() {
        assert_eq!(segment_file_name(7), "wal-00000000000000000007.seg");
        assert_eq!(parse_segment_name("wal-00000000000000000007.seg"), Some(7));
        assert_eq!(parse_segment_name("snap-00000000000000000007.snap"), None);
        assert_eq!(parse_segment_name("wal-7.seg"), None);
    }

    #[test]
    fn scan_reads_header_and_records() {
        let dir = temp_dir("scan");
        let path = dir.join(segment_file_name(4));
        let mut bytes = header_frame("magic/v1", 4);
        bytes.extend_from_slice(&encode_frame(b"r4"));
        bytes.extend_from_slice(&encode_frame(b"r5"));
        fs::write(&path, &bytes).unwrap();
        let scan = scan_segment(&path, "magic/v1").unwrap();
        assert_eq!(scan.first_epoch, Some(4));
        assert_eq!(scan.record_count(), 2);
        assert_eq!(scan.last_epoch(), Some(5));
        assert_eq!(scan.torn_at, None);
        assert_eq!(scan.frames[0].payload, b"r4");
        // Wrong magic is corruption.
        assert!(matches!(
            scan_segment(&path, "other/v2"),
            Err(StoreError::Corrupt(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_header_yields_no_records() {
        let dir = temp_dir("torn");
        let path = dir.join(segment_file_name(9));
        let header = header_frame("magic/v1", 9);
        fs::write(&path, &header[..header.len() - 3]).unwrap();
        let scan = scan_segment(&path, "magic/v1").unwrap();
        assert_eq!(scan.first_epoch, None);
        assert_eq!(scan.record_count(), 0);
        assert_eq!(scan.last_epoch(), None);
        assert!(scan.torn_at.is_some());
        // An empty file (crash between create and header write) is the
        // degenerate case: no records, not even torn.
        fs::write(&path, b"").unwrap();
        let scan = scan_segment(&path, "magic/v1").unwrap();
        assert_eq!(scan.first_epoch, None);
        assert_eq!(scan.torn_at, None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn renamed_segment_is_rejected() {
        let dir = temp_dir("rename");
        let path = dir.join(segment_file_name(3));
        fs::write(&path, header_frame("magic/v1", 8)).unwrap();
        match scan_segment(&path, "magic/v1") {
            Err(StoreError::Corrupt(msg)) => assert!(msg.contains("disagrees")),
            other => panic!("expected corruption, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
