//! The virtual filesystem seam under the store.
//!
//! Every filesystem operation the storage engine performs goes through a
//! [`Vfs`] — directory listing, segment creation, appends, fsyncs,
//! renames, removals. Two implementations exist:
//!
//! * [`RealFs`] — `std::fs`, the default. A store opened through
//!   [`crate::Store::open`] behaves exactly as before the seam existed.
//! * [`FaultFs`] — a deterministic fault injector: it counts every
//!   operation and injects one scripted fault ([`FaultKind`]) at the
//!   first *applicable* operation whose index reaches `fault_at`. Tests
//!   sweep `fault_at` across a workload's whole operation space the same
//!   way the crash tests sweep truncation offsets, proving error-anywhere
//!   safety instead of just kill-anywhere safety.
//!
//! The seam is operation-shaped, not byte-shaped: a fault lands on a
//! whole `write_all`/`sync_data`/`rename`, which is the granularity real
//! disks fail at (ENOSPC on a write, EIO on an fsync, a rename that
//! reached the directory but whose acknowledgment was lost).

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An open file handle behind the [`Vfs`] seam.
///
/// Only the operations the store actually performs are exposed: appends
/// (`write_all`), data fsync, truncation (crash-tail and short-write
/// repair) and handle duplication (the group committer fsyncs a duplicate
/// with the store lock released).
pub trait VfsFile: Send + fmt::Debug {
    /// Writes the whole buffer (at end-of-file for append-opened handles).
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Flushes written data to the platter (`fdatasync`).
    fn sync_data(&self) -> io::Result<()>;
    /// Truncates (or extends) the file to `len` bytes.
    fn set_len(&self, len: u64) -> io::Result<()>;
    /// Duplicates the handle; both cover the same underlying file.
    fn try_clone(&self) -> io::Result<Box<dyn VfsFile>>;
}

/// The filesystem operations the store performs, behind one seam.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// `std::fs::create_dir_all`.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Lists a directory's entry paths, **sorted by name** so downstream
    /// operation order (and therefore fault-injection op indices) is
    /// deterministic across platforms.
    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Atomically renames `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Opens an existing file for append.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Creates a brand-new file (failing if it exists), opened for append.
    fn create_new(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Creates-or-truncates a file for writing (snapshot temp files).
    fn create_truncate(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Opens an existing file for write without truncating (tail repair).
    fn open_write(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Fsyncs a directory, making renames/creates/removals in it durable.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
}

/// The production filesystem: a thin veneer over `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealFs;

#[derive(Debug)]
struct RealFile(File);

impl VfsFile for RealFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }
    fn sync_data(&self) -> io::Result<()> {
        self.0.sync_data()
    }
    fn set_len(&self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }
    fn try_clone(&self) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(RealFile(self.0.try_clone()?)))
    }
}

impl Vfs for RealFs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }
    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut entries = Vec::new();
        for entry in std::fs::read_dir(path)? {
            entries.push(entry?.path());
        }
        entries.sort();
        Ok(entries)
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Box::new(RealFile(file)))
    }
    fn create_new(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        // Append mode even for fresh files: every write lands at EOF, so
        // truncating a partial tail (`set_len`) repositions the next
        // write at the clean boundary instead of leaving a hole.
        let file = OpenOptions::new()
            .append(true)
            .create_new(true)
            .open(path)?;
        Ok(Box::new(RealFile(file)))
    }
    fn create_truncate(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(RealFile(file)))
    }
    fn open_write(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new().write(true).open(path)?;
        Ok(Box::new(RealFile(file)))
    }
    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        File::open(path)?.sync_all()
    }
}

/// The fault taxonomy [`FaultFs`] can inject — one per script.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A write fails with "no space left on device"; nothing is written.
    Enospc,
    /// A read, write, open, create, removal or listing fails with an I/O
    /// error; nothing is transferred.
    Eio,
    /// A write transfers only the first half of the buffer, then fails —
    /// the torn-tail case a dying disk (or a crash mid-`write`) produces.
    ShortWrite,
    /// An fsync (file or directory) fails. Per fsyncgate semantics the
    /// dirty pages' fate is unknown, so the store never retries it:
    /// fsync failure on a file holding appended records poisons the
    /// store permanently.
    FailedFsync,
    /// A rename fails; the source file stays where it was.
    FailedRename,
    /// A *torn* rename: the entry moves in the directory, but the
    /// operation still reports failure (the acknowledgment was lost —
    /// e.g. the failure surfaced in the journal commit). The caller must
    /// tolerate the destination existing despite the error.
    TornRename,
}

impl FaultKind {
    /// Every kind, for exhaustive sweeps.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::Enospc,
        FaultKind::Eio,
        FaultKind::ShortWrite,
        FaultKind::FailedFsync,
        FaultKind::FailedRename,
        FaultKind::TornRename,
    ];

    /// A stable name (CLI flags, test labels).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Enospc => "enospc",
            FaultKind::Eio => "eio",
            FaultKind::ShortWrite => "short-write",
            FaultKind::FailedFsync => "fsync",
            FaultKind::FailedRename => "rename",
            FaultKind::TornRename => "torn-rename",
        }
    }

    /// Parses [`FaultKind::name`] back.
    pub fn parse(name: &str) -> Option<FaultKind> {
        FaultKind::ALL.iter().copied().find(|k| k.name() == name)
    }

    fn applies_to(&self, op: FaultOp) -> bool {
        match self {
            FaultKind::Enospc => matches!(op, FaultOp::Write | FaultOp::Create),
            FaultKind::Eio => matches!(
                op,
                FaultOp::Read
                    | FaultOp::Write
                    | FaultOp::Open
                    | FaultOp::Create
                    | FaultOp::Remove
                    | FaultOp::List
            ),
            FaultKind::ShortWrite => matches!(op, FaultOp::Write),
            FaultKind::FailedFsync => matches!(op, FaultOp::Fsync),
            FaultKind::FailedRename | FaultKind::TornRename => matches!(op, FaultOp::Rename),
        }
    }

    fn error(&self) -> io::Error {
        io::Error::other(format!("injected fault: {}", self.name()))
    }
}

/// The operation classes a fault can land on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultOp {
    Read,
    Write,
    Fsync,
    Rename,
    Remove,
    Open,
    Create,
    List,
}

#[derive(Debug)]
struct FaultCore {
    kind: FaultKind,
    fault_at: u64,
    ops: AtomicU64,
    /// Where the (single-shot) fault fired, once it has.
    injected: Mutex<Option<String>>,
}

impl FaultCore {
    /// Counts one operation; returns the injected error when the armed
    /// fault fires here: the first operation of an applicable class whose
    /// global index reached `fault_at`.
    fn tick(&self, op: FaultOp, path: &Path) -> Option<io::Error> {
        let index = self.ops.fetch_add(1, Ordering::SeqCst);
        if index < self.fault_at || !self.kind.applies_to(op) {
            return None;
        }
        let mut injected = self.injected.lock().unwrap_or_else(|e| e.into_inner());
        if injected.is_some() {
            return None; // single-shot: one fault per script
        }
        *injected = Some(format!(
            "{} at op {index} ({op:?} {})",
            self.kind.name(),
            path.display()
        ));
        Some(self.kind.error())
    }
}

/// A deterministic single-fault injector over [`RealFs`].
///
/// Counts every [`Vfs`]/[`VfsFile`] operation; the scripted [`FaultKind`]
/// fires at the first applicable operation whose index reaches
/// `fault_at`, exactly once. With `fault_at` past the workload's
/// operation count nothing fires and [`FaultFs::ops`] reports the total —
/// the calibration run an exhaustive sweep starts from.
#[derive(Debug, Clone)]
pub struct FaultFs {
    inner: RealFs,
    core: Arc<FaultCore>,
}

impl FaultFs {
    /// A fault injector arming `kind` at operation index `fault_at`.
    pub fn new(kind: FaultKind, fault_at: u64) -> FaultFs {
        FaultFs {
            inner: RealFs,
            core: Arc::new(FaultCore {
                kind,
                fault_at,
                ops: AtomicU64::new(0),
                injected: Mutex::new(None),
            }),
        }
    }

    /// Operations observed so far.
    pub fn ops(&self) -> u64 {
        self.core.ops.load(Ordering::SeqCst)
    }

    /// Where the fault fired, if it has (kind, op index, operation, path).
    pub fn injection(&self) -> Option<String> {
        self.core
            .injected
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

#[derive(Debug)]
struct FaultFile {
    core: Arc<FaultCore>,
    inner: Box<dyn VfsFile>,
    path: PathBuf,
}

impl VfsFile for FaultFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        if let Some(err) = self.core.tick(FaultOp::Write, &self.path) {
            if self.core.kind == FaultKind::ShortWrite {
                // Tear the write for real: half the buffer lands, then
                // the failure surfaces — the on-disk state a crash
                // mid-write leaves behind.
                self.inner.write_all(&buf[..buf.len() / 2])?;
            }
            return Err(err);
        }
        self.inner.write_all(buf)
    }
    fn sync_data(&self) -> io::Result<()> {
        if let Some(err) = self.core.tick(FaultOp::Fsync, &self.path) {
            return Err(err);
        }
        self.inner.sync_data()
    }
    fn set_len(&self, len: u64) -> io::Result<()> {
        // Truncation is the *repair* path (crash tails, short writes);
        // it is not a faultable class, but it still counts as an op.
        self.core.tick(FaultOp::Read, &self.path);
        self.inner.set_len(len)
    }
    fn try_clone(&self) -> io::Result<Box<dyn VfsFile>> {
        if let Some(err) = self.core.tick(FaultOp::Open, &self.path) {
            return Err(err);
        }
        Ok(Box::new(FaultFile {
            core: Arc::clone(&self.core),
            inner: self.inner.try_clone()?,
            path: self.path.clone(),
        }))
    }
}

impl FaultFs {
    fn wrap(
        &self,
        path: &Path,
        inner: io::Result<Box<dyn VfsFile>>,
    ) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(FaultFile {
            core: Arc::clone(&self.core),
            inner: inner?,
            path: path.to_path_buf(),
        }))
    }
}

impl Vfs for FaultFs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        if let Some(err) = self.core.tick(FaultOp::List, path) {
            return Err(err);
        }
        self.inner.create_dir_all(path)
    }
    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        if let Some(err) = self.core.tick(FaultOp::List, path) {
            return Err(err);
        }
        self.inner.read_dir(path)
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        if let Some(err) = self.core.tick(FaultOp::Read, path) {
            return Err(err);
        }
        self.inner.read(path)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        if let Some(err) = self.core.tick(FaultOp::Remove, path) {
            return Err(err);
        }
        self.inner.remove_file(path)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if let Some(err) = self.core.tick(FaultOp::Rename, to) {
            if self.core.kind == FaultKind::TornRename {
                // The rename reaches the directory; only the
                // acknowledgment is lost.
                self.inner.rename(from, to)?;
            }
            return Err(err);
        }
        self.inner.rename(from, to)
    }
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        if let Some(err) = self.core.tick(FaultOp::Open, path) {
            return Err(err);
        }
        self.wrap(path, self.inner.open_append(path))
    }
    fn create_new(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        if let Some(err) = self.core.tick(FaultOp::Create, path) {
            return Err(err);
        }
        self.wrap(path, self.inner.create_new(path))
    }
    fn create_truncate(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        if let Some(err) = self.core.tick(FaultOp::Create, path) {
            return Err(err);
        }
        self.wrap(path, self.inner.create_truncate(path))
    }
    fn open_write(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        if let Some(err) = self.core.tick(FaultOp::Open, path) {
            return Err(err);
        }
        self.wrap(path, self.inner.open_write(path))
    }
    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        if let Some(err) = self.core.tick(FaultOp::Fsync, path) {
            return Err(err);
        }
        self.inner.sync_dir(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nemo-vfs-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn fault_kind_names_round_trip() {
        for kind in FaultKind::ALL {
            assert_eq!(FaultKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(FaultKind::parse("bogus"), None);
    }

    #[test]
    fn fault_fires_once_at_the_first_applicable_op() {
        let dir = temp_dir("once");
        let fs = FaultFs::new(FaultKind::Eio, 2);
        let path = dir.join("a.bin");
        // Ops 0 and 1 pass; op 2 is the first at or past the arm point.
        fs.read_dir(&dir).unwrap();
        let mut f = fs.create_truncate(&path).unwrap();
        assert!(f.write_all(b"boom").is_err(), "op 2 must inject");
        assert!(fs.injection().unwrap().contains("eio"));
        // Single-shot: later ops succeed again.
        f.write_all(b"fine").unwrap();
        assert_eq!(fs.read(&path).unwrap(), b"fine");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn short_write_tears_the_buffer_and_torn_rename_lands() {
        let dir = temp_dir("tear");
        let fs = FaultFs::new(FaultKind::ShortWrite, 0);
        let path = dir.join("t.bin");
        // Creation is not a Write class op for ShortWrite; the write is.
        let mut f = fs.create_truncate(&path).unwrap();
        assert!(f.write_all(b"12345678").is_err());
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), b"1234", "half landed");

        let fs = FaultFs::new(FaultKind::TornRename, 0);
        let from = dir.join("from.bin");
        let to = dir.join("to.bin");
        std::fs::write(&from, b"x").unwrap();
        assert!(fs.rename(&from, &to).is_err());
        assert!(to.exists(), "torn rename reached the directory");
        assert!(!from.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unarmed_fault_counts_ops_for_calibration() {
        let dir = temp_dir("calibrate");
        let fs = FaultFs::new(FaultKind::Enospc, u64::MAX);
        fs.read_dir(&dir).unwrap();
        let mut f = fs.create_truncate(&dir.join("c.bin")).unwrap();
        f.write_all(b"data").unwrap();
        f.sync_data().unwrap();
        assert_eq!(fs.ops(), 4);
        assert_eq!(fs.injection(), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
