//! Criterion benchmarks of the end-to-end pipeline: the per-query cost of
//! the full prompt → LLM → sandbox → evaluate loop (the unit of work behind
//! Tables 2–4), the pass@k sweep behind the Table-6 ablation, and the cost
//! model behind Figure 4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nemo_bench::runner::{
    cost_comparison, run_accuracy_benchmark_for, run_accuracy_benchmark_with_threads,
    run_case_study, DEFAULT_SEED,
};
use nemo_bench::{BenchmarkSuite, SuiteConfig};
use nemo_core::llm::profiles;
use nemo_core::{Backend, NetworkManager, SimulatedLlm};

fn suite() -> BenchmarkSuite {
    BenchmarkSuite::build(&SuiteConfig::small())
}

/// One full query through the pipeline (traffic analysis, NetworkX backend).
fn bench_single_query(c: &mut Criterion) {
    let suite = suite();
    let query = &suite.queries_for(nemo_core::Application::TrafficAnalysis)[0];
    let golden = &query.goldens[&Backend::NetworkX];
    c.bench_function("pipeline_single_query", |b| {
        b.iter(|| {
            let mut llm = SimulatedLlm::new(profiles::gpt4(), suite.knowledge(), DEFAULT_SEED);
            let mut manager = NetworkManager::new(&suite.traffic_app, &mut llm);
            manager.run_query(Backend::NetworkX, query.spec.text, golden)
        })
    });
}

/// The full single-model accuracy run (one row of Table 2).
fn bench_accuracy_row(c: &mut Criterion) {
    let suite = suite();
    let mut group = c.benchmark_group("accuracy_row");

    group.bench_function("gpt4_all_backends", |b| {
        b.iter(|| run_accuracy_benchmark_for(&suite, &[profiles::gpt4()], DEFAULT_SEED))
    });
    group.finish();
}

/// Thread scaling of the parallel matrix runner: the same single-model
/// accuracy row at pinned worker counts (the `NEMO_THREADS` lever). The
/// output is identical at every point; only wall-clock should move.
fn bench_matrix_threads(c: &mut Criterion) {
    let suite = suite();
    let mut group = c.benchmark_group("matrix_threads");
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                run_accuracy_benchmark_with_threads(&suite, &[profiles::gpt4()], DEFAULT_SEED, t)
            })
        });
    }
    group.finish();
}

/// Pass@k sweep (the Table-6 ablation: how much each extra attempt buys).
fn bench_pass_at_k(c: &mut Criterion) {
    let suite = suite();
    let mut group = c.benchmark_group("pass_at_k");

    for k in [1usize, 3, 5, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| run_case_study(&suite, &profiles::bard(), k, DEFAULT_SEED))
        });
    }
    group.finish();
}

/// The Figure-4 cost model across graph sizes.
fn bench_cost_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost_model");
    for size in [80usize, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter(|| cost_comparison(&profiles::gpt4(), size, DEFAULT_SEED))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_single_query, bench_accuracy_row, bench_matrix_threads, bench_pass_at_k, bench_cost_model
}
criterion_main!(benches);
