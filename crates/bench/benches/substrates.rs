//! Criterion micro-benchmarks of the substrates, used as ablations for the
//! design choices called out in DESIGN.md: graph representation costs,
//! dataframe group-by, SQL execution and GraphScript interpretation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dataframe::ops::AggFunc;
use graphscript::{Interpreter, Value};
use netgraph::algo::degree::node_weight_totals;
use sqlengine::Database;
use trafficgen::{export, generate, TrafficConfig};

fn workload(size: usize) -> trafficgen::TrafficWorkload {
    generate(&TrafficConfig {
        nodes: size,
        edges: size * 2,
        prefixes: 6,
        seed: 42,
    })
}

/// Graph-substrate ablation: adjacency queries vs whole-edge scans.
fn bench_graph_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_ops");
    for size in [100usize, 400] {
        let g = export::to_graph(&workload(size));
        group.bench_with_input(BenchmarkId::new("node_weight_totals", size), &g, |b, g| {
            b.iter(|| node_weight_totals(g, "bytes").unwrap())
        });
        group.bench_with_input(BenchmarkId::new("neighbors_scan", size), &g, |b, g| {
            b.iter(|| {
                let mut total = 0usize;
                for n in g.node_ids() {
                    total += g.neighbors(n).unwrap().len();
                }
                total
            })
        });
        group.bench_with_input(BenchmarkId::new("edge_scan_sum", size), &g, |b, g| {
            b.iter(|| g.total_edge_attr("bytes"))
        });
    }
    group.finish();
}

/// Dataframe ablation: group-by aggregation and filtering cost.
fn bench_dataframe_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataframe_ops");
    for size in [100usize, 400] {
        let (_, edges) = export::to_frames(&workload(size));
        group.bench_with_input(BenchmarkId::new("groupby_sum", size), &edges, |b, edges| {
            b.iter(|| {
                edges
                    .group_agg("source", "bytes", AggFunc::Sum, "total")
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("sort_desc", size), &edges, |b, edges| {
            b.iter(|| edges.sort_values(&["bytes"], false).unwrap())
        });
    }
    group.finish();
}

/// SQL ablation: the same aggregation expressed as SQL text (lex + parse +
/// execute per iteration, as the sandbox does).
fn bench_sql_exec(c: &mut Criterion) {
    let mut group = c.benchmark_group("sql_exec");
    for size in [100usize, 400] {
        let db = export::to_database(&workload(size));
        group.bench_with_input(BenchmarkId::new("group_by_sum", size), &db, |b, db| {
            b.iter(|| {
                let mut db = db.clone();
                db.execute(
                    "SELECT source, SUM(bytes) AS total FROM edges GROUP BY source ORDER BY total DESC LIMIT 5",
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

/// Interpreter ablation: the per-query cost of running a golden program in
/// the sandboxed interpreter, compared with the native substrate call.
fn bench_interpreter(c: &mut Criterion) {
    let mut group = c.benchmark_group("interpreter");
    let g = export::to_graph(&workload(100));
    let program = r#"
totals = node_weight_totals(G, "bytes")
result = top_k(totals, 5)
"#;
    group.bench_function("graphscript_top_talkers", |b| {
        b.iter(|| {
            let mut interp = Interpreter::new();
            interp.set_global("G", Value::graph(g.clone()));
            interp.run(program).unwrap()
        })
    });
    group.bench_function("native_top_talkers", |b| {
        b.iter(|| {
            let totals = node_weight_totals(&g, "bytes").unwrap();
            netgraph::algo::degree::top_k_by_score(&totals, 5)
        })
    });
    group.finish();
}

/// SQL parsing alone (how much of the SQL cost is the front end).
fn bench_sql_parse(c: &mut Criterion) {
    let sql = "SELECT IP_PREFIX(source, 2) AS prefix, SUM(bytes) AS total FROM edges \
               WHERE bytes > 100 GROUP BY IP_PREFIX(source, 2) ORDER BY total DESC LIMIT 3";
    c.bench_function("sql_parse_only", |b| {
        b.iter(|| sqlengine::parse_statement(sql).unwrap())
    });
    let mut db = Database::new();
    let (_, edges) = export::to_frames(&workload(100));
    db.create_table("edges", edges);
    c.bench_function("sql_parse_and_execute", |b| {
        b.iter(|| db.clone().execute(sql).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_graph_ops, bench_dataframe_ops, bench_sql_exec, bench_interpreter, bench_sql_parse
}
criterion_main!(benches);
