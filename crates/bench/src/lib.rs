//! Shared plumbing for the table/figure regeneration binaries.
//!
//! Each binary (`table2` … `table6`, `figure4a`, `figure4b`) regenerates one
//! table or figure from the paper's evaluation section. They all run the
//! same full benchmark, so the shared pieces live here.

#![warn(missing_docs)]

use nemo_bench::{runner, BenchmarkSuite, SuiteConfig};
use nemo_core::ResultsLogger;

/// Builds the benchmark suite used by every regeneration binary.
///
/// Setting the environment variable `NEMO_SMALL=1` switches to the reduced
/// MALT preset, which is useful when iterating locally. Suite construction
/// and every benchmark stage fan out over `NEMO_THREADS` worker threads
/// (default: available parallelism); results are identical at any thread
/// count.
pub fn build_suite() -> BenchmarkSuite {
    if std::env::var("NEMO_SMALL").is_ok() {
        BenchmarkSuite::build(&SuiteConfig::small())
    } else {
        BenchmarkSuite::build_default()
    }
}

/// Runs the full accuracy benchmark (all four model profiles) with the
/// published seed, parallel over `NEMO_THREADS` workers. The log is
/// bit-for-bit identical at any thread count, so the knob is purely a
/// wall-clock lever.
pub fn run_full(suite: &BenchmarkSuite) -> ResultsLogger {
    eprintln!(
        "[bench] running on {} worker thread(s) (override with {}=N)",
        nemo_bench::pool::thread_count(),
        nemo_bench::pool::THREADS_ENV,
    );
    runner::run_accuracy_benchmark(suite, runner::DEFAULT_SEED)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_builds_through_the_helper() {
        std::env::set_var("NEMO_SMALL", "1");
        let suite = build_suite();
        assert_eq!(suite.queries.len(), 33);
        std::env::remove_var("NEMO_SMALL");
    }
}
