//! Regenerates Table 6: the Bard + pass@5 / self-debug case study on MALT.
//!
//! Parallelism: set `NEMO_THREADS=N` to pin the worker-thread count
//! (default: available parallelism); output is identical at any setting.

use nemo_bench::runner::{run_case_study, DEFAULT_SEED};
use nemo_core::llm::profiles;

fn main() {
    let suite = bench::build_suite();
    let result = run_case_study(&suite, &profiles::bard(), 5, DEFAULT_SEED);
    println!(
        "{}",
        nemo_bench::report::format_table6("Google Bard", &result)
    );
}
