//! Regenerates Table 4: MALT accuracy by complexity.

fn main() {
    let suite = bench::build_suite();
    let logger = bench::run_full(&suite);
    println!("{}", nemo_bench::report::format_table4(&suite, &logger));
}
