//! Regenerates Table 3: traffic-analysis accuracy by complexity.

fn main() {
    let suite = bench::build_suite();
    let logger = bench::run_full(&suite);
    println!("{}", nemo_bench::report::format_table3(&suite, &logger));
}
