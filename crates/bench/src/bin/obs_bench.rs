//! Observability benchmark + metrics smoke driver: what the PR 9
//! `nemo-obs` instrumentation costs on the hot paths (expected: nothing
//! measurable), and the CI smoke mode that proves the `nemo-metrics/v1`
//! document is schema-valid and its logical subset is invariant across
//! worker-thread and shard counts.
//!
//! Usage:
//!
//! ```text
//! obs_bench [--pr pr9] [--out BENCH_pr9.json]
//! obs_bench --smoke --shards <n> --logical <file> [--doc <file>]
//! ```
//!
//! The default mode records, into the `nemo-perf-report/v1` schema:
//!
//! * `instrumented_append_ms` — wall milliseconds per `Store::append`
//!   (fsync never), `before` with no metrics attached (the detached
//!   `Default` cells), `after` with a [`StoreMetrics`] bundle registered
//!   in a live [`Registry`]. The speedup must sit at ~1.0: recording
//!   into atomic cells without taking snapshots is the free path.
//! * `vfs_logged_append_mps` / `healthy_read_qps` — the PR 8 parity
//!   numbers, re-measured with instrumentation live, so
//!   `BENCH_pr9.json` pins the instrumented hot paths directly against
//!   `BENCH_pr8.json`.
//! * `registry_counter_inc_mps` / `registry_histogram_record_mps` —
//!   raw recording throughput of one counter / histogram cell.
//! * `registry_snapshot_ms` — cost of one full snapshot + JSON render
//!   of a serving-shaped registry (the price of *looking*, paid only
//!   when a stats request arrives).
//!
//! With `--pr pr10` the report instead pins the PR 10 trace-tree cost,
//! driving the identical `Relabel` mutation stream down four paths:
//!
//! * `traced_idle_mutate_ms` — wall milliseconds per typed mutation,
//!   `before` on a server whose tracer is detached and disabled (no
//!   caller holds a handle, no trace can ever be observed — the
//!   untraced path), `after` with a caller-attached tracer handle,
//!   idle. Attaching the trace consumer must be free — the same
//!   attach-a-registry parity `BENCH_pr9.json` pins for metrics,
//!   replayed for traces. The acceptance gate: speedup >= 0.97x.
//! * `typed_dispatch_mutate_ms` — context pair: `before` the untyped
//!   `apply_mutation` path, `after` typed `handle()` dispatch. The gap
//!   is protocol cost (request construction, mutation clone, response
//!   + description), present since PR 6 and independent of tracing.
//! * `flight_recorder_mutate_ms` — `before` traced-but-idle, `after`
//!   with the flight recorder enabled (root span minted per request,
//!   route/apply/WAL spans recorded, ring at steady-state eviction):
//!   the honest cost of turning recording on, dominated by the safe
//!   monotonic-clock reads at span open/close (`unsafe_code` is denied
//!   workspace-wide, so no raw TSC).
//! * `recording_mutate_mps` — absolute recording-on throughput.
//!
//! The smoke mode drives a pool-fanned multi-client durability run and
//! a typed-request sharded drive into **one shared registry**, fetches
//! [`Request::Stats`], schema-validates the embedded document, and
//! writes the logical subset to `--logical` — CI byte-compares that
//! file across its `NEMO_THREADS` x shards matrix. The typed drive also
//! records into a flight recorder; `--traces` / `--chrome` /
//! `--skeleton` dump the schema-validated `nemo-trace/v1` document, the
//! Chrome `traceEvents` export, and the logical trace skeletons (the
//! matrix-compared byte-identical axis).

use nemo_bench::perf::{self, Measurement};
use nemo_bench::pool;
use nemo_core::llm::profiles;
use nemo_core::{Backend, SimulatedLlm};
use nemo_obs::trace::Tracer;
use nemo_obs::{Class, Registry};
use nemo_serve::driver::{self, DriveConfig};
use nemo_serve::durability::{self, DurabilityConfig};
use nemo_serve::{
    validate_chrome_doc, validate_trace_doc, LiveNetwork, PersistOptions, Request, Response,
    ServeEvent, Server, ServerBuilder, Session,
};
use nemo_store::{RealFs, Store, StoreConfig, StoreMetrics, Vfs};
use netgraph::json::JsonValue;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;
use trafficgen::{evolve, generate, NetEvent, StreamConfig, TimedEvent};

fn usage() -> ExitCode {
    eprintln!(
        "usage: obs_bench [--pr <tag>] [--out <file>]\n\
         \u{20}      obs_bench --smoke --shards <n> --logical <file> [--doc <file>]\n\
         \u{20}          [--traces <file>] [--chrome <file>] [--skeleton <file>]"
    );
    ExitCode::FAILURE
}

struct BenchSizes {
    /// Appends in the instrumented-append runs.
    appends: usize,
    /// Cell operations in the raw registry microbenches.
    cell_ops: usize,
    /// Timed query rounds in the healthy-read run.
    query_rounds: usize,
    /// Snapshot + render repetitions.
    snapshots: usize,
}

impl BenchSizes {
    fn from_env() -> Self {
        if std::env::var("NEMO_SMALL").is_ok() {
            BenchSizes {
                appends: 2_000,
                cell_ops: 200_000,
                query_rounds: 3,
                snapshots: 20,
            }
        } else {
            BenchSizes {
                appends: 20_000,
                cell_ops: 2_000_000,
                query_rounds: 6,
                snapshots: 200,
            }
        }
    }
}

fn store_config() -> StoreConfig {
    StoreConfig {
        magic: "nemo-obs-bench/v1".to_string(),
        fsync: nemo_store::FsyncPolicy::Never,
        segment_max_bytes: 256 << 10,
        snapshot_every_bytes: 0,
        snapshot_every_epochs: 0,
        keep_snapshots: 1,
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nemo-obs-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A WAL-record-sized payload, distinct per epoch.
fn payload(epoch: u64) -> Vec<u8> {
    format!(
        "{{\"schema\":\"nemo-obs-bench/v1\",\"epoch\":{epoch},\"mutation\":\
         \"set-flow 10.0.0.1->10.0.0.2 bytes={}\"}}",
        epoch * 131
    )
    .into_bytes()
}

/// Appends per second through `Store::append` (fsync never), with or
/// without a registered [`StoreMetrics`] bundle attached — the
/// instrumentation-overhead probe.
fn append_mps(appends: usize, metrics: Option<StoreMetrics>) -> f64 {
    let dir = scratch_dir(if metrics.is_some() {
        "append-observed"
    } else {
        "append-bare"
    });
    let (mut store, _) = Store::open_with(&dir, store_config(), Arc::new(RealFs) as Arc<dyn Vfs>)
        .expect("fresh bench store");
    if let Some(metrics) = metrics {
        store.attach_metrics(metrics);
    }
    let start = Instant::now();
    for epoch in 1..=appends as u64 {
        store
            .append(epoch, &payload(epoch))
            .expect("bench append succeeds");
    }
    let elapsed = start.elapsed().as_secs_f64();
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    appends as f64 / elapsed
}

/// Raw recording throughput of one counter cell, ops per second.
fn counter_inc_mps(ops: usize) -> f64 {
    let registry = Registry::new();
    let counter = registry.counter("bench_counter", Class::Physical);
    let start = Instant::now();
    for _ in 0..ops {
        counter.inc();
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(counter.get(), ops as u64);
    ops as f64 / elapsed
}

/// Raw recording throughput of one histogram cell, ops per second.
fn histogram_record_mps(ops: usize) -> f64 {
    let registry = Registry::new();
    let histogram = registry.histogram("bench_histogram", Class::Physical);
    let start = Instant::now();
    for i in 0..ops {
        histogram.record(i as u64);
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(histogram.snapshot().count, ops as u64);
    ops as f64 / elapsed
}

/// Milliseconds per full snapshot + JSON render of a serving-shaped
/// registry (every PR 9 metric family registered, cells warm).
fn snapshot_ms(snapshots: usize) -> f64 {
    let registry = Registry::new();
    let serve = nemo_serve::ServeMetrics::register(&registry, 4);
    serve.requests_query.add(1_000);
    serve.query_micros.record(37);
    let start = Instant::now();
    let mut bytes = 0usize;
    for _ in 0..snapshots {
        bytes += registry.snapshot().to_json().len();
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert!(bytes > 0);
    elapsed * 1e3 / snapshots as f64
}

/// Cached-read throughput of a healthy persistent server with a live
/// registry attached — the PR 8 `healthy_read_qps` parity number,
/// instrumented.
fn healthy_read_qps(rounds: usize) -> f64 {
    let config = DriveConfig::from_env();
    let queries: Vec<String> = nemo_bench::traffic_queries()
        .into_iter()
        .take(8)
        .map(|spec| spec.text.to_string())
        .collect();
    let workload = generate(&config.traffic);
    let live = LiveNetwork::from_workload(&workload);
    let sessions: Vec<Session<SimulatedLlm>> = Backend::CODEGEN
        .iter()
        .enumerate()
        .map(|(i, &backend)| Session {
            client: i,
            backend,
            llm: SimulatedLlm::new(
                profiles::gpt4(),
                driver::serving_knowledge(),
                config.seed ^ i as u64,
            ),
        })
        .collect();
    let dir = scratch_dir("healthy");
    let registry = Registry::new();
    let mut server = ServerBuilder::new()
        .options(PersistOptions {
            fsync: nemo_serve::FsyncPolicy::EveryRecord,
            registry: registry.clone(),
            ..PersistOptions::default()
        })
        .persist_at(&dir)
        .build(live, sessions)
        .expect("fresh persistent build");
    let stream = evolve(
        &workload,
        &StreamConfig {
            events: 2,
            seed: config.seed,
        },
    );
    server
        .apply_mutation(&stream[0])
        .expect("first mutation applies");
    let warm = |server: &mut Server<SimulatedLlm>| {
        let mut samples = Vec::new();
        for client in 0..Backend::CODEGEN.len() {
            for query in &queries {
                samples.push(server.handle_query(client, query).latency_ms);
            }
        }
        samples
    };
    let _ = warm(&mut server);
    let mut samples = Vec::new();
    for _ in 0..rounds {
        samples.extend(warm(&mut server));
    }
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
    let total_ms: f64 = samples.iter().sum();
    if total_ms <= 0.0 {
        0.0
    } else {
        samples.len() as f64 * 1e3 / total_ms
    }
}

/// Which request path / tracer configuration a mutate run measures.
#[derive(Clone, Copy, PartialEq)]
enum MutatePath {
    /// The legacy untyped `apply_mutation` path — no typed dispatch, no
    /// response construction, no root trace. Context for what the typed
    /// protocol itself costs.
    Untyped,
    /// Typed requests on a server with its own default tracer: detached
    /// (no caller holds a handle) and disabled. No trace can ever be
    /// observed — the untraced path.
    Detached,
    /// Typed requests with a caller-attached tracer handle, idle
    /// (disabled): traced-but-idle, the production default. Attachment
    /// must be free — the pr9 attach-a-registry parity, replayed for
    /// traces.
    AttachedIdle,
    /// Typed requests with the flight recorder enabled — a root span per
    /// request plus route/apply/WAL spans, ring at steady-state eviction.
    Recording,
}

/// Mutations per second through a persisted single-shard server (fsync
/// never), driving the identical `Relabel` event stream down the path
/// `mode` selects.
fn mutate_mps(count: usize, mode: MutatePath) -> f64 {
    let dir = scratch_dir(match mode {
        MutatePath::Untyped => "mutate-untyped",
        MutatePath::Detached => "mutate-detached",
        MutatePath::AttachedIdle => "mutate-idle",
        MutatePath::Recording => "mutate-recording",
    });
    // The attached arms keep this handle alive across the run — the
    // difference under test is a live outside consumer, not the code
    // path (which is identical when the recorder is off).
    let attached = Tracer::new();
    if mode == MutatePath::Recording {
        attached.enable(256);
    }
    let config = DriveConfig::from_env();
    let workload = generate(&config.traffic);
    let endpoint = workload.endpoints[0];
    let options = match mode {
        MutatePath::Untyped | MutatePath::Detached => PersistOptions {
            fsync: nemo_serve::FsyncPolicy::Never,
            ..PersistOptions::default()
        },
        MutatePath::AttachedIdle | MutatePath::Recording => PersistOptions {
            fsync: nemo_serve::FsyncPolicy::Never,
            tracer: attached.clone(),
            ..PersistOptions::default()
        },
    };
    let mut server = ServerBuilder::new()
        .options(options)
        .persist_at(&dir)
        .build::<SimulatedLlm>(LiveNetwork::from_workload(&workload), Vec::new())
        .expect("fresh persistent build");
    let start = Instant::now();
    for i in 0..count as u64 {
        let event = TimedEvent {
            at_ms: i,
            event: NetEvent::Relabel {
                endpoint,
                label: format!("v{i}"),
            },
        };
        match mode {
            MutatePath::Untyped => {
                server
                    .apply_mutation(&event)
                    .expect("bench mutation succeeds");
            }
            _ => {
                let request = Request::from_event(&ServeEvent::Mutate(event));
                let response = server.handle(&request).expect("bench mutation succeeds");
                debug_assert!(matches!(response, Response::Mutated { .. }));
            }
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    drop(server);
    drop(attached);
    let _ = std::fs::remove_dir_all(&dir);
    count as f64 / elapsed
}

/// The PR 10 report: traced-but-idle request throughput against the
/// untraced path (the acceptance parity pair), the typed-dispatch
/// context pair, and the full cost of recording into the flight
/// recorder — same alternating-sample methodology as the PR 9
/// `instrumented_append_ms` parity pair.
fn run_report_pr10(pr: &str, out: &str) -> ExitCode {
    let sizes = BenchSizes::from_env();
    let mutations = sizes.appends;
    eprintln!(
        "[obs] traced request path: {mutations} mutations x 5 reps x 4 paths, fsync never..."
    );
    // One discarded warmup pass per path (page cache, allocator, branch
    // predictors), then alternate the variants so machine drift lands on
    // all sides.
    let paths = [
        MutatePath::Untyped,
        MutatePath::Detached,
        MutatePath::AttachedIdle,
        MutatePath::Recording,
    ];
    for path in paths {
        let _ = mutate_mps(mutations, path);
    }
    let mut untyped_samples = Vec::new();
    let mut detached_samples = Vec::new();
    let mut idle_samples = Vec::new();
    let mut recording_samples = Vec::new();
    for _ in 0..5 {
        untyped_samples.push(1e3 / mutate_mps(mutations, MutatePath::Untyped));
        detached_samples.push(1e3 / mutate_mps(mutations, MutatePath::Detached));
        idle_samples.push(1e3 / mutate_mps(mutations, MutatePath::AttachedIdle));
        recording_samples.push(1e3 / mutate_mps(mutations, MutatePath::Recording));
    }
    let untyped_mps = 1e3 / perf::median(&untyped_samples);
    let detached_mps = 1e3 / perf::median(&detached_samples);
    let idle_mps = 1e3 / perf::median(&idle_samples);
    let recording_mps = 1e3 / perf::median(&recording_samples);
    println!("mutate, untyped apply:        {untyped_mps:>11.1} req/s");
    println!(
        "mutate, typed + no tracer:    {detached_mps:>11.1} req/s  ({:.3}x untyped)",
        detached_mps / untyped_mps
    );
    println!(
        "mutate, traced-but-idle:      {idle_mps:>11.1} req/s  ({:.3}x untraced)",
        idle_mps / detached_mps
    );
    println!(
        "mutate, flight recorder on:   {recording_mps:>11.1} req/s  ({:.3}x idle)",
        recording_mps / idle_mps
    );

    let before = [
        Measurement {
            name: "traced_idle_mutate_ms".to_string(),
            samples: detached_samples.clone(),
        },
        Measurement {
            name: "typed_dispatch_mutate_ms".to_string(),
            samples: untyped_samples,
        },
        Measurement {
            name: "flight_recorder_mutate_ms".to_string(),
            samples: idle_samples.clone(),
        },
    ];
    let after = [
        Measurement {
            name: "traced_idle_mutate_ms".to_string(),
            samples: idle_samples,
        },
        Measurement {
            name: "typed_dispatch_mutate_ms".to_string(),
            samples: detached_samples,
        },
        Measurement {
            name: "flight_recorder_mutate_ms".to_string(),
            samples: recording_samples,
        },
        Measurement {
            name: "recording_mutate_mps".to_string(),
            samples: vec![recording_mps],
        },
    ];
    let existing = std::fs::read_to_string(out)
        .ok()
        .and_then(|text| JsonValue::parse(&text).ok());
    let report = perf::merge_report(existing.as_ref(), pr, "before", &before);
    let mut report = perf::merge_report(Some(&report), pr, "after", &after);
    set_unit(&mut report, "recording_mutate_mps", "mps");
    let problems = perf::validate_report(&report);
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("obs_bench: generated report invalid: {p}");
        }
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(out, report.to_json() + "\n") {
        eprintln!("obs_bench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    ExitCode::SUCCESS
}

/// Patches the auto-filled `ms` unit on non-latency entries.
fn set_unit(report: &mut JsonValue, name: &str, unit: &str) {
    if let JsonValue::Object(root) = report {
        if let Some(JsonValue::Array(entries)) = root.get_mut("entries") {
            for entry in entries {
                if let JsonValue::Object(obj) = entry {
                    if obj.get("name") == Some(&JsonValue::String(name.to_string())) {
                        obj.insert("unit".to_string(), JsonValue::String(unit.to_string()));
                    }
                }
            }
        }
    }
}

fn run_report(pr: &str, out: &str) -> ExitCode {
    let sizes = BenchSizes::from_env();

    eprintln!(
        "[obs] instrumented append path: {} appends x 3 reps, fsync never...",
        sizes.appends
    );
    // Alternate the two variants so machine drift lands on both sides;
    // the report's median smooths the rest.
    let registry = Registry::new();
    let mut bare_samples = Vec::new();
    let mut observed_samples = Vec::new();
    for _ in 0..3 {
        bare_samples.push(1e3 / append_mps(sizes.appends, None));
        observed_samples
            .push(1e3 / append_mps(sizes.appends, Some(StoreMetrics::register(&registry))));
    }
    let bare_mps = 1e3 / perf::median(&bare_samples);
    let observed_mps = 1e3 / perf::median(&observed_samples);
    println!("append, detached cells:       {bare_mps:>11.1} appends/s");
    println!("append, live registry:        {observed_mps:>11.1} appends/s");

    eprintln!(
        "[obs] registry cell microbenches: {} ops...",
        sizes.cell_ops
    );
    let counter_mps = counter_inc_mps(sizes.cell_ops);
    let histogram_mps = histogram_record_mps(sizes.cell_ops);
    let snap_ms = snapshot_ms(sizes.snapshots);
    println!("counter.inc:                  {counter_mps:>11.1} ops/s");
    println!("histogram.record:             {histogram_mps:>11.1} ops/s");
    println!("snapshot + render:            {snap_ms:>11.4} ms");

    eprintln!("[obs] instrumented healthy reads...");
    let read_qps = healthy_read_qps(sizes.query_rounds);
    println!("cached reads, instrumented:   {read_qps:>11.1} q/s");

    // The latency pair carries the headline (speedup ~1.0 = the registry
    // costs nothing on the hot path); throughput entries are after-only,
    // named to line up with their BENCH_pr8.json counterparts.
    let before = [Measurement {
        name: "instrumented_append_ms".to_string(),
        samples: bare_samples,
    }];
    let after = [
        Measurement {
            name: "instrumented_append_ms".to_string(),
            samples: observed_samples,
        },
        Measurement {
            name: "vfs_logged_append_mps".to_string(),
            samples: vec![observed_mps],
        },
        Measurement {
            name: "healthy_read_qps".to_string(),
            samples: vec![read_qps],
        },
        Measurement {
            name: "registry_counter_inc_mps".to_string(),
            samples: vec![counter_mps],
        },
        Measurement {
            name: "registry_histogram_record_mps".to_string(),
            samples: vec![histogram_mps],
        },
        Measurement {
            name: "registry_snapshot_ms".to_string(),
            samples: vec![snap_ms],
        },
    ];
    let existing = std::fs::read_to_string(out)
        .ok()
        .and_then(|text| JsonValue::parse(&text).ok());
    let report = perf::merge_report(existing.as_ref(), pr, "before", &before);
    let mut report = perf::merge_report(Some(&report), pr, "after", &after);
    set_unit(&mut report, "vfs_logged_append_mps", "mps");
    set_unit(&mut report, "healthy_read_qps", "qps");
    set_unit(&mut report, "registry_counter_inc_mps", "mps");
    set_unit(&mut report, "registry_histogram_record_mps", "mps");
    let problems = perf::validate_report(&report);
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("obs_bench: generated report invalid: {p}");
        }
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(out, report.to_json() + "\n") {
        eprintln!("obs_bench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    ExitCode::SUCCESS
}

/// The CI smoke drive: a pool-fanned multi-client durability run (the
/// `NEMO_THREADS`-sensitive axis) and a typed-request drive against a
/// `shards`-way server (the shard-sensitive axis), both recording into
/// one shared registry. Fetches [`Request::Stats`], schema-validates the
/// embedded document, and writes the full document (`--doc`) and the
/// logical subset (`--logical`) — only the latter is matrix-compared.
fn run_smoke(
    shards: u32,
    logical_path: &str,
    doc_path: Option<&str>,
    traces_path: Option<&str>,
    chrome_path: Option<&str>,
    skeleton_path: Option<&str>,
) -> ExitCode {
    let registry = Registry::new();
    let threads = pool::thread_count();
    eprintln!("[obs] smoke: {shards} shard(s), {threads} worker thread(s)");

    let mut config = DurabilityConfig::from_env();
    config.options.registry = registry.clone();
    let dir = scratch_dir(&format!("smoke-{shards}"));
    match durability::run(&config, &dir, threads, None) {
        Ok((_, false)) => {}
        Ok((_, true)) => {
            eprintln!("obs_bench: durability drive crashed without being asked to");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("obs_bench: durability drive failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    let _ = std::fs::remove_dir_all(&dir);

    let drive = DriveConfig::from_env();
    let workload = generate(&drive.traffic);
    let sessions: Vec<Session<SimulatedLlm>> = Backend::CODEGEN
        .iter()
        .enumerate()
        .map(|(i, &backend)| Session {
            client: i,
            backend,
            llm: SimulatedLlm::new(
                profiles::gpt4(),
                driver::serving_knowledge(),
                drive.seed ^ i as u64,
            ),
        })
        .collect();
    // The typed drive is sequential, so the flight recorder's retire
    // order — and with it the logical-skeleton dump — is a pure function
    // of the request stream: the byte-compared axis of the CI matrix.
    // Persisted (fsync never) so WAL spans land inside the traces.
    let tracer = Tracer::new();
    tracer.enable(1024);
    let typed_dir = scratch_dir(&format!("smoke-typed-{shards}"));
    let mut server = match ServerBuilder::new()
        .shards(shards)
        .options(PersistOptions {
            fsync: nemo_serve::FsyncPolicy::Never,
            registry: registry.clone(),
            tracer: tracer.clone(),
            ..PersistOptions::default()
        })
        .persist_at(&typed_dir)
        .build(LiveNetwork::from_workload(&workload), sessions)
    {
        Ok(server) => server,
        Err(e) => {
            eprintln!("obs_bench: smoke build failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stream = evolve(
        &workload,
        &StreamConfig {
            events: 8,
            seed: drive.seed,
        },
    );
    for timed in &stream {
        if let Err(e) = server.handle(&Request::from_event(&nemo_serve::ServeEvent::Mutate(
            timed.clone(),
        ))) {
            eprintln!("obs_bench: smoke mutation failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    // A duplicate endpoint is a deterministic conflict at every shard
    // count: it exercises serve_mutations_rejected without an epoch.
    let dup = TimedEvent {
        at_ms: 99,
        event: NetEvent::NewEndpoint {
            endpoint: trafficgen::Ipv4::new(203, 0, 0, 200),
        },
    };
    for _ in 0..2 {
        if let Err(e) = server.handle(&Request::from_event(&nemo_serve::ServeEvent::Mutate(
            dup.clone(),
        ))) {
            eprintln!("obs_bench: smoke conflict drive failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    for (i, query) in nemo_bench::traffic_queries().iter().take(4).enumerate() {
        if let Err(e) = server.handle(&Request::Query {
            client: i % Backend::CODEGEN.len(),
            query: query.text.to_string(),
        }) {
            eprintln!("obs_bench: smoke query failed: {e}");
            return ExitCode::FAILURE;
        }
    }

    let stats = match server.handle(&Request::Stats) {
        Ok(Response::Stats(stats)) => stats,
        Ok(other) => {
            eprintln!("obs_bench: stats request answered with {other:?}");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("obs_bench: stats request failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = nemo_serve::validate_metrics_doc(&stats.metrics) {
        eprintln!("obs_bench: stats document failed schema validation: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "stats: {} shard(s), global epoch {}, schema-valid metrics document",
        stats.shards, stats.global_epoch
    );

    if let Some(path) = doc_path {
        if let Err(e) = std::fs::write(path, stats.metrics.to_string() + "\n") {
            eprintln!("obs_bench: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    let logical = registry.snapshot().logical_only().to_json() + "\n";
    if !logical.contains("serve_queries_answered") || !logical.contains("serve_mutations_applied") {
        eprintln!("obs_bench: logical subset is missing serving counters");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(logical_path, logical) {
        eprintln!("obs_bench: cannot write {logical_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {logical_path}");

    // Trace view of the same drive: the server answers its own trace
    // request, and the document must be schema-valid with a deterministic
    // logical skeleton.
    let trace_doc = match server.handle(&Request::Trace { last_n: 0 }) {
        Ok(Response::Trace { doc }) => doc,
        Ok(other) => {
            eprintln!("obs_bench: trace request answered with {other:?}");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("obs_bench: trace request failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = validate_trace_doc(&trace_doc) {
        eprintln!("obs_bench: trace document failed schema validation: {e}");
        return ExitCode::FAILURE;
    }
    let chrome = match JsonValue::parse(&tracer.to_chrome(0)) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("obs_bench: chrome export does not parse: {e:?}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = validate_chrome_doc(&chrome) {
        eprintln!("obs_bench: chrome export failed schema validation: {e}");
        return ExitCode::FAILURE;
    }
    if tracer.dropped() > 0 {
        eprintln!("obs_bench: flight recorder dropped traces during the smoke drive");
        return ExitCode::FAILURE;
    }
    println!(
        "traces: {} captured, schema-valid nemo-trace/v1 + chrome traceEvents",
        tracer.traces(0).len()
    );
    if let Some(path) = traces_path {
        if let Err(e) = std::fs::write(path, trace_doc.to_string() + "\n") {
            eprintln!("obs_bench: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    if let Some(path) = chrome_path {
        if let Err(e) = std::fs::write(path, chrome.to_string() + "\n") {
            eprintln!("obs_bench: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    if let Some(path) = skeleton_path {
        let skeletons = tracer.logical_skeletons(0);
        if !skeletons.contains("request.mutate") || !skeletons.contains("wal.log") {
            eprintln!("obs_bench: trace skeletons are missing expected logical spans");
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(path, skeletons) {
            eprintln!("obs_bench: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    drop(server);
    let _ = std::fs::remove_dir_all(&typed_dir);
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut pr = "pr9".to_string();
    let mut out: Option<String> = None;
    let mut smoke = false;
    let mut shards: Option<u32> = None;
    let mut logical: Option<String> = None;
    let mut doc: Option<String> = None;
    let mut traces: Option<String> = None;
    let mut chrome: Option<String> = None;
    let mut skeleton: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let needs_value = matches!(
            args[i].as_str(),
            "--pr"
                | "--out"
                | "--shards"
                | "--logical"
                | "--doc"
                | "--traces"
                | "--chrome"
                | "--skeleton"
        );
        if needs_value && i + 1 >= args.len() {
            return usage();
        }
        match args[i].as_str() {
            "--pr" => pr = args[i + 1].clone(),
            "--out" => out = Some(args[i + 1].clone()),
            "--shards" => match args[i + 1].parse() {
                Ok(n) if n > 0 => shards = Some(n),
                _ => return usage(),
            },
            "--logical" => logical = Some(args[i + 1].clone()),
            "--doc" => doc = Some(args[i + 1].clone()),
            "--traces" => traces = Some(args[i + 1].clone()),
            "--chrome" => chrome = Some(args[i + 1].clone()),
            "--skeleton" => skeleton = Some(args[i + 1].clone()),
            "--smoke" => {
                smoke = true;
                i += 1;
                continue;
            }
            _ => return usage(),
        }
        i += 2;
    }
    if smoke {
        match (shards, logical) {
            (Some(shards), Some(logical)) => run_smoke(
                shards,
                &logical,
                doc.as_deref(),
                traces.as_deref(),
                chrome.as_deref(),
                skeleton.as_deref(),
            ),
            _ => usage(),
        }
    } else if shards.is_some()
        || logical.is_some()
        || doc.is_some()
        || traces.is_some()
        || chrome.is_some()
        || skeleton.is_some()
    {
        usage()
    } else {
        let out = out.unwrap_or_else(|| format!("BENCH_{pr}.json"));
        if pr == "pr10" {
            run_report_pr10(&pr, &out)
        } else {
            run_report(&pr, &out)
        }
    }
}
