//! Observability benchmark + metrics smoke driver: what the PR 9
//! `nemo-obs` instrumentation costs on the hot paths (expected: nothing
//! measurable), and the CI smoke mode that proves the `nemo-metrics/v1`
//! document is schema-valid and its logical subset is invariant across
//! worker-thread and shard counts.
//!
//! Usage:
//!
//! ```text
//! obs_bench [--pr pr9] [--out BENCH_pr9.json]
//! obs_bench --smoke --shards <n> --logical <file> [--doc <file>]
//! ```
//!
//! The default mode records, into the `nemo-perf-report/v1` schema:
//!
//! * `instrumented_append_ms` — wall milliseconds per `Store::append`
//!   (fsync never), `before` with no metrics attached (the detached
//!   `Default` cells), `after` with a [`StoreMetrics`] bundle registered
//!   in a live [`Registry`]. The speedup must sit at ~1.0: recording
//!   into atomic cells without taking snapshots is the free path.
//! * `vfs_logged_append_mps` / `healthy_read_qps` — the PR 8 parity
//!   numbers, re-measured with instrumentation live, so
//!   `BENCH_pr9.json` pins the instrumented hot paths directly against
//!   `BENCH_pr8.json`.
//! * `registry_counter_inc_mps` / `registry_histogram_record_mps` —
//!   raw recording throughput of one counter / histogram cell.
//! * `registry_snapshot_ms` — cost of one full snapshot + JSON render
//!   of a serving-shaped registry (the price of *looking*, paid only
//!   when a stats request arrives).
//!
//! The smoke mode drives a pool-fanned multi-client durability run and
//! a typed-request sharded drive into **one shared registry**, fetches
//! [`Request::Stats`], schema-validates the embedded document, and
//! writes the logical subset to `--logical` — CI byte-compares that
//! file across its `NEMO_THREADS` x shards matrix.

use nemo_bench::perf::{self, Measurement};
use nemo_bench::pool;
use nemo_core::llm::profiles;
use nemo_core::{Backend, SimulatedLlm};
use nemo_obs::{Class, Registry};
use nemo_serve::driver::{self, DriveConfig};
use nemo_serve::durability::{self, DurabilityConfig};
use nemo_serve::{LiveNetwork, PersistOptions, Request, Response, Server, ServerBuilder, Session};
use nemo_store::{RealFs, Store, StoreConfig, StoreMetrics, Vfs};
use netgraph::json::JsonValue;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;
use trafficgen::{evolve, generate, NetEvent, StreamConfig, TimedEvent};

fn usage() -> ExitCode {
    eprintln!(
        "usage: obs_bench [--pr <tag>] [--out <file>]\n\
         \u{20}      obs_bench --smoke --shards <n> --logical <file> [--doc <file>]"
    );
    ExitCode::FAILURE
}

struct BenchSizes {
    /// Appends in the instrumented-append runs.
    appends: usize,
    /// Cell operations in the raw registry microbenches.
    cell_ops: usize,
    /// Timed query rounds in the healthy-read run.
    query_rounds: usize,
    /// Snapshot + render repetitions.
    snapshots: usize,
}

impl BenchSizes {
    fn from_env() -> Self {
        if std::env::var("NEMO_SMALL").is_ok() {
            BenchSizes {
                appends: 2_000,
                cell_ops: 200_000,
                query_rounds: 3,
                snapshots: 20,
            }
        } else {
            BenchSizes {
                appends: 20_000,
                cell_ops: 2_000_000,
                query_rounds: 6,
                snapshots: 200,
            }
        }
    }
}

fn store_config() -> StoreConfig {
    StoreConfig {
        magic: "nemo-obs-bench/v1".to_string(),
        fsync: nemo_store::FsyncPolicy::Never,
        segment_max_bytes: 256 << 10,
        snapshot_every_bytes: 0,
        snapshot_every_epochs: 0,
        keep_snapshots: 1,
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nemo-obs-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A WAL-record-sized payload, distinct per epoch.
fn payload(epoch: u64) -> Vec<u8> {
    format!(
        "{{\"schema\":\"nemo-obs-bench/v1\",\"epoch\":{epoch},\"mutation\":\
         \"set-flow 10.0.0.1->10.0.0.2 bytes={}\"}}",
        epoch * 131
    )
    .into_bytes()
}

/// Appends per second through `Store::append` (fsync never), with or
/// without a registered [`StoreMetrics`] bundle attached — the
/// instrumentation-overhead probe.
fn append_mps(appends: usize, metrics: Option<StoreMetrics>) -> f64 {
    let dir = scratch_dir(if metrics.is_some() {
        "append-observed"
    } else {
        "append-bare"
    });
    let (mut store, _) = Store::open_with(&dir, store_config(), Arc::new(RealFs) as Arc<dyn Vfs>)
        .expect("fresh bench store");
    if let Some(metrics) = metrics {
        store.attach_metrics(metrics);
    }
    let start = Instant::now();
    for epoch in 1..=appends as u64 {
        store
            .append(epoch, &payload(epoch))
            .expect("bench append succeeds");
    }
    let elapsed = start.elapsed().as_secs_f64();
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    appends as f64 / elapsed
}

/// Raw recording throughput of one counter cell, ops per second.
fn counter_inc_mps(ops: usize) -> f64 {
    let registry = Registry::new();
    let counter = registry.counter("bench_counter", Class::Physical);
    let start = Instant::now();
    for _ in 0..ops {
        counter.inc();
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(counter.get(), ops as u64);
    ops as f64 / elapsed
}

/// Raw recording throughput of one histogram cell, ops per second.
fn histogram_record_mps(ops: usize) -> f64 {
    let registry = Registry::new();
    let histogram = registry.histogram("bench_histogram", Class::Physical);
    let start = Instant::now();
    for i in 0..ops {
        histogram.record(i as u64);
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(histogram.snapshot().count, ops as u64);
    ops as f64 / elapsed
}

/// Milliseconds per full snapshot + JSON render of a serving-shaped
/// registry (every PR 9 metric family registered, cells warm).
fn snapshot_ms(snapshots: usize) -> f64 {
    let registry = Registry::new();
    let serve = nemo_serve::ServeMetrics::register(&registry, 4);
    serve.requests_query.add(1_000);
    serve.query_micros.record(37);
    let start = Instant::now();
    let mut bytes = 0usize;
    for _ in 0..snapshots {
        bytes += registry.snapshot().to_json().len();
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert!(bytes > 0);
    elapsed * 1e3 / snapshots as f64
}

/// Cached-read throughput of a healthy persistent server with a live
/// registry attached — the PR 8 `healthy_read_qps` parity number,
/// instrumented.
fn healthy_read_qps(rounds: usize) -> f64 {
    let config = DriveConfig::from_env();
    let queries: Vec<String> = nemo_bench::traffic_queries()
        .into_iter()
        .take(8)
        .map(|spec| spec.text.to_string())
        .collect();
    let workload = generate(&config.traffic);
    let live = LiveNetwork::from_workload(&workload);
    let sessions: Vec<Session<SimulatedLlm>> = Backend::CODEGEN
        .iter()
        .enumerate()
        .map(|(i, &backend)| Session {
            client: i,
            backend,
            llm: SimulatedLlm::new(
                profiles::gpt4(),
                driver::serving_knowledge(),
                config.seed ^ i as u64,
            ),
        })
        .collect();
    let dir = scratch_dir("healthy");
    let registry = Registry::new();
    let mut server = ServerBuilder::new()
        .options(PersistOptions {
            fsync: nemo_serve::FsyncPolicy::EveryRecord,
            registry: registry.clone(),
            ..PersistOptions::default()
        })
        .persist_at(&dir)
        .build(live, sessions)
        .expect("fresh persistent build");
    let stream = evolve(
        &workload,
        &StreamConfig {
            events: 2,
            seed: config.seed,
        },
    );
    server
        .apply_mutation(&stream[0])
        .expect("first mutation applies");
    let warm = |server: &mut Server<SimulatedLlm>| {
        let mut samples = Vec::new();
        for client in 0..Backend::CODEGEN.len() {
            for query in &queries {
                samples.push(server.handle_query(client, query).latency_ms);
            }
        }
        samples
    };
    let _ = warm(&mut server);
    let mut samples = Vec::new();
    for _ in 0..rounds {
        samples.extend(warm(&mut server));
    }
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
    let total_ms: f64 = samples.iter().sum();
    if total_ms <= 0.0 {
        0.0
    } else {
        samples.len() as f64 * 1e3 / total_ms
    }
}

/// Patches the auto-filled `ms` unit on non-latency entries.
fn set_unit(report: &mut JsonValue, name: &str, unit: &str) {
    if let JsonValue::Object(root) = report {
        if let Some(JsonValue::Array(entries)) = root.get_mut("entries") {
            for entry in entries {
                if let JsonValue::Object(obj) = entry {
                    if obj.get("name") == Some(&JsonValue::String(name.to_string())) {
                        obj.insert("unit".to_string(), JsonValue::String(unit.to_string()));
                    }
                }
            }
        }
    }
}

fn run_report(pr: &str, out: &str) -> ExitCode {
    let sizes = BenchSizes::from_env();

    eprintln!(
        "[obs] instrumented append path: {} appends x 3 reps, fsync never...",
        sizes.appends
    );
    // Alternate the two variants so machine drift lands on both sides;
    // the report's median smooths the rest.
    let registry = Registry::new();
    let mut bare_samples = Vec::new();
    let mut observed_samples = Vec::new();
    for _ in 0..3 {
        bare_samples.push(1e3 / append_mps(sizes.appends, None));
        observed_samples
            .push(1e3 / append_mps(sizes.appends, Some(StoreMetrics::register(&registry))));
    }
    let bare_mps = 1e3 / perf::median(&bare_samples);
    let observed_mps = 1e3 / perf::median(&observed_samples);
    println!("append, detached cells:       {bare_mps:>11.1} appends/s");
    println!("append, live registry:        {observed_mps:>11.1} appends/s");

    eprintln!(
        "[obs] registry cell microbenches: {} ops...",
        sizes.cell_ops
    );
    let counter_mps = counter_inc_mps(sizes.cell_ops);
    let histogram_mps = histogram_record_mps(sizes.cell_ops);
    let snap_ms = snapshot_ms(sizes.snapshots);
    println!("counter.inc:                  {counter_mps:>11.1} ops/s");
    println!("histogram.record:             {histogram_mps:>11.1} ops/s");
    println!("snapshot + render:            {snap_ms:>11.4} ms");

    eprintln!("[obs] instrumented healthy reads...");
    let read_qps = healthy_read_qps(sizes.query_rounds);
    println!("cached reads, instrumented:   {read_qps:>11.1} q/s");

    // The latency pair carries the headline (speedup ~1.0 = the registry
    // costs nothing on the hot path); throughput entries are after-only,
    // named to line up with their BENCH_pr8.json counterparts.
    let before = [Measurement {
        name: "instrumented_append_ms".to_string(),
        samples: bare_samples,
    }];
    let after = [
        Measurement {
            name: "instrumented_append_ms".to_string(),
            samples: observed_samples,
        },
        Measurement {
            name: "vfs_logged_append_mps".to_string(),
            samples: vec![observed_mps],
        },
        Measurement {
            name: "healthy_read_qps".to_string(),
            samples: vec![read_qps],
        },
        Measurement {
            name: "registry_counter_inc_mps".to_string(),
            samples: vec![counter_mps],
        },
        Measurement {
            name: "registry_histogram_record_mps".to_string(),
            samples: vec![histogram_mps],
        },
        Measurement {
            name: "registry_snapshot_ms".to_string(),
            samples: vec![snap_ms],
        },
    ];
    let existing = std::fs::read_to_string(out)
        .ok()
        .and_then(|text| JsonValue::parse(&text).ok());
    let report = perf::merge_report(existing.as_ref(), pr, "before", &before);
    let mut report = perf::merge_report(Some(&report), pr, "after", &after);
    set_unit(&mut report, "vfs_logged_append_mps", "mps");
    set_unit(&mut report, "healthy_read_qps", "qps");
    set_unit(&mut report, "registry_counter_inc_mps", "mps");
    set_unit(&mut report, "registry_histogram_record_mps", "mps");
    let problems = perf::validate_report(&report);
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("obs_bench: generated report invalid: {p}");
        }
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(out, report.to_json() + "\n") {
        eprintln!("obs_bench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    ExitCode::SUCCESS
}

/// The CI smoke drive: a pool-fanned multi-client durability run (the
/// `NEMO_THREADS`-sensitive axis) and a typed-request drive against a
/// `shards`-way server (the shard-sensitive axis), both recording into
/// one shared registry. Fetches [`Request::Stats`], schema-validates the
/// embedded document, and writes the full document (`--doc`) and the
/// logical subset (`--logical`) — only the latter is matrix-compared.
fn run_smoke(shards: u32, logical_path: &str, doc_path: Option<&str>) -> ExitCode {
    let registry = Registry::new();
    let threads = pool::thread_count();
    eprintln!("[obs] smoke: {shards} shard(s), {threads} worker thread(s)");

    let mut config = DurabilityConfig::from_env();
    config.options.registry = registry.clone();
    let dir = scratch_dir(&format!("smoke-{shards}"));
    match durability::run(&config, &dir, threads, None) {
        Ok((_, false)) => {}
        Ok((_, true)) => {
            eprintln!("obs_bench: durability drive crashed without being asked to");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("obs_bench: durability drive failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    let _ = std::fs::remove_dir_all(&dir);

    let drive = DriveConfig::from_env();
    let workload = generate(&drive.traffic);
    let sessions: Vec<Session<SimulatedLlm>> = Backend::CODEGEN
        .iter()
        .enumerate()
        .map(|(i, &backend)| Session {
            client: i,
            backend,
            llm: SimulatedLlm::new(
                profiles::gpt4(),
                driver::serving_knowledge(),
                drive.seed ^ i as u64,
            ),
        })
        .collect();
    let mut server = match ServerBuilder::new()
        .shards(shards)
        .options(PersistOptions {
            registry: registry.clone(),
            ..PersistOptions::default()
        })
        .build(LiveNetwork::from_workload(&workload), sessions)
    {
        Ok(server) => server,
        Err(e) => {
            eprintln!("obs_bench: smoke build failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stream = evolve(
        &workload,
        &StreamConfig {
            events: 8,
            seed: drive.seed,
        },
    );
    for timed in &stream {
        if let Err(e) = server.handle(&Request::from_event(&nemo_serve::ServeEvent::Mutate(
            timed.clone(),
        ))) {
            eprintln!("obs_bench: smoke mutation failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    // A duplicate endpoint is a deterministic conflict at every shard
    // count: it exercises serve_mutations_rejected without an epoch.
    let dup = TimedEvent {
        at_ms: 99,
        event: NetEvent::NewEndpoint {
            endpoint: trafficgen::Ipv4::new(203, 0, 0, 200),
        },
    };
    for _ in 0..2 {
        if let Err(e) = server.handle(&Request::from_event(&nemo_serve::ServeEvent::Mutate(
            dup.clone(),
        ))) {
            eprintln!("obs_bench: smoke conflict drive failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    for (i, query) in nemo_bench::traffic_queries().iter().take(4).enumerate() {
        if let Err(e) = server.handle(&Request::Query {
            client: i % Backend::CODEGEN.len(),
            query: query.text.to_string(),
        }) {
            eprintln!("obs_bench: smoke query failed: {e}");
            return ExitCode::FAILURE;
        }
    }

    let stats = match server.handle(&Request::Stats) {
        Ok(Response::Stats(stats)) => stats,
        Ok(other) => {
            eprintln!("obs_bench: stats request answered with {other:?}");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("obs_bench: stats request failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = nemo_serve::validate_metrics_doc(&stats.metrics) {
        eprintln!("obs_bench: stats document failed schema validation: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "stats: {} shard(s), global epoch {}, schema-valid metrics document",
        stats.shards, stats.global_epoch
    );

    if let Some(path) = doc_path {
        if let Err(e) = std::fs::write(path, stats.metrics.to_string() + "\n") {
            eprintln!("obs_bench: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    let logical = registry.snapshot().logical_only().to_json() + "\n";
    if !logical.contains("serve_queries_answered") || !logical.contains("serve_mutations_applied") {
        eprintln!("obs_bench: logical subset is missing serving counters");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(logical_path, logical) {
        eprintln!("obs_bench: cannot write {logical_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {logical_path}");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut pr = "pr9".to_string();
    let mut out: Option<String> = None;
    let mut smoke = false;
    let mut shards: Option<u32> = None;
    let mut logical: Option<String> = None;
    let mut doc: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let needs_value = matches!(
            args[i].as_str(),
            "--pr" | "--out" | "--shards" | "--logical" | "--doc"
        );
        if needs_value && i + 1 >= args.len() {
            return usage();
        }
        match args[i].as_str() {
            "--pr" => pr = args[i + 1].clone(),
            "--out" => out = Some(args[i + 1].clone()),
            "--shards" => match args[i + 1].parse() {
                Ok(n) if n > 0 => shards = Some(n),
                _ => return usage(),
            },
            "--logical" => logical = Some(args[i + 1].clone()),
            "--doc" => doc = Some(args[i + 1].clone()),
            "--smoke" => {
                smoke = true;
                i += 1;
                continue;
            }
            _ => return usage(),
        }
        i += 2;
    }
    if smoke {
        match (shards, logical) {
            (Some(shards), Some(logical)) => run_smoke(shards, &logical, doc.as_deref()),
            _ => usage(),
        }
    } else if shards.is_some() || logical.is_some() || doc.is_some() {
        usage()
    } else {
        let out = out.unwrap_or_else(|| format!("BENCH_{pr}.json"));
        run_report(&pr, &out)
    }
}
