//! Regenerates Figure 4b: LLM cost versus graph size, strawman vs code-gen.
//!
//! Parallelism: set `NEMO_THREADS=N` to pin the worker-thread count
//! (default: available parallelism); output is identical at any setting.

use nemo_bench::runner::{scalability_sweep, DEFAULT_SEED};
use nemo_core::llm::profiles;

fn main() {
    let sizes = [20, 40, 60, 80, 100, 150, 200, 300, 400];
    let sweep = scalability_sweep(&profiles::gpt4(), &sizes, DEFAULT_SEED);
    println!("{}", nemo_bench::report::format_figure4b(&sweep));
}
