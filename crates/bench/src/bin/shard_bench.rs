//! Sharded-serving benchmark + crash driver: group commit throughput and
//! the shard-count-invariant crash/resume transcripts.
//!
//! Usage:
//!
//! ```text
//! shard_bench [--pr pr6] [--out BENCH_pr6.json]
//! shard_bench --dir <root> --shards <n> --transcript <file>   # run (or resume), write transcript
//! shard_bench --dir <root> --shards <n> --crash-at <epoch>    # run and crash mid-stream (exit 3)
//! shard_bench --group-crash --dir <store> --after <n>         # concurrent group-commit appends,
//!                                                             # hard-exit(3) after n acks; prints acked=<n>
//! shard_bench --group-verify --dir <store> --acked <n>        # reopen; every acked epoch must be on disk
//! ```
//!
//! The default mode records, into the `nemo-perf-report/v1` schema:
//!
//! * `group_commit_apply_mps` — sustained append throughput with
//!   **acked-epoch durability** (an append does not return until its epoch
//!   is fsynced) at 8 concurrent appenders: `before` is the PR 5 posture, a
//!   mutex-serialized store with `fsync: EveryRecord` (one fsync per
//!   record); `after` is the [`GroupCommitter`], where one leader fsync
//!   covers the whole arrival batch.
//! * `group_commit_batch_records` — achieved records per fsync under group
//!   commit (the coalescing factor).
//!
//! The `--group-crash` / `--group-verify` pair is the durability proof CI
//! runs: a process that is killed the instant `append` returns must find
//! every acknowledged epoch in the store afterwards.

use nemo_bench::perf::{self, Measurement};
use nemo_bench::pool;
use nemo_serve::durability::{self, DurabilityConfig};
use nemo_store::{FsyncPolicy, GroupCommitter, Store, StoreConfig};
use netgraph::json::JsonValue;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

fn usage() -> ExitCode {
    eprintln!(
        "usage: shard_bench [--pr <tag>] [--out <file>]\n\
         \u{20}      shard_bench --dir <root> --shards <n> --transcript <file> [--crash-at <epoch>]\n\
         \u{20}      shard_bench --group-crash --dir <store> --after <n>\n\
         \u{20}      shard_bench --group-verify --dir <store> --acked <n>"
    );
    ExitCode::FAILURE
}

const APPENDERS: usize = 8;

struct BenchSizes {
    appends: usize,
}

impl BenchSizes {
    fn from_env() -> Self {
        if std::env::var("NEMO_SMALL").is_ok() {
            BenchSizes { appends: 400 }
        } else {
            BenchSizes { appends: 4000 }
        }
    }
}

fn store_config(fsync: FsyncPolicy) -> StoreConfig {
    StoreConfig {
        magic: "nemo-shard-bench/v1".to_string(),
        fsync,
        segment_max_bytes: 256 << 10,
        snapshot_every_bytes: 0,
        snapshot_every_epochs: 0,
        keep_snapshots: 1,
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nemo-shard-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A WAL-record-sized payload, distinct per epoch.
fn payload(epoch: u64) -> Vec<u8> {
    format!(
        "{{\"schema\":\"nemo-shard-bench/v1\",\"epoch\":{epoch},\"mutation\":\
         \"set-flow 10.0.0.1->10.0.0.2 bytes={}\"}}",
        epoch * 131
    )
    .into_bytes()
}

/// `before`: the PR 5 posture — appenders serialized on one mutex, the
/// store fsyncing every record inside the lock. Returns total appends/s.
fn mutex_every_record_mps(appends: usize) -> f64 {
    let dir = scratch_dir("mutex");
    let (store, _) =
        Store::open(&dir, store_config(FsyncPolicy::EveryRecord)).expect("fresh bench store");
    let store = Mutex::new(store);
    let issued = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..APPENDERS {
            scope.spawn(|| loop {
                let n = issued.fetch_add(1, Ordering::SeqCst);
                if n >= appends as u64 {
                    return;
                }
                let mut store = store.lock().expect("bench store lock");
                let epoch = store.last_epoch().map_or(1, |last| last + 1);
                store
                    .append(epoch, &payload(epoch))
                    .expect("bench append succeeds");
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&dir);
    appends as f64 / elapsed
}

/// `after`: the same concurrency through the [`GroupCommitter`] — one
/// leader fsync per arrival batch, every append still acked-durable.
/// Returns (appends/s, achieved records per fsync).
fn group_commit_mps(appends: usize) -> (f64, f64) {
    let dir = scratch_dir("group");
    let (store, _) = Store::open(
        &dir,
        store_config(FsyncPolicy::GroupCommit {
            max_batch: 64,
            max_wait_micros: 100,
        }),
    )
    .expect("fresh bench store");
    let committer = GroupCommitter::new(store).expect("group-commit policy");
    let issued = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..APPENDERS {
            scope.spawn(|| loop {
                let n = issued.fetch_add(1, Ordering::SeqCst);
                if n >= appends as u64 {
                    return;
                }
                let epoch = committer.append(&payload(n + 1)).expect("acked append");
                assert!(
                    committer.last_synced() >= epoch,
                    "append acked before its epoch was durable"
                );
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let syncs = committer.sync_count().max(1);
    let _ = std::fs::remove_dir_all(&dir);
    (appends as f64 / elapsed, appends as f64 / syncs as f64)
}

fn run_transcript(dir: &Path, shards: u32, path: &str, crash_at: Option<u64>) -> ExitCode {
    let mut config = DurabilityConfig::from_env();
    // A fresh registry per run: the final snapshot is dumped next to the
    // transcript so CI artifacts carry the metrics alongside the lines.
    // Likewise a fresh flight recorder for the typed request path; its
    // trace trees ride along as `<transcript>.traces.json`.
    let registry = nemo_obs::Registry::new();
    config.options.registry = registry.clone();
    let tracer = nemo_obs::trace::Tracer::new();
    tracer.enable(1024);
    config.options.tracer = tracer.clone();
    let threads = pool::thread_count();
    eprintln!(
        "[shard] {} events over {shards} shard(s), {} worker thread(s){}",
        config.events,
        threads,
        crash_at.map_or(String::new(), |k| format!(", crashing near epoch {k}")),
    );
    match durability::run_sharded(&config, dir, shards, threads, crash_at) {
        Ok((lines, crashed)) => {
            if crashed {
                eprintln!("[shard] crashed mid-stream as requested (stores left on disk)");
                return ExitCode::from(3);
            }
            if let Some(k) = crash_at {
                eprintln!(
                    "shard_bench: --crash-at {k} never triggered \
                     (the stream has only {} events)",
                    config.events
                );
                return ExitCode::FAILURE;
            }
            let text = lines.join("\n") + "\n";
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("shard_bench: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {path} ({} transcript lines)", lines.len());
            let metrics_path = format!("{path}.metrics.json");
            if let Err(e) = std::fs::write(&metrics_path, registry.snapshot().to_json() + "\n") {
                eprintln!("shard_bench: cannot write {metrics_path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {metrics_path}");
            let traces = tracer.to_doc(0);
            match netgraph::json::JsonValue::parse(&traces) {
                Ok(doc) => {
                    if let Err(e) = nemo_serve::validate_trace_doc(&doc) {
                        eprintln!("shard_bench: trace document invalid: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                Err(e) => {
                    eprintln!("shard_bench: trace document does not parse: {e:?}");
                    return ExitCode::FAILURE;
                }
            }
            let traces_path = format!("{path}.traces.json");
            if let Err(e) = std::fs::write(&traces_path, traces + "\n") {
                eprintln!("shard_bench: cannot write {traces_path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {traces_path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("shard_bench: driver failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Appends concurrently under group commit and hard-exits the process the
/// moment `--after` acks have been observed — no Drop, no final fsync.
/// Prints `acked=<n>` (the count every surviving byte must cover) first.
fn run_group_crash(dir: &Path, after: u64) -> ExitCode {
    let (store, _) = Store::open(
        dir,
        store_config(FsyncPolicy::GroupCommit {
            max_batch: 32,
            max_wait_micros: 200,
        }),
    )
    .expect("fresh crash store");
    let committer = GroupCommitter::new(store).expect("group-commit policy");
    let acked = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| loop {
                let n = acked.load(Ordering::SeqCst);
                if n >= after {
                    return;
                }
                let epoch = committer.append(&payload(n + 1)).expect("acked append");
                let total = acked.fetch_add(1, Ordering::SeqCst) + 1;
                if total == after {
                    // Every append that returned was acked durable; kill
                    // the process without unwinding to prove it.
                    println!("acked={}", committer.last_synced().max(epoch));
                    std::process::exit(3);
                }
            });
        }
    });
    eprintln!("shard_bench: crash threshold never reached");
    ExitCode::FAILURE
}

/// Reopens a store left behind by `--group-crash` and checks that every
/// acknowledged epoch survived.
fn run_group_verify(dir: &Path, acked: u64) -> ExitCode {
    let (store, report) = Store::open(
        dir,
        store_config(FsyncPolicy::GroupCommit {
            max_batch: 32,
            max_wait_micros: 200,
        }),
    )
    .expect("crashed store reopens");
    let last = store.last_epoch().unwrap_or(0);
    if last < acked {
        eprintln!(
            "shard_bench: store holds epochs through {last} but {acked} were acked \
             (truncated {} bytes)",
            report.truncated_bytes
        );
        return ExitCode::FAILURE;
    }
    println!(
        "verified: {last} epochs on disk >= {acked} acked (truncated {} torn bytes)",
        report.truncated_bytes
    );
    ExitCode::SUCCESS
}

fn run_report(pr: &str, out: &str) -> ExitCode {
    let sizes = BenchSizes::from_env();
    eprintln!(
        "[shard] group commit: {} appends x {APPENDERS} appenders...",
        sizes.appends
    );
    let before_mps = mutex_every_record_mps(sizes.appends);
    let (after_mps, batch_records) = group_commit_mps(sizes.appends);
    println!("append fsync=record (mutex):  {before_mps:>9.1} mutations/s");
    println!("append group commit:          {after_mps:>9.1} mutations/s");
    println!("achieved batch:               {batch_records:>9.1} records/fsync");

    // The headline comparison in latency form (speedup = before/after):
    // amortized wall milliseconds per acked append at APPENDERS threads.
    let before = [Measurement {
        name: "group_commit_append_ms".to_string(),
        samples: vec![1e3 / before_mps],
    }];
    let after = [
        Measurement {
            name: "group_commit_append_ms".to_string(),
            samples: vec![1e3 / after_mps],
        },
        Measurement {
            name: "every_record_apply_mps".to_string(),
            samples: vec![before_mps],
        },
        Measurement {
            name: "group_commit_apply_mps".to_string(),
            samples: vec![after_mps],
        },
        Measurement {
            name: "group_commit_batch_records".to_string(),
            samples: vec![batch_records],
        },
    ];
    let existing = std::fs::read_to_string(out)
        .ok()
        .and_then(|text| JsonValue::parse(&text).ok());
    let report = perf::merge_report(existing.as_ref(), pr, "before", &before);
    let mut report = perf::merge_report(Some(&report), pr, "after", &after);
    set_unit(&mut report, "every_record_apply_mps", "mps");
    set_unit(&mut report, "group_commit_apply_mps", "mps");
    set_unit(&mut report, "group_commit_batch_records", "records");
    let problems = perf::validate_report(&report);
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("shard_bench: generated report invalid: {p}");
        }
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(out, report.to_json() + "\n") {
        eprintln!("shard_bench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    ExitCode::SUCCESS
}

/// Patches the auto-filled `ms` unit on non-latency entries.
fn set_unit(report: &mut JsonValue, name: &str, unit: &str) {
    if let JsonValue::Object(root) = report {
        if let Some(JsonValue::Array(entries)) = root.get_mut("entries") {
            for entry in entries {
                if let JsonValue::Object(obj) = entry {
                    if obj.get("name") == Some(&JsonValue::String(name.to_string())) {
                        obj.insert("unit".to_string(), JsonValue::String(unit.to_string()));
                    }
                }
            }
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut pr = "pr6".to_string();
    let mut out: Option<String> = None;
    let mut dir: Option<String> = None;
    let mut shards: Option<u32> = None;
    let mut transcript: Option<String> = None;
    let mut crash_at: Option<u64> = None;
    let mut group_crash = false;
    let mut group_verify = false;
    let mut after: Option<u64> = None;
    let mut acked: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        let needs_value = matches!(
            args[i].as_str(),
            "--pr"
                | "--out"
                | "--dir"
                | "--shards"
                | "--transcript"
                | "--crash-at"
                | "--after"
                | "--acked"
        );
        if needs_value && i + 1 >= args.len() {
            return usage();
        }
        match args[i].as_str() {
            "--pr" => pr = args[i + 1].clone(),
            "--out" => out = Some(args[i + 1].clone()),
            "--dir" => dir = Some(args[i + 1].clone()),
            "--shards" => match args[i + 1].parse() {
                Ok(n) if n > 0 => shards = Some(n),
                _ => return usage(),
            },
            "--transcript" => transcript = Some(args[i + 1].clone()),
            "--crash-at" => match args[i + 1].parse() {
                Ok(k) => crash_at = Some(k),
                Err(_) => return usage(),
            },
            "--after" => match args[i + 1].parse() {
                Ok(k) => after = Some(k),
                Err(_) => return usage(),
            },
            "--acked" => match args[i + 1].parse() {
                Ok(k) => acked = Some(k),
                Err(_) => return usage(),
            },
            "--group-crash" => {
                group_crash = true;
                i += 1;
                continue;
            }
            "--group-verify" => {
                group_verify = true;
                i += 1;
                continue;
            }
            _ => return usage(),
        }
        i += 2;
    }
    match (group_crash, group_verify, dir, shards) {
        (true, false, Some(dir), None) => match after {
            Some(after) => run_group_crash(Path::new(&dir), after),
            None => usage(),
        },
        (false, true, Some(dir), None) => match acked {
            Some(acked) => run_group_verify(Path::new(&dir), acked),
            None => usage(),
        },
        (false, false, Some(dir), Some(shards)) => match (transcript, crash_at) {
            (Some(path), None) => run_transcript(Path::new(&dir), shards, &path, None),
            (None, Some(k)) => run_transcript(Path::new(&dir), shards, "", Some(k)),
            _ => usage(),
        },
        (false, false, None, None) => {
            let out = out.unwrap_or_else(|| format!("BENCH_{pr}.json"));
            run_report(&pr, &out)
        }
        _ => usage(),
    }
}
