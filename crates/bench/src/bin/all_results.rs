//! Regenerates every table and figure in one run (used by EXPERIMENTS.md).
//!
//! Parallelism: set `NEMO_THREADS=N` to pin the worker-thread count
//! (default: available parallelism); output is identical at any setting.

use nemo_bench::report;
use nemo_bench::runner::{cost_comparison, run_case_study, scalability_sweep, DEFAULT_SEED};
use nemo_core::llm::profiles;

fn main() {
    let suite = bench::build_suite();
    let logger = bench::run_full(&suite);
    println!("{}", report::format_table2(&suite, &logger));
    println!("{}", report::format_table3(&suite, &logger));
    println!("{}", report::format_table4(&suite, &logger));
    println!("{}", report::format_table5(&suite, &logger));
    let case = run_case_study(&suite, &profiles::bard(), 5, DEFAULT_SEED);
    println!("{}", report::format_table6("Google Bard", &case));
    let comparison = cost_comparison(&profiles::gpt4(), 80, DEFAULT_SEED);
    println!("{}", report::format_figure4a(&comparison));
    let sweep = scalability_sweep(
        &profiles::gpt4(),
        &[20, 40, 60, 80, 100, 150, 200, 300, 400],
        DEFAULT_SEED,
    );
    println!("{}", report::format_figure4b(&sweep));
}
