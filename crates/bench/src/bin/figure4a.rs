//! Regenerates Figure 4a: CDF of LLM cost per query at 80 nodes and edges.
//!
//! Parallelism: set `NEMO_THREADS=N` to pin the worker-thread count
//! (default: available parallelism); output is identical at any setting.

use nemo_bench::runner::{cost_comparison, DEFAULT_SEED};
use nemo_core::llm::profiles;

fn main() {
    let comparison = cost_comparison(&profiles::gpt4(), 80, DEFAULT_SEED);
    println!("{}", nemo_bench::report::format_figure4a(&comparison));
}
