//! Regenerates Figure 4a: CDF of LLM cost per query at 80 nodes and edges.

use nemo_bench::runner::{cost_comparison, DEFAULT_SEED};
use nemo_core::llm::profiles;

fn main() {
    let comparison = cost_comparison(&profiles::gpt4(), 80, DEFAULT_SEED);
    println!("{}", nemo_bench::report::format_figure4a(&comparison));
}
