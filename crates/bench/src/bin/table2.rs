//! Regenerates Table 2: accuracy summary for both applications.

fn main() {
    let suite = bench::build_suite();
    let logger = bench::run_full(&suite);
    println!("{}", nemo_bench::report::format_table2(&suite, &logger));
}
