//! Regenerates Table 2: accuracy summary for both applications.
//!
//! Parallelism: set `NEMO_THREADS=N` to pin the worker-thread count
//! (default: available parallelism); output is identical at any setting.

fn main() {
    let suite = bench::build_suite();
    let logger = bench::run_full(&suite);
    println!("{}", nemo_bench::report::format_table2(&suite, &logger));
}
