//! Serving-layer benchmark: sustained queries/sec and latency percentiles,
//! cold cache vs warm cache, recorded into `BENCH_pr4.json`
//! (`nemo-perf-report/v1`).
//!
//! Usage:
//!
//! ```text
//! serve_bench [--pr pr4] [--out BENCH_pr4.json]
//! serve_bench --transcript <file>     # deterministic load-driver transcript
//! ```
//!
//! The default mode drives one server (one session per code-generation
//! backend) through three phases:
//!
//! * **cold** — every query is a full miss: prompt → LLM → sandbox.
//!   Recorded as the `before` label of `serve_query_ms`.
//! * **warm** — the same queries again at an unchanged epoch: answer-cache
//!   hits that skip the LLM and the compiler entirely. Recorded as the
//!   `after` label, so the report's `speedup` *is* the warm/cold
//!   throughput ratio.
//! * **invalidated** — a mutation batch bumps the epoch, then one more
//!   round runs from the program cache (re-execution without the LLM).
//!
//! `--transcript` instead runs the multi-client load driver
//! (`nemo_serve::driver`) on the current `NEMO_THREADS` setting and writes
//! the transcript; CI diffs a 1-thread run against a 4-thread run.
//! `NEMO_SMALL=1` switches both modes to seconds-scale smoke sizes.

use nemo_bench::perf::{self, percentile, Measurement};
use nemo_bench::pool;
use nemo_core::llm::profiles;
use nemo_core::{Backend, SimulatedLlm};
use nemo_serve::driver::{self, DriveConfig};
use nemo_serve::{LiveNetwork, Server, ServerBuilder, Session};
use netgraph::json::JsonValue;
use std::process::ExitCode;
use trafficgen::{evolve, generate, StreamConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: serve_bench [--pr <tag>] [--out <file>]\n\
         \u{20}      serve_bench --transcript <file>"
    );
    ExitCode::FAILURE
}

struct BenchSizes {
    queries: usize,
    warm_rounds: usize,
    mutation_events: usize,
}

impl BenchSizes {
    fn from_env() -> Self {
        if std::env::var("NEMO_SMALL").is_ok() {
            BenchSizes {
                queries: 8,
                warm_rounds: 2,
                mutation_events: 6,
            }
        } else {
            BenchSizes {
                queries: 24,
                warm_rounds: 5,
                mutation_events: 12,
            }
        }
    }
}

fn build_server(config: &DriveConfig) -> Server<SimulatedLlm> {
    let workload = generate(&config.traffic);
    let live = LiveNetwork::from_workload(&workload);
    let sessions = Backend::CODEGEN
        .iter()
        .enumerate()
        .map(|(i, &backend)| Session {
            client: i,
            backend,
            llm: SimulatedLlm::new(
                profiles::gpt4(),
                driver::serving_knowledge(),
                config.seed ^ i as u64,
            ),
        })
        .collect();
    ServerBuilder::new()
        .build(live, sessions)
        .expect("in-memory builds cannot fail")
}

/// One latency sample per (session, query) request.
fn query_round(server: &mut Server<SimulatedLlm>, queries: &[String]) -> Vec<f64> {
    let mut samples = Vec::with_capacity(queries.len() * Backend::CODEGEN.len());
    for client in 0..Backend::CODEGEN.len() {
        for query in queries {
            samples.push(server.handle_query(client, query).latency_ms);
        }
    }
    samples
}

fn qps(samples: &[f64]) -> f64 {
    let total_ms: f64 = samples.iter().sum();
    if total_ms <= 0.0 {
        0.0
    } else {
        samples.len() as f64 * 1e3 / total_ms
    }
}

/// Patches the auto-filled `ms` unit on throughput entries.
fn set_unit(report: &mut JsonValue, name: &str, unit: &str) {
    if let JsonValue::Object(root) = report {
        if let Some(JsonValue::Array(entries)) = root.get_mut("entries") {
            for entry in entries {
                if let JsonValue::Object(obj) = entry {
                    if obj.get("name") == Some(&JsonValue::String(name.to_string())) {
                        obj.insert("unit".to_string(), JsonValue::String(unit.to_string()));
                    }
                }
            }
        }
    }
}

fn run_transcript(path: &str) -> ExitCode {
    let config = DriveConfig::from_env();
    let threads = pool::thread_count();
    eprintln!(
        "[serve] driving {} clients x {} rounds on {} worker thread(s)",
        config.clients, config.rounds, threads
    );
    let lines = driver::drive(&config, threads);
    let text = lines.join("\n") + "\n";
    if let Err(e) = std::fs::write(path, text) {
        eprintln!("serve_bench: cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {path} ({} transcript lines)", lines.len());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut pr = "pr4".to_string();
    let mut out: Option<String> = None;
    let mut transcript: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--pr" | "--out" | "--transcript" if i + 1 >= args.len() => return usage(),
            "--pr" => {
                pr = args[i + 1].clone();
                i += 2;
            }
            "--out" => {
                out = Some(args[i + 1].clone());
                i += 2;
            }
            "--transcript" => {
                transcript = Some(args[i + 1].clone());
                i += 2;
            }
            _ => return usage(),
        }
    }
    if let Some(path) = transcript {
        return run_transcript(&path);
    }
    let out = out.unwrap_or_else(|| format!("BENCH_{pr}.json"));

    let config = DriveConfig::from_env();
    let sizes = BenchSizes::from_env();
    let queries: Vec<String> = nemo_bench::traffic_queries()
        .into_iter()
        .take(sizes.queries)
        .map(|spec| spec.text.to_string())
        .collect();
    let mut server = build_server(&config);

    eprintln!(
        "[serve] cold phase: {} queries x {} backends (full pipeline)...",
        queries.len(),
        Backend::CODEGEN.len()
    );
    let cold = query_round(&mut server, &queries);

    eprintln!(
        "[serve] warm phase: {} rounds of answer-cache hits...",
        sizes.warm_rounds
    );
    let mut warm = Vec::new();
    for _ in 0..sizes.warm_rounds {
        warm.extend(query_round(&mut server, &queries));
    }

    eprintln!("[serve] invalidation phase: mutation batch + program-cache round...");
    let workload = generate(&config.traffic);
    let stream = evolve(
        &workload,
        &StreamConfig {
            events: sizes.mutation_events,
            seed: config.seed,
        },
    );
    let mut mutation_samples = Vec::with_capacity(stream.len());
    for event in &stream {
        let start = std::time::Instant::now();
        server
            .apply_mutation(event)
            .expect("stream events apply cleanly");
        mutation_samples.push(start.elapsed().as_secs_f64() * 1e3);
    }
    let program_hits = query_round(&mut server, &queries);

    let stats = server.cache_stats();
    let cold_qps = qps(&cold);
    let warm_qps = qps(&warm);
    println!(
        "cold:  {:>10.2} q/s  p50 {:>8.3} ms  p99 {:>8.3} ms",
        cold_qps,
        percentile(&cold, 50.0),
        percentile(&cold, 99.0)
    );
    println!(
        "warm:  {:>10.2} q/s  p50 {:>8.3} ms  p99 {:>8.3} ms",
        warm_qps,
        percentile(&warm, 50.0),
        percentile(&warm, 99.0)
    );
    println!(
        "code:  {:>10.2} q/s  p50 {:>8.3} ms  p99 {:>8.3} ms  (program-cache, post-mutation)",
        qps(&program_hits),
        percentile(&program_hits, 50.0),
        percentile(&program_hits, 99.0)
    );
    println!(
        "warm-cache speedup: {:.1}x queries/sec over cold (target >= 5x)",
        warm_qps / cold_qps.max(f64::MIN_POSITIVE)
    );
    println!(
        "cache: {} answer hits, {} program hits, {} misses, {} invalidated",
        stats.answer_hits, stats.program_hits, stats.misses, stats.invalidated
    );

    // serve_query_ms carries cold as `before` and warm as `after`, so the
    // schema's derived speedup is the headline warm/cold ratio.
    let before = [Measurement {
        name: "serve_query_ms".to_string(),
        samples: cold.clone(),
    }];
    let after = [
        Measurement {
            name: "serve_query_ms".to_string(),
            samples: warm.clone(),
        },
        Measurement {
            name: "serve_query_program_hit_ms".to_string(),
            samples: program_hits,
        },
        Measurement {
            name: "serve_mutation_apply_ms".to_string(),
            samples: mutation_samples,
        },
        Measurement {
            name: "serve_cold_qps".to_string(),
            samples: vec![cold_qps],
        },
        Measurement {
            name: "serve_warm_qps".to_string(),
            samples: vec![warm_qps],
        },
        Measurement {
            name: "serve_cold_p99_ms".to_string(),
            samples: vec![percentile(&cold, 99.0)],
        },
        Measurement {
            name: "serve_warm_p99_ms".to_string(),
            samples: vec![percentile(&warm, 99.0)],
        },
        Measurement {
            name: "serve_cold_p50_ms".to_string(),
            samples: vec![percentile(&cold, 50.0)],
        },
        Measurement {
            name: "serve_warm_p50_ms".to_string(),
            samples: vec![percentile(&warm, 50.0)],
        },
    ];
    let existing = std::fs::read_to_string(&out)
        .ok()
        .and_then(|text| JsonValue::parse(&text).ok());
    let report = perf::merge_report(existing.as_ref(), &pr, "before", &before);
    let mut report = perf::merge_report(Some(&report), &pr, "after", &after);
    set_unit(&mut report, "serve_cold_qps", "qps");
    set_unit(&mut report, "serve_warm_qps", "qps");
    let problems = perf::validate_report(&report);
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("serve_bench: generated report invalid: {p}");
        }
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out, report.to_json() + "\n") {
        eprintln!("serve_bench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    ExitCode::SUCCESS
}
