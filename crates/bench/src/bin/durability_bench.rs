//! Durability benchmark + crash/recovery driver for the persistent
//! serving layer (`nemo-serve::persist` over `nemo-store`).
//!
//! Usage:
//!
//! ```text
//! durability_bench [--pr pr5] [--out BENCH_pr5.json]
//! durability_bench --dir <store> --transcript <file>     # run (or resume) and write transcript
//! durability_bench --dir <store> --crash-at <k>          # run and crash mid-stream (exit 3)
//! ```
//!
//! The default mode records, into the `nemo-perf-report/v1` schema:
//!
//! * `durable_apply_ms` — per-mutation apply latency, in-memory only
//!   (`before`) vs durably logged with `fsync: Never` (`after`): the pure
//!   logging overhead.
//! * `durable_apply_fsync_{never,batch,record}_mps` — sustained
//!   mutation-apply throughput under each fsync policy.
//! * `durable_recovery_ms` / `durable_recovery_mps` — wall time to rebuild
//!   the state from snapshot + WAL suffix, and records replayed per
//!   second.
//!
//! The transcript modes drive `nemo_serve::durability`: the *same*
//! `--transcript` command transparently resumes after a `--crash-at` run
//! (recovery is implicit), and CI `cmp`s the resumed transcript against an
//! uninterrupted one at `NEMO_THREADS=1` and `4`.

use nemo_bench::perf::{self, Measurement};
use nemo_bench::pool;
use nemo_serve::durability::{self, DurabilityConfig};
use nemo_serve::persist::{FsyncPolicy, PersistOptions, Persistence};
use nemo_serve::LiveNetwork;
use netgraph::json::JsonValue;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;
use trafficgen::{evolve, generate, StreamConfig, TimedEvent, TrafficConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: durability_bench [--pr <tag>] [--out <file>]\n\
         \u{20}      durability_bench --dir <store> --transcript <file>\n\
         \u{20}      durability_bench --dir <store> --crash-at <epoch>"
    );
    ExitCode::FAILURE
}

struct BenchSizes {
    events: usize,
    recovery_rounds: usize,
}

impl BenchSizes {
    fn from_env() -> Self {
        if std::env::var("NEMO_SMALL").is_ok() {
            BenchSizes {
                events: 150,
                recovery_rounds: 3,
            }
        } else {
            BenchSizes {
                events: 1500,
                recovery_rounds: 5,
            }
        }
    }
}

fn bench_options(fsync: FsyncPolicy) -> PersistOptions {
    PersistOptions {
        fsync,
        segment_max_bytes: 64 << 10,
        snapshot_every_bytes: 256 << 10,
        snapshot_every_epochs: 1024,
        keep_snapshots: 2,
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "nemo-durability-bench-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Applies the whole stream, one persistence handle, one latency sample
/// per mutation. `sync_every` marks batch boundaries (0 = never).
fn timed_apply(
    stream: &[TimedEvent],
    live: &mut LiveNetwork,
    persistence: &mut Persistence,
    sync_every: usize,
) -> Vec<f64> {
    let mut samples = Vec::with_capacity(stream.len());
    for (i, event) in stream.iter().enumerate() {
        let start = Instant::now();
        live.apply_event_persisted(event, persistence)
            .expect("stream events apply cleanly");
        if sync_every > 0 && (i + 1) % sync_every == 0 {
            persistence.sync().expect("batch fsync");
        }
        samples.push(start.elapsed().as_secs_f64() * 1e3);
    }
    samples
}

fn mps(samples: &[f64]) -> f64 {
    let total_ms: f64 = samples.iter().sum();
    if total_ms <= 0.0 {
        0.0
    } else {
        samples.len() as f64 * 1e3 / total_ms
    }
}

/// Patches the auto-filled `ms` unit on throughput entries.
fn set_unit(report: &mut JsonValue, name: &str, unit: &str) {
    if let JsonValue::Object(root) = report {
        if let Some(JsonValue::Array(entries)) = root.get_mut("entries") {
            for entry in entries {
                if let JsonValue::Object(obj) = entry {
                    if obj.get("name") == Some(&JsonValue::String(name.to_string())) {
                        obj.insert("unit".to_string(), JsonValue::String(unit.to_string()));
                    }
                }
            }
        }
    }
}

fn run_transcript(dir: &Path, path: &str, crash_at: Option<u64>) -> ExitCode {
    let config = DurabilityConfig::from_env();
    let threads = pool::thread_count();
    eprintln!(
        "[durability] {} clients x {} events on {} worker thread(s){}",
        config.clients,
        config.events,
        threads,
        crash_at.map_or(String::new(), |k| format!(", crashing near epoch {k}")),
    );
    match durability::run(&config, dir, threads, crash_at) {
        Ok((lines, crashed)) => {
            if crashed {
                eprintln!("[durability] crashed mid-stream as requested (stores left on disk)");
                return ExitCode::from(3);
            }
            if let Some(k) = crash_at {
                eprintln!(
                    "durability_bench: --crash-at {k} never triggered \
                     (the stream has only {} events per client)",
                    config.events
                );
                return ExitCode::FAILURE;
            }
            let text = lines.join("\n") + "\n";
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("durability_bench: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {path} ({} transcript lines)", lines.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("durability_bench: driver failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_report(pr: &str, out: &str) -> ExitCode {
    let sizes = BenchSizes::from_env();
    let workload = generate(&TrafficConfig::default());
    let stream = evolve(
        &workload,
        &StreamConfig {
            events: sizes.events,
            seed: 2033,
        },
    );

    // Baseline: in-memory apply, no persistence.
    eprintln!(
        "[durability] baseline: {} in-memory applies...",
        stream.len()
    );
    let mut live = LiveNetwork::from_workload(&workload);
    let mut baseline = Vec::with_capacity(stream.len());
    for event in &stream {
        let start = Instant::now();
        live.apply_event(event)
            .expect("stream events apply cleanly");
        baseline.push(start.elapsed().as_secs_f64() * 1e3);
    }

    // Durably logged, one run per fsync policy.
    let mut policy_samples: Vec<(&str, Vec<f64>)> = Vec::new();
    let mut recovery_dir = None;
    for (tag, policy, sync_every) in [
        ("never", FsyncPolicy::Never, 0usize),
        ("batch", FsyncPolicy::EveryBatch, 16),
        ("record", FsyncPolicy::EveryRecord, 0),
    ] {
        eprintln!(
            "[durability] fsync={tag}: {} logged applies...",
            stream.len()
        );
        let dir = scratch_dir(tag);
        let mut live = LiveNetwork::from_workload(&workload);
        let mut persistence =
            Persistence::create(&dir, &bench_options(policy), &live).expect("fresh bench store");
        let samples = timed_apply(&stream, &mut live, &mut persistence, sync_every);
        persistence.sync().expect("final fsync");
        drop(persistence);
        if tag == "never" {
            recovery_dir = Some(dir);
        } else {
            let _ = std::fs::remove_dir_all(&dir);
        }
        policy_samples.push((tag, samples));
    }

    // Recovery: rebuild the state from the fsync-never store.
    let recovery_dir = recovery_dir.expect("never-policy run kept its store");
    eprintln!(
        "[durability] recovery x {} rounds...",
        sizes.recovery_rounds
    );
    let mut recovery_samples = Vec::with_capacity(sizes.recovery_rounds);
    let mut replayed = 0u64;
    for _ in 0..sizes.recovery_rounds {
        let start = Instant::now();
        let (recovered, _, report) =
            Persistence::recover(&recovery_dir, &bench_options(FsyncPolicy::Never))
                .expect("bench store recovers");
        recovery_samples.push(start.elapsed().as_secs_f64() * 1e3);
        replayed = report.replayed_records;
        assert_eq!(recovered.epoch(), stream.len() as u64);
        assert!(recovered == live, "recovered state diverged");
    }
    let _ = std::fs::remove_dir_all(&recovery_dir);
    let recovery_median = perf::median(&recovery_samples);
    let recovery_mps = if recovery_median > 0.0 {
        replayed as f64 * 1e3 / recovery_median
    } else {
        0.0
    };

    println!(
        "apply baseline (in-memory): {:>9.1} mutations/s",
        mps(&baseline)
    );
    for (tag, samples) in &policy_samples {
        println!(
            "apply fsync={tag:<7}            {:>9.1} mutations/s",
            mps(samples)
        );
    }
    println!(
        "recovery: {:.2} ms median ({} records replayed, {:.0} records/s)",
        recovery_median, replayed, recovery_mps
    );

    let before = [Measurement {
        name: "durable_apply_ms".to_string(),
        samples: baseline,
    }];
    let mut after = vec![Measurement {
        name: "durable_apply_ms".to_string(),
        samples: policy_samples
            .iter()
            .find(|(tag, _)| *tag == "never")
            .expect("never policy ran")
            .1
            .clone(),
    }];
    for (tag, samples) in &policy_samples {
        after.push(Measurement {
            name: format!("durable_apply_fsync_{tag}_mps"),
            samples: vec![mps(samples)],
        });
    }
    after.push(Measurement {
        name: "durable_recovery_ms".to_string(),
        samples: recovery_samples,
    });
    after.push(Measurement {
        name: "durable_recovery_mps".to_string(),
        samples: vec![recovery_mps],
    });

    let existing = std::fs::read_to_string(out)
        .ok()
        .and_then(|text| JsonValue::parse(&text).ok());
    let report = perf::merge_report(existing.as_ref(), pr, "before", &before);
    let mut report = perf::merge_report(Some(&report), pr, "after", &after);
    for (tag, _) in &policy_samples {
        set_unit(
            &mut report,
            &format!("durable_apply_fsync_{tag}_mps"),
            "mps",
        );
    }
    set_unit(&mut report, "durable_recovery_mps", "mps");
    let problems = perf::validate_report(&report);
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("durability_bench: generated report invalid: {p}");
        }
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(out, report.to_json() + "\n") {
        eprintln!("durability_bench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut pr = "pr5".to_string();
    let mut out: Option<String> = None;
    let mut dir: Option<String> = None;
    let mut transcript: Option<String> = None;
    let mut crash_at: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--pr" | "--out" | "--dir" | "--transcript" | "--crash-at" if i + 1 >= args.len() => {
                return usage()
            }
            "--pr" => {
                pr = args[i + 1].clone();
                i += 2;
            }
            "--out" => {
                out = Some(args[i + 1].clone());
                i += 2;
            }
            "--dir" => {
                dir = Some(args[i + 1].clone());
                i += 2;
            }
            "--transcript" => {
                transcript = Some(args[i + 1].clone());
                i += 2;
            }
            "--crash-at" => {
                match args[i + 1].parse() {
                    Ok(k) => crash_at = Some(k),
                    Err(_) => return usage(),
                }
                i += 2;
            }
            _ => return usage(),
        }
    }
    match (dir, transcript, crash_at) {
        (Some(dir), Some(path), None) => run_transcript(Path::new(&dir), &path, None),
        (Some(dir), None, Some(k)) => run_transcript(Path::new(&dir), "", Some(k)),
        (None, None, None) => {
            let out = out.unwrap_or_else(|| format!("BENCH_{pr}.json"));
            run_report(&pr, &out)
        }
        _ => usage(),
    }
}
