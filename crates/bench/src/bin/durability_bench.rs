//! Durability benchmark + crash/recovery driver for the persistent
//! serving layer (`nemo-serve::persist` over `nemo-store`).
//!
//! Usage:
//!
//! ```text
//! durability_bench [--pr pr5] [--out BENCH_pr5.json]
//! durability_bench --sweep [--pr pr7] [--out BENCH_pr7.json]
//! durability_bench --dir <store> --transcript <file>     # run (or resume) and write transcript
//! durability_bench --dir <store> --crash-at <k>          # run and crash mid-stream (exit 3)
//! durability_bench --dir <store> --crash-sweep <budget>  # run, kill mid-sweep (exit 3)
//! durability_bench --dir <store> --fault-at <k> [--fault-kind <name>]
//!                                                        # client 0 runs on a FaultFs armed at
//!                                                        # op k; exit 3 when the fault surfaces
//! ```
//!
//! The default mode records, into the `nemo-perf-report/v1` schema:
//!
//! * `durable_apply_ms` — per-mutation apply latency, in-memory only
//!   (`before`) vs durably logged with `fsync: Never` (`after`): the pure
//!   logging overhead.
//! * `durable_apply_fsync_{never,batch,record}_mps` — sustained
//!   mutation-apply throughput under each fsync policy.
//! * `durable_recovery_ms` / `durable_recovery_mps` — wall time to rebuild
//!   the state from snapshot + WAL suffix, and records replayed per
//!   second.
//!
//! The `--sweep` mode records, into the same schema:
//!
//! * `append_stall_p99_ms` — 99th-percentile per-mutation apply latency
//!   when snapshot + compaction run inline on the write path (`before`:
//!   full snapshot plus an unbounded sweep inside the apply) vs the PR 7
//!   write path (`after`: delta snapshots, budgeted sweep at batch
//!   boundaries).
//! * `snapshot_install_ms` — wall time to install one snapshot of an
//!   append-heavy state: `before` full (O(state)), `after` delta
//!   (O(records since the last snapshot)).
//!
//! The transcript modes drive `nemo_serve::durability`: the *same*
//! `--transcript` command transparently resumes after a `--crash-at` run
//! (recovery is implicit), and CI `cmp`s the resumed transcript against an
//! uninterrupted one at `NEMO_THREADS=1` and `4`. `--crash-sweep` applies
//! the stream, syncs, then dies partway through a budgeted sweep — the
//! next `--transcript` run must resume to the uninterrupted transcript.
//!
//! `--fault-at` is the fault-injection variant of `--crash-at`: client 0
//! runs its whole stream on a `nemo_store::FaultFs` with a single-shot
//! fault (`--fault-kind`, default `fsync`) armed at operation index `k`.
//! A retryable fault is absorbed by the serving layer's bounded retry
//! (exit 0, transcript identical to an unfaulted run); a surfaced fault
//! exits 3 with the typed error on stderr and the stores left on disk —
//! the next `--transcript` run must resume to the canonical transcript,
//! which is the acked-implies-durable proof CI's `fault-smoke` job `cmp`s.

use nemo_bench::perf::{self, Measurement};
use nemo_bench::pool;
use nemo_serve::durability::{self, DurabilityConfig};
use nemo_serve::persist::{FsyncPolicy, PersistOptions, Persistence};
use nemo_serve::LiveNetwork;
use nemo_store::FaultKind;
use netgraph::json::JsonValue;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;
use trafficgen::{evolve, generate, StreamConfig, TimedEvent, TrafficConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: durability_bench [--pr <tag>] [--out <file>]\n\
         \u{20}      durability_bench --sweep [--pr <tag>] [--out <file>]\n\
         \u{20}      durability_bench --dir <store> --transcript <file>\n\
         \u{20}      durability_bench --dir <store> --crash-at <epoch>\n\
         \u{20}      durability_bench --dir <store> --crash-sweep <budget>\n\
         \u{20}      durability_bench --dir <store> --fault-at <op> [--fault-kind <name>]"
    );
    ExitCode::FAILURE
}

struct BenchSizes {
    events: usize,
    recovery_rounds: usize,
}

impl BenchSizes {
    fn from_env() -> Self {
        if std::env::var("NEMO_SMALL").is_ok() {
            BenchSizes {
                events: 150,
                recovery_rounds: 3,
            }
        } else {
            BenchSizes {
                events: 1500,
                recovery_rounds: 5,
            }
        }
    }
}

fn bench_options(fsync: FsyncPolicy) -> PersistOptions {
    PersistOptions {
        fsync,
        segment_max_bytes: 64 << 10,
        snapshot_every_bytes: 256 << 10,
        snapshot_every_epochs: 1024,
        keep_snapshots: 2,
        ..PersistOptions::default()
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "nemo-durability-bench-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Applies the whole stream, one persistence handle, one latency sample
/// per mutation. `sync_every` marks batch boundaries (0 = never).
fn timed_apply(
    stream: &[TimedEvent],
    live: &mut LiveNetwork,
    persistence: &mut Persistence,
    sync_every: usize,
) -> Vec<f64> {
    let mut samples = Vec::with_capacity(stream.len());
    for (i, event) in stream.iter().enumerate() {
        let start = Instant::now();
        live.apply_event_persisted(event, persistence)
            .expect("stream events apply cleanly");
        if sync_every > 0 && (i + 1) % sync_every == 0 {
            persistence.sync().expect("batch fsync");
        }
        samples.push(start.elapsed().as_secs_f64() * 1e3);
    }
    samples
}

fn mps(samples: &[f64]) -> f64 {
    let total_ms: f64 = samples.iter().sum();
    if total_ms <= 0.0 {
        0.0
    } else {
        samples.len() as f64 * 1e3 / total_ms
    }
}

/// Patches the auto-filled `ms` unit on throughput entries.
fn set_unit(report: &mut JsonValue, name: &str, unit: &str) {
    if let JsonValue::Object(root) = report {
        if let Some(JsonValue::Array(entries)) = root.get_mut("entries") {
            for entry in entries {
                if let JsonValue::Object(obj) = entry {
                    if obj.get("name") == Some(&JsonValue::String(name.to_string())) {
                        obj.insert("unit".to_string(), JsonValue::String(unit.to_string()));
                    }
                }
            }
        }
    }
}

fn run_transcript(dir: &Path, path: &str, crash_at: Option<u64>) -> ExitCode {
    let mut config = DurabilityConfig::from_env();
    // A fresh registry per run: the final snapshot is dumped next to the
    // transcript so CI artifacts carry the metrics alongside the lines.
    // Likewise a fresh flight recorder: the query round runs through the
    // typed request path, so its trace trees ride along as
    // `<transcript>.traces.json`.
    let registry = nemo_obs::Registry::new();
    config.options.registry = registry.clone();
    let tracer = nemo_obs::trace::Tracer::new();
    tracer.enable(1024);
    config.options.tracer = tracer.clone();
    let threads = pool::thread_count();
    eprintln!(
        "[durability] {} clients x {} events on {} worker thread(s){}",
        config.clients,
        config.events,
        threads,
        crash_at.map_or(String::new(), |k| format!(", crashing near epoch {k}")),
    );
    match durability::run(&config, dir, threads, crash_at) {
        Ok((lines, crashed)) => {
            if crashed {
                eprintln!("[durability] crashed mid-stream as requested (stores left on disk)");
                return ExitCode::from(3);
            }
            if let Some(k) = crash_at {
                eprintln!(
                    "durability_bench: --crash-at {k} never triggered \
                     (the stream has only {} events per client)",
                    config.events
                );
                return ExitCode::FAILURE;
            }
            let text = lines.join("\n") + "\n";
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("durability_bench: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {path} ({} transcript lines)", lines.len());
            let metrics_path = format!("{path}.metrics.json");
            if let Err(e) = std::fs::write(&metrics_path, registry.snapshot().to_json() + "\n") {
                eprintln!("durability_bench: cannot write {metrics_path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {metrics_path}");
            let traces = tracer.to_doc(0);
            match netgraph::json::JsonValue::parse(&traces) {
                Ok(doc) => {
                    if let Err(e) = nemo_serve::validate_trace_doc(&doc) {
                        eprintln!("durability_bench: trace document invalid: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                Err(e) => {
                    eprintln!("durability_bench: trace document does not parse: {e:?}");
                    return ExitCode::FAILURE;
                }
            }
            let traces_path = format!("{path}.traces.json");
            if let Err(e) = std::fs::write(&traces_path, traces + "\n") {
                eprintln!("durability_bench: cannot write {traces_path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {traces_path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("durability_bench: driver failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_report(pr: &str, out: &str) -> ExitCode {
    let sizes = BenchSizes::from_env();
    let workload = generate(&TrafficConfig::default());
    let stream = evolve(
        &workload,
        &StreamConfig {
            events: sizes.events,
            seed: 2033,
        },
    );

    // Baseline: in-memory apply, no persistence.
    eprintln!(
        "[durability] baseline: {} in-memory applies...",
        stream.len()
    );
    let mut live = LiveNetwork::from_workload(&workload);
    let mut baseline = Vec::with_capacity(stream.len());
    for event in &stream {
        let start = Instant::now();
        live.apply_event(event)
            .expect("stream events apply cleanly");
        baseline.push(start.elapsed().as_secs_f64() * 1e3);
    }

    // Durably logged, one run per fsync policy.
    let mut policy_samples: Vec<(&str, Vec<f64>)> = Vec::new();
    let mut recovery_dir = None;
    for (tag, policy, sync_every) in [
        ("never", FsyncPolicy::Never, 0usize),
        ("batch", FsyncPolicy::EveryBatch, 16),
        ("record", FsyncPolicy::EveryRecord, 0),
    ] {
        eprintln!(
            "[durability] fsync={tag}: {} logged applies...",
            stream.len()
        );
        let dir = scratch_dir(tag);
        let mut live = LiveNetwork::from_workload(&workload);
        let mut persistence =
            Persistence::create(&dir, &bench_options(policy), &live).expect("fresh bench store");
        let samples = timed_apply(&stream, &mut live, &mut persistence, sync_every);
        persistence.sync().expect("final fsync");
        drop(persistence);
        if tag == "never" {
            recovery_dir = Some(dir);
        } else {
            let _ = std::fs::remove_dir_all(&dir);
        }
        policy_samples.push((tag, samples));
    }

    // Recovery: rebuild the state from the fsync-never store.
    let recovery_dir = recovery_dir.expect("never-policy run kept its store");
    eprintln!(
        "[durability] recovery x {} rounds...",
        sizes.recovery_rounds
    );
    let mut recovery_samples = Vec::with_capacity(sizes.recovery_rounds);
    let mut replayed = 0u64;
    for _ in 0..sizes.recovery_rounds {
        let start = Instant::now();
        let (recovered, _, report) =
            Persistence::recover(&recovery_dir, &bench_options(FsyncPolicy::Never))
                .expect("bench store recovers");
        recovery_samples.push(start.elapsed().as_secs_f64() * 1e3);
        replayed = report.replayed_records;
        assert_eq!(recovered.epoch(), stream.len() as u64);
        assert!(recovered == live, "recovered state diverged");
    }
    let _ = std::fs::remove_dir_all(&recovery_dir);
    let recovery_median = perf::median(&recovery_samples);
    let recovery_mps = if recovery_median > 0.0 {
        replayed as f64 * 1e3 / recovery_median
    } else {
        0.0
    };

    println!(
        "apply baseline (in-memory): {:>9.1} mutations/s",
        mps(&baseline)
    );
    for (tag, samples) in &policy_samples {
        println!(
            "apply fsync={tag:<7}            {:>9.1} mutations/s",
            mps(samples)
        );
    }
    println!(
        "recovery: {:.2} ms median ({} records replayed, {:.0} records/s)",
        recovery_median, replayed, recovery_mps
    );

    let before = [Measurement {
        name: "durable_apply_ms".to_string(),
        samples: baseline,
    }];
    let mut after = vec![Measurement {
        name: "durable_apply_ms".to_string(),
        samples: policy_samples
            .iter()
            .find(|(tag, _)| *tag == "never")
            .expect("never policy ran")
            .1
            .clone(),
    }];
    for (tag, samples) in &policy_samples {
        after.push(Measurement {
            name: format!("durable_apply_fsync_{tag}_mps"),
            samples: vec![mps(samples)],
        });
    }
    after.push(Measurement {
        name: "durable_recovery_ms".to_string(),
        samples: recovery_samples,
    });
    after.push(Measurement {
        name: "durable_recovery_mps".to_string(),
        samples: vec![recovery_mps],
    });

    let existing = std::fs::read_to_string(out)
        .ok()
        .and_then(|text| JsonValue::parse(&text).ok());
    let report = perf::merge_report(existing.as_ref(), pr, "before", &before);
    let mut report = perf::merge_report(Some(&report), pr, "after", &after);
    for (tag, _) in &policy_samples {
        set_unit(
            &mut report,
            &format!("durable_apply_fsync_{tag}_mps"),
            "mps",
        );
    }
    set_unit(&mut report, "durable_recovery_mps", "mps");
    let problems = perf::validate_report(&report);
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("durability_bench: generated report invalid: {p}");
        }
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(out, report.to_json() + "\n") {
        eprintln!("durability_bench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    ExitCode::SUCCESS
}

struct SweepSizes {
    /// Events in the append-stall stream.
    stall_events: usize,
    /// Snapshot every this many events in the stall stream.
    snapshot_every: usize,
    /// Nodes in the append-heavy install-timing state.
    install_nodes: usize,
    /// Timed install rounds (each round: one delta, one full).
    install_rounds: usize,
}

impl SweepSizes {
    fn from_env() -> Self {
        if std::env::var("NEMO_SMALL").is_ok() {
            SweepSizes {
                stall_events: 400,
                snapshot_every: 32,
                install_nodes: 10_000,
                install_rounds: 3,
            }
        } else {
            SweepSizes {
                stall_events: 2000,
                snapshot_every: 32,
                install_nodes: 100_000,
                install_rounds: 5,
            }
        }
    }
}

/// Applies the stream with periodic snapshots, one latency sample per
/// mutation. `inline` reproduces the pre-sweep write path: a full
/// snapshot plus an unbounded sweep inside the timed apply. Deferred is
/// the shipping path: delta-eligible snapshots, and a budgeted sweep at
/// every 16-event batch boundary (still timed — it *is* on the write
/// path, just bounded).
fn timed_apply_with_snapshots(
    stream: &[TimedEvent],
    live: &mut LiveNetwork,
    persistence: &mut Persistence,
    snapshot_every: usize,
    inline: bool,
) -> Vec<f64> {
    const SWEEP_BUDGET: usize = 64;
    let mut samples = Vec::with_capacity(stream.len());
    for (i, event) in stream.iter().enumerate() {
        let start = Instant::now();
        live.apply_event_persisted(event, persistence)
            .expect("stream events apply cleanly");
        if (i + 1) % snapshot_every == 0 {
            if inline {
                persistence
                    .force_full_snapshot(live)
                    .expect("inline full snapshot");
                persistence.sweep(usize::MAX).expect("inline sweep");
            } else {
                persistence.force_snapshot(live).expect("deferred snapshot");
            }
        }
        if !inline && (i + 1) % 16 == 0 {
            persistence.sweep(SWEEP_BUDGET).expect("budgeted sweep");
        }
        samples.push(start.elapsed().as_secs_f64() * 1e3);
    }
    samples
}

/// Tight segments so every snapshot point has a real pile of WAL files
/// to compact — the regime where an inline sweep visibly stalls appends.
fn sweep_bench_options() -> PersistOptions {
    PersistOptions {
        fsync: FsyncPolicy::Never,
        segment_max_bytes: 512,
        snapshot_every_bytes: 0,
        snapshot_every_epochs: 0,
        keep_snapshots: 2,
        ..PersistOptions::default()
    }
}

fn run_sweep_report(pr: &str, out: &str) -> ExitCode {
    let sizes = SweepSizes::from_env();
    // A state large enough that a full snapshot costs real serialization
    // work — that is the O(state) term an inline snapshot+sweep puts on
    // the write path at every snapshot point, and the one the deferred
    // path only pays when a delta chain caps out.
    let workload = generate(&TrafficConfig {
        nodes: 2000,
        edges: 3000,
        prefixes: 4,
        seed: 2033,
    });
    let stream = evolve(
        &workload,
        &StreamConfig {
            events: sizes.stall_events,
            seed: 7107,
        },
    );

    // Append stall: inline snapshot+compaction vs the deferred write path.
    let mut stall = Vec::new();
    for (tag, inline) in [("inline", true), ("deferred", false)] {
        eprintln!(
            "[sweep] append stall, {tag}: {} applies, snapshot every {}...",
            stream.len(),
            sizes.snapshot_every
        );
        let dir = scratch_dir(&format!("sweep-{tag}"));
        let mut live = LiveNetwork::from_workload(&workload);
        let mut persistence = Persistence::create(&dir, &sweep_bench_options(), &live)
            .expect("fresh sweep bench store");
        let samples = timed_apply_with_snapshots(
            &stream,
            &mut live,
            &mut persistence,
            sizes.snapshot_every,
            inline,
        );
        if !inline {
            assert!(
                persistence
                    .store()
                    .snapshot_metas()
                    .iter()
                    .any(|m| m.base.is_some()),
                "deferred run installed no delta snapshots"
            );
        }
        drop(persistence);
        let _ = std::fs::remove_dir_all(&dir);
        let p99 = perf::percentile(&samples, 99.0);
        println!("append stall p99, {tag:<8}: {p99:>9.4} ms");
        stall.push((tag, p99));
    }

    // Install cost: full snapshot of an append-heavy state vs a delta
    // carrying only the records since the last snapshot.
    eprintln!(
        "[sweep] install timing: {}-node state, {} rounds...",
        sizes.install_nodes, sizes.install_rounds
    );
    let big = generate(&TrafficConfig {
        nodes: sizes.install_nodes,
        edges: sizes.install_nodes + sizes.install_nodes / 2,
        prefixes: 4,
        seed: 9,
    });
    let per_round = 256usize;
    let big_stream = evolve(
        &big,
        &StreamConfig {
            events: sizes.install_rounds * per_round * 2,
            seed: 7108,
        },
    );
    let dir = scratch_dir("sweep-install");
    let mut live = LiveNetwork::from_workload(&big);
    let mut persistence = Persistence::create(
        &dir,
        &PersistOptions {
            segment_max_bytes: 64 << 10,
            ..sweep_bench_options()
        },
        &live,
    )
    .expect("fresh install bench store");
    let mut delta_ms = Vec::with_capacity(sizes.install_rounds);
    let mut full_ms = Vec::with_capacity(sizes.install_rounds);
    let mut events = big_stream.iter();
    for _ in 0..sizes.install_rounds {
        // Delta first (chain length 1), then full (resets the chain), so
        // every delta measurement really takes the delta path.
        for event in events.by_ref().take(per_round) {
            live.apply_event_persisted(event, &mut persistence)
                .expect("stream events apply cleanly");
        }
        let start = Instant::now();
        persistence
            .force_snapshot(&live)
            .expect("delta snapshot installs");
        delta_ms.push(start.elapsed().as_secs_f64() * 1e3);
        assert!(
            persistence
                .store()
                .snapshot_metas()
                .last()
                .is_some_and(|m| m.base.is_some()),
            "timed snapshot was not a delta"
        );
        for event in events.by_ref().take(per_round) {
            live.apply_event_persisted(event, &mut persistence)
                .expect("stream events apply cleanly");
        }
        let start = Instant::now();
        persistence
            .force_full_snapshot(&live)
            .expect("full snapshot installs");
        full_ms.push(start.elapsed().as_secs_f64() * 1e3);
    }
    drop(persistence);
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "snapshot install: delta {:>9.3} ms median ({per_round} records), \
         full {:>9.3} ms median ({} nodes)",
        perf::median(&delta_ms),
        perf::median(&full_ms),
        sizes.install_nodes
    );

    let inline_p99 = stall
        .iter()
        .find(|(tag, _)| *tag == "inline")
        .expect("inline ran")
        .1;
    let deferred_p99 = stall
        .iter()
        .find(|(tag, _)| *tag == "deferred")
        .expect("deferred ran")
        .1;
    println!(
        "append stall p99 ratio (inline / deferred): {:.2}x",
        inline_p99 / deferred_p99.max(f64::EPSILON)
    );

    let before = [
        Measurement {
            name: "append_stall_p99_ms".to_string(),
            samples: vec![inline_p99],
        },
        Measurement {
            name: "snapshot_install_ms".to_string(),
            samples: full_ms,
        },
    ];
    let after = [
        Measurement {
            name: "append_stall_p99_ms".to_string(),
            samples: vec![deferred_p99],
        },
        Measurement {
            name: "snapshot_install_ms".to_string(),
            samples: delta_ms,
        },
    ];

    let existing = std::fs::read_to_string(out)
        .ok()
        .and_then(|text| JsonValue::parse(&text).ok());
    let report = perf::merge_report(existing.as_ref(), pr, "before", &before);
    let report = perf::merge_report(Some(&report), pr, "after", &after);
    let problems = perf::validate_report(&report);
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("durability_bench: generated report invalid: {p}");
        }
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(out, report.to_json() + "\n") {
        eprintln!("durability_bench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    ExitCode::SUCCESS
}

/// Runs the durability workload with client 0 on a [`FaultFs`] armed at
/// `fault_at`. Exit 0 = the fault was absorbed (or never fired) and the
/// transcript is canonical; exit 3 = the fault surfaced loudly and the
/// stores were left on disk for the resume proof.
///
/// [`FaultFs`]: nemo_store::FaultFs
fn run_fault_mode(dir: &Path, fault_at: u64, kind: FaultKind) -> ExitCode {
    let config = DurabilityConfig::from_env();
    let threads = pool::thread_count();
    eprintln!(
        "[durability] {} clients x {} events on {} worker thread(s), \
         {} fault armed at op {fault_at} for client 0",
        config.clients,
        config.events,
        threads,
        kind.name(),
    );
    match durability::run_fault(&config, dir, threads, fault_at, kind) {
        Ok((lines, true)) => {
            for line in lines.iter().filter(|l| l.contains("fault:")) {
                eprintln!("[durability] {line}");
            }
            eprintln!("[durability] fault surfaced as a typed error (stores left on disk)");
            ExitCode::from(3)
        }
        Ok((lines, false)) => {
            eprintln!(
                "[durability] fault at op {fault_at} absorbed or never fired; \
                 run completed ({} transcript lines)",
                lines.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("durability_bench: fault driver failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_crash_sweep(dir: &Path, budget: usize) -> ExitCode {
    let config = DurabilityConfig::from_env();
    let threads = pool::thread_count();
    eprintln!(
        "[durability] {} clients x {} events on {} worker thread(s), \
         dying after {budget} sweep removal(s)",
        config.clients, config.events, threads,
    );
    match durability::run_sweep_crash(&config, dir, threads, budget) {
        Ok(()) => {
            eprintln!("[durability] killed mid-sweep as requested (stores left on disk)");
            ExitCode::from(3)
        }
        Err(e) => {
            eprintln!("durability_bench: crash-sweep driver failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut pr = "pr5".to_string();
    let mut out: Option<String> = None;
    let mut dir: Option<String> = None;
    let mut transcript: Option<String> = None;
    let mut crash_at: Option<u64> = None;
    let mut crash_sweep: Option<usize> = None;
    let mut fault_at: Option<u64> = None;
    let mut fault_kind = "fsync".to_string();
    let mut sweep = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--pr" | "--out" | "--dir" | "--transcript" | "--crash-at" | "--crash-sweep"
            | "--fault-at" | "--fault-kind"
                if i + 1 >= args.len() =>
            {
                return usage()
            }
            "--pr" => {
                pr = args[i + 1].clone();
                i += 2;
            }
            "--out" => {
                out = Some(args[i + 1].clone());
                i += 2;
            }
            "--dir" => {
                dir = Some(args[i + 1].clone());
                i += 2;
            }
            "--transcript" => {
                transcript = Some(args[i + 1].clone());
                i += 2;
            }
            "--crash-at" => {
                match args[i + 1].parse() {
                    Ok(k) => crash_at = Some(k),
                    Err(_) => return usage(),
                }
                i += 2;
            }
            "--crash-sweep" => {
                match args[i + 1].parse() {
                    Ok(n) => crash_sweep = Some(n),
                    Err(_) => return usage(),
                }
                i += 2;
            }
            "--fault-at" => {
                match args[i + 1].parse() {
                    Ok(k) => fault_at = Some(k),
                    Err(_) => return usage(),
                }
                i += 2;
            }
            "--fault-kind" => {
                fault_kind = args[i + 1].clone();
                i += 2;
            }
            "--sweep" => {
                sweep = true;
                i += 1;
            }
            _ => return usage(),
        }
    }
    if let Some(k) = fault_at {
        let (Some(dir), None, None, None, false) =
            (&dir, &transcript, crash_at, crash_sweep, sweep)
        else {
            return usage();
        };
        let Some(kind) = FaultKind::parse(&fault_kind) else {
            eprintln!(
                "durability_bench: unknown --fault-kind {fault_kind} (expected one of: {})",
                FaultKind::ALL.map(|k| k.name()).join(", ")
            );
            return usage();
        };
        return run_fault_mode(Path::new(dir), k, kind);
    }
    match (dir, transcript, crash_at, crash_sweep, sweep) {
        (Some(dir), Some(path), None, None, false) => run_transcript(Path::new(&dir), &path, None),
        (Some(dir), None, Some(k), None, false) => run_transcript(Path::new(&dir), "", Some(k)),
        (Some(dir), None, None, Some(budget), false) => run_crash_sweep(Path::new(&dir), budget),
        (None, None, None, None, true) => {
            let out = out.unwrap_or_else(|| format!("BENCH_{pr}.json"));
            run_sweep_report(&pr, &out)
        }
        (None, None, None, None, false) => {
            let out = out.unwrap_or_else(|| format!("BENCH_{pr}.json"));
            run_report(&pr, &out)
        }
        _ => usage(),
    }
}
