//! Emits (or validates) the machine-readable perf report `BENCH_<pr>.json`.
//!
//! Usage:
//!
//! ```text
//! perf_report --label after [--pr pr3] [--out BENCH_pr3.json]
//! perf_report --validate BENCH_pr3.json
//! ```
//!
//! `--label before|after` runs the benchmark set from
//! [`nemo_bench::perf`] and merges the medians into the output file under
//! that label, recomputing `speedup` wherever both labels exist.
//! `NEMO_SMALL=1` switches to the seconds-scale smoke sizes used by CI.

use nemo_bench::perf::{self, PerfConfig};
use netgraph::json::JsonValue;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: perf_report --label before|after [--pr <tag>] [--out <file>]\n\
         \u{20}      perf_report --validate <file>"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut label: Option<String> = None;
    let mut pr = "pr3".to_string();
    let mut out: Option<String> = None;
    let mut validate: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--label" | "--pr" | "--out" | "--validate" if i + 1 >= args.len() => {
                return usage();
            }
            "--label" => {
                label = Some(args[i + 1].clone());
                i += 2;
            }
            "--pr" => {
                pr = args[i + 1].clone();
                i += 2;
            }
            "--out" => {
                out = Some(args[i + 1].clone());
                i += 2;
            }
            "--validate" => {
                validate = Some(args[i + 1].clone());
                i += 2;
            }
            _ => return usage(),
        }
    }

    if let Some(path) = validate {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("perf_report: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let doc = match JsonValue::parse(&text) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("perf_report: {path} is not valid JSON: {e}");
                return ExitCode::FAILURE;
            }
        };
        let problems = perf::validate_report(&doc);
        if problems.is_empty() {
            println!("{path}: valid {}", perf::SCHEMA);
            return ExitCode::SUCCESS;
        }
        for p in &problems {
            eprintln!("perf_report: {path}: {p}");
        }
        return ExitCode::FAILURE;
    }

    let label = match label.as_deref() {
        Some("before") => "before",
        Some("after") => "after",
        _ => return usage(),
    };
    let out = out.unwrap_or_else(|| format!("BENCH_{pr}.json"));

    let config = PerfConfig::from_env();
    let measurements = perf::run_benchmarks(&config);
    for m in &measurements {
        println!(
            "{:<24} median {:>10.3} ms  ({} rounds)",
            m.name,
            m.median(),
            m.samples.len()
        );
    }

    let existing = std::fs::read_to_string(&out)
        .ok()
        .and_then(|text| JsonValue::parse(&text).ok());
    let report = perf::merge_report(existing.as_ref(), &pr, label, &measurements);
    let problems = perf::validate_report(&report);
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("perf_report: generated report invalid: {p}");
        }
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out, report.to_json() + "\n") {
        eprintln!("perf_report: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out} ({label})");
    ExitCode::SUCCESS
}
