//! Regenerates Table 5: error-type summary of failed NetworkX programs.

fn main() {
    let suite = bench::build_suite();
    let logger = bench::run_full(&suite);
    println!("{}", nemo_bench::report::format_table5(&suite, &logger));
}
