//! Regenerates Table 5: error-type summary of failed NetworkX programs.
//!
//! Parallelism: set `NEMO_THREADS=N` to pin the worker-thread count
//! (default: available parallelism); output is identical at any setting.

fn main() {
    let suite = bench::build_suite();
    let logger = bench::run_full(&suite);
    println!("{}", nemo_bench::report::format_table5(&suite, &logger));
}
