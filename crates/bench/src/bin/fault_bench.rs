//! Fault-injection benchmark: what the PR 8 `Vfs` seam costs on the hot
//! append path, and what degraded read-only mode preserves when the write
//! path is poisoned.
//!
//! Usage:
//!
//! ```text
//! fault_bench [--pr pr8] [--out BENCH_pr8.json]
//! ```
//!
//! Records, into the `nemo-perf-report/v1` schema:
//!
//! * `vfs_logged_append_mps` — appends per second, no fsync: `before` is
//!   the raw-filesystem floor (the same framed bytes written straight to
//!   one file with `std::fs`), `after` is the full `Store::append` path
//!   through the `Arc<dyn Vfs>` indirection (`RealFs`) — checksumming,
//!   rotation bookkeeping and the dynamic dispatch included. The ratio is
//!   the whole durability layer's overhead; the seam itself must not move
//!   it measurably from pre-Vfs PRs.
//! * `group_commit_append_ms` — amortized wall milliseconds per
//!   acked-durable append at 8 concurrent appenders, `before` a
//!   mutex-serialized store with `fsync: EveryRecord`, `after` the
//!   [`GroupCommitter`] — the same comparison `BENCH_pr6.json` records,
//!   now with every filesystem call routed through the `Vfs` seam.
//! * `degraded_read_qps` — cached-query answering throughput of a
//!   persistent server, `before` healthy, `after` with its write path
//!   poisoned by an injected commit-fsync failure (degraded read-only
//!   mode). Reads must stay available: the ratio is the availability
//!   cost of degradation, expected ~1.

use nemo_bench::perf::{self, Measurement};
use nemo_core::llm::profiles;
use nemo_core::{Backend, SimulatedLlm};
use nemo_obs::trace::Tracer;
use nemo_obs::Registry;
use nemo_serve::driver::{self, DriveConfig};
use nemo_serve::persist::{FsyncPolicy, PersistOptions};
use nemo_serve::{LiveNetwork, Request, ServeEvent, Server, ServerBuilder, Session};
use nemo_store::{FaultFs, FaultKind, GroupCommitter, RealFs, Store, StoreConfig, Vfs};
use netgraph::json::JsonValue;
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use trafficgen::{evolve, generate, StreamConfig};

fn usage() -> ExitCode {
    eprintln!("usage: fault_bench [--pr <tag>] [--out <file>]");
    ExitCode::FAILURE
}

const APPENDERS: usize = 8;

struct BenchSizes {
    /// Appends in the single-threaded Vfs-overhead runs.
    appends: usize,
    /// Appends in the concurrent group-commit runs.
    group_appends: usize,
    /// Timed query rounds in the degraded-read runs.
    query_rounds: usize,
}

impl BenchSizes {
    fn from_env() -> Self {
        if std::env::var("NEMO_SMALL").is_ok() {
            BenchSizes {
                appends: 2_000,
                group_appends: 400,
                query_rounds: 3,
            }
        } else {
            BenchSizes {
                appends: 20_000,
                group_appends: 4_000,
                query_rounds: 6,
            }
        }
    }
}

fn store_config(fsync: FsyncPolicy) -> StoreConfig {
    StoreConfig {
        magic: "nemo-fault-bench/v1".to_string(),
        fsync,
        segment_max_bytes: 256 << 10,
        snapshot_every_bytes: 0,
        snapshot_every_epochs: 0,
        keep_snapshots: 1,
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nemo-fault-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A WAL-record-sized payload, distinct per epoch.
fn payload(epoch: u64) -> Vec<u8> {
    format!(
        "{{\"schema\":\"nemo-fault-bench/v1\",\"epoch\":{epoch},\"mutation\":\
         \"set-flow 10.0.0.1->10.0.0.2 bytes={}\"}}",
        epoch * 131
    )
    .into_bytes()
}

/// `before`: the raw-filesystem floor — the same length-prefixed frames
/// appended to one plain file, no checksums, no rotation, no dispatch.
fn raw_append_mps(appends: usize) -> f64 {
    let dir = scratch_dir("raw");
    std::fs::create_dir_all(&dir).expect("create raw bench dir");
    let mut file = std::fs::File::create(dir.join("floor.log")).expect("create raw bench file");
    let start = Instant::now();
    for epoch in 1..=appends as u64 {
        let payload = payload(epoch);
        file.write_all(&(payload.len() as u32).to_le_bytes())
            .and_then(|()| file.write_all(&payload))
            .expect("raw append succeeds");
    }
    let elapsed = start.elapsed().as_secs_f64();
    drop(file);
    let _ = std::fs::remove_dir_all(&dir);
    appends as f64 / elapsed
}

/// `after`: the same appends through `Store::append` with every
/// filesystem call behind `Arc<dyn Vfs>` (`RealFs`).
fn vfs_append_mps(appends: usize) -> f64 {
    let dir = scratch_dir("vfs");
    let (mut store, _) = Store::open_with(
        &dir,
        store_config(FsyncPolicy::Never),
        Arc::new(RealFs) as Arc<dyn Vfs>,
    )
    .expect("fresh vfs bench store");
    let start = Instant::now();
    for epoch in 1..=appends as u64 {
        store
            .append(epoch, &payload(epoch))
            .expect("vfs append succeeds");
    }
    let elapsed = start.elapsed().as_secs_f64();
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    appends as f64 / elapsed
}

/// `before` for group commit: appenders serialized on one mutex, the
/// store fsyncing every record inside the lock — through the Vfs seam.
fn mutex_every_record_mps(appends: usize) -> f64 {
    let dir = scratch_dir("mutex");
    let (store, _) = Store::open_with(
        &dir,
        store_config(FsyncPolicy::EveryRecord),
        Arc::new(RealFs) as Arc<dyn Vfs>,
    )
    .expect("fresh bench store");
    let store = Mutex::new(store);
    let issued = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..APPENDERS {
            scope.spawn(|| loop {
                let n = issued.fetch_add(1, Ordering::SeqCst);
                if n >= appends as u64 {
                    return;
                }
                let mut store = store.lock().expect("bench store lock");
                let epoch = store.last_epoch().map_or(1, |last| last + 1);
                store
                    .append(epoch, &payload(epoch))
                    .expect("bench append succeeds");
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&dir);
    appends as f64 / elapsed
}

/// `after` for group commit: the same concurrency through the
/// [`GroupCommitter`], still through the Vfs seam.
fn group_commit_mps(appends: usize) -> f64 {
    let dir = scratch_dir("group");
    let (store, _) = Store::open_with(
        &dir,
        store_config(FsyncPolicy::GroupCommit {
            max_batch: 64,
            max_wait_micros: 100,
        }),
        Arc::new(RealFs) as Arc<dyn Vfs>,
    )
    .expect("fresh bench store");
    let committer = GroupCommitter::new(store).expect("group-commit policy");
    let issued = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..APPENDERS {
            scope.spawn(|| loop {
                let n = issued.fetch_add(1, Ordering::SeqCst);
                if n >= appends as u64 {
                    return;
                }
                let epoch = committer.append(&payload(n + 1)).expect("acked append");
                assert!(
                    committer.last_synced() >= epoch,
                    "append acked before its epoch was durable"
                );
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&dir);
    appends as f64 / elapsed
}

/// Builds a persistent single-shard server over `vfs` recording into
/// `registry` and applies the stream's first event (so both the healthy
/// and the degraded server answer at epoch 1).
fn persistent_server(
    config: &DriveConfig,
    vfs: Arc<dyn Vfs>,
    root: &std::path::Path,
    registry: &Registry,
    tracer: &Tracer,
) -> Server<SimulatedLlm> {
    let workload = generate(&config.traffic);
    let live = LiveNetwork::from_workload(&workload);
    let sessions = Backend::CODEGEN
        .iter()
        .enumerate()
        .map(|(i, &backend)| Session {
            client: i,
            backend,
            llm: SimulatedLlm::new(
                profiles::gpt4(),
                driver::serving_knowledge(),
                config.seed ^ i as u64,
            ),
        })
        .collect();
    let mut server = ServerBuilder::new()
        .options(PersistOptions {
            fsync: FsyncPolicy::EveryRecord,
            registry: registry.clone(),
            tracer: tracer.clone(),
            ..PersistOptions::default()
        })
        .vfs(vfs)
        .persist_at(root)
        .build(live, sessions)
        .expect("fresh persistent build");
    let workload = generate(&config.traffic);
    let stream = evolve(
        &workload,
        &StreamConfig {
            events: 2,
            seed: config.seed,
        },
    );
    server
        .apply_mutation(&stream[0])
        .expect("first mutation applies");
    server
}

/// One warmed, timed query sweep: every session answers every query.
fn query_round(server: &mut Server<SimulatedLlm>, queries: &[String]) -> Vec<f64> {
    let mut samples = Vec::with_capacity(queries.len() * Backend::CODEGEN.len());
    for client in 0..Backend::CODEGEN.len() {
        for query in queries {
            samples.push(server.handle_query(client, query).latency_ms);
        }
    }
    samples
}

fn qps(samples: &[f64]) -> f64 {
    let total_ms: f64 = samples.iter().sum();
    if total_ms <= 0.0 {
        0.0
    } else {
        samples.len() as f64 * 1e3 / total_ms
    }
}

/// Measures cached-read throughput of a healthy server and of the same
/// server with its write path poisoned mid-stream (degraded mode).
/// Returns `(healthy_qps, degraded_qps)` plus the degraded run's registry
/// and tracer — the snapshot (surfaced fault, poison event, degraded
/// transition) and the flight-recorder traces (the poisoning request's
/// error-tagged fsync span among them) are dumped next to the report.
fn degraded_read_qps(rounds: usize) -> (f64, f64, Registry, Tracer) {
    let config = DriveConfig::from_env();
    let queries: Vec<String> = nemo_bench::traffic_queries()
        .into_iter()
        .take(8)
        .map(|spec| spec.text.to_string())
        .collect();
    let workload = generate(&config.traffic);
    let stream = evolve(
        &workload,
        &StreamConfig {
            events: 2,
            seed: config.seed,
        },
    );

    // Healthy baseline.
    let dir = scratch_dir("healthy");
    let mut healthy = persistent_server(
        &config,
        Arc::new(RealFs),
        &dir,
        &Registry::new(),
        &Tracer::new(),
    );
    let _ = query_round(&mut healthy, &queries); // warm the caches
    let mut samples = Vec::new();
    for _ in 0..rounds {
        samples.extend(query_round(&mut healthy, &queries));
    }
    let healthy_qps = qps(&samples);
    drop(healthy);
    let _ = std::fs::remove_dir_all(&dir);

    // Calibrate the op index of the second record's commit fsync, then
    // rerun with that fsync failing: the store poisons, the server enters
    // degraded read-only mode, and the query loop keeps running.
    let dir = scratch_dir("degraded-calibrate");
    let calibrate = Arc::new(FaultFs::new(FaultKind::FailedFsync, u64::MAX));
    let server = persistent_server(
        &config,
        calibrate.clone(),
        &dir,
        &Registry::new(),
        &Tracer::new(),
    );
    let cut = calibrate.ops();
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);

    let dir = scratch_dir("degraded");
    let fault = Arc::new(FaultFs::new(FaultKind::FailedFsync, cut));
    let registry = Registry::new();
    let tracer = Tracer::new();
    tracer.enable(64);
    let mut degraded = persistent_server(&config, fault.clone(), &dir, &registry, &tracer);
    // The poisoning mutation goes through the typed request path so the
    // flight recorder mints a trace for it: the failed commit fsync shows
    // up as an error-tagged `store.fsync` span inside that trace.
    degraded
        .handle(&Request::from_event(&ServeEvent::Mutate(stream[1].clone())))
        .expect_err("the armed commit fsync must fail");
    assert!(
        degraded.degraded().is_some(),
        "poisoned write path must flip the server into degraded mode \
         (injected: {:?})",
        fault.injection()
    );
    let _ = query_round(&mut degraded, &queries); // warm the caches
    let mut samples = Vec::new();
    for _ in 0..rounds {
        samples.extend(query_round(&mut degraded, &queries));
    }
    let degraded_qps = qps(&samples);
    drop(degraded);
    let _ = std::fs::remove_dir_all(&dir);

    (healthy_qps, degraded_qps, registry, tracer)
}

/// Patches the auto-filled `ms` unit on non-latency entries.
fn set_unit(report: &mut JsonValue, name: &str, unit: &str) {
    if let JsonValue::Object(root) = report {
        if let Some(JsonValue::Array(entries)) = root.get_mut("entries") {
            for entry in entries {
                if let JsonValue::Object(obj) = entry {
                    if obj.get("name") == Some(&JsonValue::String(name.to_string())) {
                        obj.insert("unit".to_string(), JsonValue::String(unit.to_string()));
                    }
                }
            }
        }
    }
}

fn run_report(pr: &str, out: &str) -> ExitCode {
    let sizes = BenchSizes::from_env();

    eprintln!(
        "[fault] vfs overhead: {} appends, fsync never...",
        sizes.appends
    );
    let raw_mps = raw_append_mps(sizes.appends);
    let vfs_mps = vfs_append_mps(sizes.appends);
    println!("append raw std::fs floor:     {raw_mps:>11.1} appends/s");
    println!("append Store via dyn Vfs:     {vfs_mps:>11.1} appends/s");

    eprintln!(
        "[fault] group commit through the seam: {} appends x {APPENDERS} appenders...",
        sizes.group_appends
    );
    let mutex_mps = mutex_every_record_mps(sizes.group_appends);
    let group_mps = group_commit_mps(sizes.group_appends);
    println!("append fsync=record (mutex):  {mutex_mps:>11.1} appends/s");
    println!("append group commit:          {group_mps:>11.1} appends/s");

    eprintln!("[fault] degraded-mode read availability...");
    let (healthy_qps, degraded_qps, registry, tracer) = degraded_read_qps(sizes.query_rounds);
    println!("cached reads, healthy:        {healthy_qps:>11.1} q/s");
    println!("cached reads, degraded:       {degraded_qps:>11.1} q/s");

    // Latency entry gets a before/after pair (speedup = before/after is
    // meaningful for ms); throughput entries are after-only with their
    // baselines as sibling entries, the BENCH_pr6.json idiom — a
    // before/after speedup on a higher-is-better unit would read inverted.
    let before = [Measurement {
        name: "group_commit_append_ms".to_string(),
        samples: vec![1e3 / mutex_mps],
    }];
    let after = [
        Measurement {
            name: "group_commit_append_ms".to_string(),
            samples: vec![1e3 / group_mps],
        },
        Measurement {
            name: "raw_fs_append_floor_mps".to_string(),
            samples: vec![raw_mps],
        },
        Measurement {
            name: "vfs_logged_append_mps".to_string(),
            samples: vec![vfs_mps],
        },
        Measurement {
            name: "healthy_read_qps".to_string(),
            samples: vec![healthy_qps],
        },
        Measurement {
            name: "degraded_read_qps".to_string(),
            samples: vec![degraded_qps],
        },
    ];

    let existing = std::fs::read_to_string(out)
        .ok()
        .and_then(|text| JsonValue::parse(&text).ok());
    let report = perf::merge_report(existing.as_ref(), pr, "before", &before);
    let mut report = perf::merge_report(Some(&report), pr, "after", &after);
    set_unit(&mut report, "raw_fs_append_floor_mps", "mps");
    set_unit(&mut report, "vfs_logged_append_mps", "mps");
    set_unit(&mut report, "healthy_read_qps", "qps");
    set_unit(&mut report, "degraded_read_qps", "qps");
    let problems = perf::validate_report(&report);
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("fault_bench: generated report invalid: {p}");
        }
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(out, report.to_json() + "\n") {
        eprintln!("fault_bench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    // The degraded run's metrics (the surfaced fault, the poison event,
    // the degraded transition) ride along as a sibling artifact.
    let metrics_path = format!("{out}.metrics.json");
    if let Err(e) = std::fs::write(&metrics_path, registry.snapshot().to_json() + "\n") {
        eprintln!("fault_bench: cannot write {metrics_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {metrics_path}");
    // So do its traces: the degraded run's flight recorder holds the
    // poisoning request with an error-tagged fsync span.
    let traces_text = tracer.to_doc(0);
    let traces_doc = match JsonValue::parse(&traces_text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("fault_bench: trace document is not valid JSON: {e:?}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = nemo_serve::validate_trace_doc(&traces_doc) {
        eprintln!("fault_bench: trace document invalid: {e}");
        return ExitCode::FAILURE;
    }
    if !traces_text.contains("\"error\":") {
        eprintln!("fault_bench: degraded-run traces carry no error-tagged span");
        return ExitCode::FAILURE;
    }
    let traces_path = format!("{out}.traces.json");
    if let Err(e) = std::fs::write(&traces_path, traces_text + "\n") {
        eprintln!("fault_bench: cannot write {traces_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {traces_path}");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut pr = "pr8".to_string();
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--pr" | "--out" if i + 1 >= args.len() => return usage(),
            "--pr" => {
                pr = args[i + 1].clone();
                i += 2;
            }
            "--out" => {
                out = Some(args[i + 1].clone());
                i += 2;
            }
            _ => return usage(),
        }
    }
    let out = out.unwrap_or_else(|| format!("BENCH_{pr}.json"));
    run_report(&pr, &out)
}
