//! The end-to-end pipeline of the paper's Figure 2: application wrapper →
//! prompt generators → LLM → execution sandbox → evaluator, plus the two
//! complementary program-synthesis techniques studied in Table 6 (pass@k and
//! self-debug).

use crate::apps::ApplicationWrapper;
use crate::backend::Backend;
use crate::cost::{count_tokens, price_request, CostRecord};
use crate::evaluator::{evaluate, Verdict};
use crate::llm::{extract_code, FaultKind, Llm, LlmResponse};
use crate::prompt::{codegen_prompt, self_debug_prompt, strawman_prompt, Prompt};
use crate::sandbox::execute_response;
use crate::state::{NetworkState, Outcome};

/// Everything recorded about one LLM attempt at one query (the "Results
/// Logger" rows of Figure 3).
///
/// `PartialEq` compares every field exactly (verdicts, responses, token
/// counts, dollar costs) — the determinism regression tests use it to
/// assert that parallel and sequential runs produce identical logs.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// The model name.
    pub model: String,
    /// The backend used.
    pub backend: Backend,
    /// The operator query.
    pub query: String,
    /// The extracted program (None for the strawman or a reply with no code).
    pub code: Option<String>,
    /// The raw LLM reply.
    pub response: String,
    /// The evaluator's judgement.
    pub verdict: Verdict,
    /// Token and dollar accounting for the request.
    pub cost: CostRecord,
}

impl RunRecord {
    /// True when the attempt passed.
    pub fn passed(&self) -> bool {
        self.verdict.passed()
    }
}

/// The natural-language network-management pipeline bound to one
/// application and one model.
///
/// The manager is generic over how it holds its model: pass an owned
/// [`Llm`] (the parallel benchmark runner gives each worker cell its own
/// simulated model) or a `&mut` borrow (unit tests that inspect the model
/// afterwards) — both work because `&mut L` is itself an [`Llm`].
pub struct NetworkManager<'a, L: Llm> {
    app: &'a dyn ApplicationWrapper,
    llm: L,
}

impl<'a, L: Llm> NetworkManager<'a, L> {
    /// Creates a pipeline for an application and a model.
    pub fn new(app: &'a dyn ApplicationWrapper, llm: L) -> Self {
        NetworkManager { app, llm }
    }

    /// Consumes the pipeline and returns its model.
    pub fn into_llm(self) -> L {
        self.llm
    }

    /// Builds the prompt for a query under a backend.
    pub fn build_prompt(&self, backend: Backend, query: &str) -> Prompt {
        match backend {
            Backend::Strawman => strawman_prompt(self.app, query),
            _ => codegen_prompt(self.app, backend, query),
        }
    }

    /// Runs one query end to end: prompt → LLM → sandbox → evaluator.
    ///
    /// `golden` is the outcome of the human-curated golden program for this
    /// query and backend (the benchmark's golden-answer selector provides
    /// it).
    pub fn run_query(&mut self, backend: Backend, query: &str, golden: &Outcome) -> RunRecord {
        let prompt = self.build_prompt(backend, query);
        self.run_prompt(&prompt, golden)
    }

    /// Runs one already-built prompt end to end.
    pub fn run_prompt(&mut self, prompt: &Prompt, golden: &Outcome) -> RunRecord {
        let window = self.llm.token_window();
        // A prompt that exceeds the model's context window is rejected by
        // the API; the paper counts those as failures (the strawman hits
        // this at ≈150 nodes+edges).
        if count_tokens(&prompt.text) > window {
            return RunRecord {
                model: self.llm.name().to_string(),
                backend: prompt.backend,
                query: prompt.query.clone(),
                code: None,
                response: String::new(),
                verdict: Verdict::Fail {
                    category: FaultKind::OperationError,
                    detail: format!(
                        "prompt of {} tokens exceeds the model's {window}-token window",
                        count_tokens(&prompt.text)
                    ),
                },
                cost: price_request(&self.llm.prices(), window, &prompt.text, ""),
            };
        }

        let response = self.llm.complete(&prompt.text);
        let cost = price_request(&self.llm.prices(), window, &prompt.text, &response.text);
        let state = self.app.initial_state(prompt.backend);
        let execution = execute_response(prompt.backend, &response, &state);
        let verdict = evaluate(&execution, golden);
        RunRecord {
            model: self.llm.name().to_string(),
            backend: prompt.backend,
            query: prompt.query.clone(),
            code: extract_code(&response.text),
            response: response.text,
            verdict,
            cost,
        }
    }

    /// The serving path: prompt → LLM → sandbox against a caller-provided
    /// state, with **no** golden outcome and no evaluation.
    ///
    /// Benchmark runs know the right answer up front; a serving layer does
    /// not — it executes whatever the model wrote against the *current*
    /// network state and returns the outcome as the reply. The state is
    /// passed in (rather than taken from the application wrapper) because a
    /// live network mutates between requests, and the session holding this
    /// manager outlives any single state snapshot.
    ///
    /// Returns the raw model response together with the sandbox result; an
    /// `Err` carries a rendered reason (over-window prompt, missing code
    /// block, program failure) suitable for a serving transcript.
    pub fn serve_prompt(
        &mut self,
        prompt: &Prompt,
        state: &NetworkState,
    ) -> (LlmResponse, std::result::Result<Outcome, String>) {
        let window = self.llm.token_window();
        if count_tokens(&prompt.text) > window {
            return (
                LlmResponse {
                    text: String::new(),
                },
                Err(format!(
                    "prompt of {} tokens exceeds the model's {window}-token window",
                    count_tokens(&prompt.text)
                )),
            );
        }
        let response = self.llm.complete(&prompt.text);
        let outcome = execute_response(prompt.backend, &response, state).map_err(|e| e.to_string());
        (response, outcome)
    }

    /// The pass@k technique (Table 6): query the model `k` times and succeed
    /// if any attempt passes. Returns every attempt; the first element of
    /// the tuple says whether any attempt passed.
    pub fn run_pass_at_k(
        &mut self,
        backend: Backend,
        query: &str,
        golden: &Outcome,
        k: usize,
    ) -> (bool, Vec<RunRecord>) {
        let mut attempts = Vec::with_capacity(k);
        let mut any_pass = false;
        for _ in 0..k.max(1) {
            let record = self.run_query(backend, query, golden);
            any_pass |= record.passed();
            attempts.push(record);
            if any_pass {
                break;
            }
        }
        (any_pass, attempts)
    }

    /// The self-debug technique (Table 6): run once and, on failure, feed
    /// the error message back to the model for up to `rounds` repair
    /// attempts. Returns every attempt; the first element says whether the
    /// final attempt passed.
    pub fn run_self_debug(
        &mut self,
        backend: Backend,
        query: &str,
        golden: &Outcome,
        rounds: usize,
    ) -> (bool, Vec<RunRecord>) {
        let base_prompt = self.build_prompt(backend, query);
        let mut attempts = vec![self.run_prompt(&base_prompt, golden)];
        for _ in 0..rounds {
            let last = attempts.last().expect("at least one attempt");
            if last.passed() {
                break;
            }
            let error = last
                .verdict
                .detail()
                .unwrap_or("the previous attempt failed")
                .to_string();
            let previous_code = last.code.clone().unwrap_or_default();
            let debug_prompt = self_debug_prompt(&base_prompt, &previous_code, &error);
            attempts.push(self.run_prompt(&debug_prompt, golden));
        }
        let passed = attempts.last().map(RunRecord::passed).unwrap_or(false);
        (passed, attempts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::TrafficApp;
    use crate::llm::ScriptedLlm;
    use crate::sandbox::execute_code;
    use trafficgen::TrafficConfig;

    fn app() -> TrafficApp {
        TrafficApp::new(trafficgen::generate(&TrafficConfig {
            nodes: 12,
            edges: 16,
            prefixes: 2,
            seed: 3,
        }))
    }

    fn golden_for(app: &TrafficApp, backend: Backend, program: &str) -> Outcome {
        execute_code(backend, program, &app.initial_state(backend)).unwrap()
    }

    #[test]
    fn run_query_pass_and_fail() {
        let app = app();
        let golden = golden_for(&app, Backend::NetworkX, "result = G.number_of_nodes()");
        let mut good = ScriptedLlm::new(
            "good",
            vec!["```graphscript\nresult = G.number_of_nodes()\n```".to_string()],
        );
        let record = NetworkManager::new(&app, &mut good).run_query(
            Backend::NetworkX,
            "How many nodes?",
            &golden,
        );
        assert!(record.passed());
        assert!(record.cost.dollars > 0.0);
        assert_eq!(record.code.as_deref(), Some("result = G.number_of_nodes()"));

        let mut bad = ScriptedLlm::new(
            "bad",
            vec!["```graphscript\nresult = G.number_of_nodes() * 2\n```".to_string()],
        );
        let record = NetworkManager::new(&app, &mut bad).run_query(
            Backend::NetworkX,
            "How many nodes?",
            &golden,
        );
        assert!(!record.passed());
        assert_eq!(record.verdict.category(), Some(FaultKind::WrongCalculation));
    }

    #[test]
    fn pass_at_k_stops_on_first_success() {
        let app = app();
        let golden = golden_for(&app, Backend::NetworkX, "result = G.number_of_nodes()");
        let mut flaky = ScriptedLlm::new(
            "flaky",
            vec![
                "```graphscript\nresult = G.frobnicate()\n```".to_string(),
                "```graphscript\nresult = G.number_of_nodes()\n```".to_string(),
            ],
        );
        let mut manager = NetworkManager::new(&app, &mut flaky);
        let (passed, attempts) =
            manager.run_pass_at_k(Backend::NetworkX, "How many nodes?", &golden, 5);
        assert!(passed);
        assert_eq!(attempts.len(), 2);
        assert!(!attempts[0].passed());
        assert!(attempts[1].passed());
    }

    #[test]
    fn self_debug_feeds_the_error_back() {
        let app = app();
        let golden = golden_for(&app, Backend::NetworkX, "result = G.number_of_nodes()");
        let llm = ScriptedLlm::new(
            "debuggable",
            vec![
                "```graphscript\nresult = G.get_node_attr(\"zzz\", \"missing\")\n```".to_string(),
                "```graphscript\nresult = G.number_of_nodes()\n```".to_string(),
            ],
        );
        // The manager owns its model here (the parallel runner's layout);
        // into_llm recovers it afterwards for transcript inspection.
        let mut manager = NetworkManager::new(&app, llm);
        let (passed, attempts) =
            manager.run_self_debug(Backend::NetworkX, "How many nodes?", &golden, 2);
        let llm = manager.into_llm();
        assert!(passed);
        assert_eq!(attempts.len(), 2);
        // The second prompt carried the feedback section and the failing code.
        assert!(llm.prompts_seen[1].contains("Previous attempt failed"));
        assert!(llm.prompts_seen[1].contains("get_node_attr"));
    }

    #[test]
    fn serve_prompt_executes_against_the_provided_state() {
        let app = app();
        let mut llm = ScriptedLlm::new(
            "server",
            vec![
                "```graphscript\nresult = G.number_of_nodes()\n```".to_string(),
                "no code at all".to_string(),
            ],
        );
        let mut manager = NetworkManager::new(&app, &mut llm);
        let prompt = manager.build_prompt(Backend::NetworkX, "How many nodes?");
        // The caller controls the state: hand in a smaller graph than the
        // app's own and the program answers over that graph.
        let small = execute_code(
            Backend::NetworkX,
            "G.remove_node(G.nodes()[0])\nresult = 0",
            &app.initial_state(Backend::NetworkX),
        )
        .unwrap()
        .state;
        let (response, outcome) = manager.serve_prompt(&prompt, &small);
        assert!(response.text.contains("number_of_nodes"));
        let outcome = outcome.unwrap();
        assert!(outcome.value.approx_eq(&crate::state::OutputValue::Script(
            crate::state::ScriptValue::Int(11)
        )));
        // A reply without code is a rendered serving error, not a panic.
        let (_, bad) = manager.serve_prompt(&prompt, &small);
        assert!(bad.unwrap_err().contains("no code block"));
    }

    #[test]
    fn oversized_prompts_are_rejected_before_calling_the_model() {
        let big_app = TrafficApp::new(trafficgen::generate(&TrafficConfig {
            nodes: 400,
            edges: 400,
            prefixes: 4,
            seed: 1,
        }));
        let golden = golden_for(&big_app, Backend::NetworkX, "result = G.number_of_nodes()");
        let mut llm = ScriptedLlm::new("small-window", vec!["42".to_string()]);
        let record = NetworkManager::new(&big_app, &mut llm).run_query(
            Backend::Strawman,
            "How many nodes?",
            &golden,
        );
        assert!(!record.passed());
        assert!(record.cost.exceeded_window);
        assert!(record.verdict.detail().unwrap().contains("token window"));
        // The model was never called.
        assert!(llm.prompts_seen.is_empty());
    }

    #[test]
    fn strawman_text_answers_are_compared_against_golden_value() {
        let app = app();
        let golden = golden_for(&app, Backend::NetworkX, "result = G.number_of_nodes()");
        let n = match &golden.value {
            crate::state::OutputValue::Script(v) => v.to_string(),
            _ => unreachable!(),
        };
        let mut llm = ScriptedLlm::new("direct", vec![n.clone()]);
        let record = NetworkManager::new(&app, &mut llm).run_query(
            Backend::Strawman,
            "How many nodes?",
            &golden,
        );
        assert!(record.passed(), "direct answer {n} should match");
    }
}
