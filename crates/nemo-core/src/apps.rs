//! Application wrappers (component 1 of the paper's Figure 2).
//!
//! An application wrapper owns the raw network data, knows how to describe
//! the application and its graph schema in natural language (that text goes
//! into the prompt), and materializes the network in whichever backend
//! representation a run needs.

use crate::backend::{Application, Backend};
use crate::state::NetworkState;
use malt::MaltModel;
use netgraph::json::graph_to_json;
use trafficgen::TrafficWorkload;

/// The interface the framework uses to talk to an application.
///
/// Wrappers are shared by reference across benchmark worker threads (each
/// thread materializes its own backend states from the wrapper's immutable
/// network data), hence the `Send + Sync` bound.
pub trait ApplicationWrapper: Send + Sync {
    /// Which benchmark application this is.
    fn application(&self) -> Application;

    /// Natural-language description of the application and of the network's
    /// schema (node/edge kinds and attributes). Used by the application
    /// prompt generator.
    fn describe(&self) -> String;

    /// The network materialized in the given backend's representation.
    /// The strawman backend uses the graph representation.
    fn initial_state(&self, backend: Backend) -> NetworkState;

    /// The raw network data serialized as JSON (node-link format); this is
    /// what the strawman baseline pastes into its prompt.
    fn raw_json(&self) -> String;
}

/// The network traffic-analysis application over a synthetic communication
/// graph.
#[derive(Debug, Clone)]
pub struct TrafficApp {
    workload: TrafficWorkload,
}

impl TrafficApp {
    /// Wraps a generated workload.
    pub fn new(workload: TrafficWorkload) -> Self {
        TrafficApp { workload }
    }

    /// The underlying workload.
    pub fn workload(&self) -> &TrafficWorkload {
        &self.workload
    }
}

impl ApplicationWrapper for TrafficApp {
    fn application(&self) -> Application {
        Application::TrafficAnalysis
    }

    fn describe(&self) -> String {
        format!(
            "Application: network traffic analysis over a communication graph.\n\
             Nodes are network endpoints identified by their IPv4 address (string id); each node \
             carries 'prefix16' and 'prefix24' attributes with its /16 and /24 address prefixes.\n\
             Directed edges represent observed communication; each edge carries integer 'bytes', \
             'connections' and 'packets' attributes.\n\
             The graph has {} nodes and {} edges.",
            self.workload.endpoints.len(),
            self.workload.flows.len()
        )
    }

    fn initial_state(&self, backend: Backend) -> NetworkState {
        match backend {
            Backend::Strawman | Backend::NetworkX => {
                NetworkState::Graph(trafficgen::export::to_graph(&self.workload))
            }
            Backend::Pandas => {
                let (nodes, edges) = trafficgen::export::to_frames(&self.workload);
                NetworkState::Frames { nodes, edges }
            }
            Backend::Sql => NetworkState::Database(trafficgen::export::to_database(&self.workload)),
        }
    }

    fn raw_json(&self) -> String {
        graph_to_json(&trafficgen::export::to_graph(&self.workload)).to_json()
    }
}

/// The network lifecycle-management application over a MALT topology.
#[derive(Debug, Clone)]
pub struct MaltApp {
    model: MaltModel,
}

impl MaltApp {
    /// Wraps a MALT model.
    pub fn new(model: MaltModel) -> Self {
        MaltApp { model }
    }

    /// The underlying model.
    pub fn model(&self) -> &MaltModel {
        &self.model
    }
}

impl ApplicationWrapper for MaltApp {
    fn application(&self) -> Application {
        Application::MaltLifecycle
    }

    fn describe(&self) -> String {
        format!(
            "Application: network lifecycle management over a MALT (Multi-Abstraction-Layer \
             Topology) model.\n\
             Nodes are network entities identified by hierarchical names (e.g. 'ju1.a1.m1.s2c1'); \
             each node has a 'kind' attribute that is one of: datacenter, pod, rack, chassis, \
             packet_switch, port, control_point. Chassis and packet switches carry a \
             'capacity_gbps' attribute, ports carry 'speed_gbps', packet switches also carry \
             'role' and 'vendor'.\n\
             Directed edges carry a 'relationship' attribute that is one of: 'contains' (physical \
             containment, e.g. a chassis contains its packet switches, a packet switch contains \
             its ports), 'controls' (a control point controls packet switches), and \
             'connected_to' (a physical link between two ports).\n\
             The topology has {} entities and {} relationships.",
            self.model.entity_count(),
            self.model.relationship_count()
        )
    }

    fn initial_state(&self, backend: Backend) -> NetworkState {
        match backend {
            Backend::Strawman | Backend::NetworkX => {
                NetworkState::Graph(malt::export::to_graph(&self.model))
            }
            Backend::Pandas => {
                let (nodes, edges) = malt::export::to_frames(&self.model);
                NetworkState::Frames { nodes, edges }
            }
            Backend::Sql => NetworkState::Database(malt::export::to_database(&self.model)),
        }
    }

    fn raw_json(&self) -> String {
        graph_to_json(&malt::export::to_graph(&self.model)).to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malt::MaltConfig;
    use trafficgen::TrafficConfig;

    #[test]
    fn traffic_app_states_and_description() {
        let app = TrafficApp::new(trafficgen::generate(&TrafficConfig {
            nodes: 20,
            edges: 25,
            prefixes: 3,
            seed: 1,
        }));
        assert_eq!(app.application(), Application::TrafficAnalysis);
        assert!(app.describe().contains("20 nodes"));
        for backend in Backend::ALL {
            let state = app.initial_state(backend);
            match (backend, &state) {
                (Backend::Pandas, NetworkState::Frames { nodes, .. }) => {
                    assert_eq!(nodes.n_rows(), 20)
                }
                (Backend::Sql, NetworkState::Database(db)) => {
                    assert_eq!(db.table_names(), vec!["edges", "nodes"])
                }
                (_, NetworkState::Graph(g)) => assert_eq!(g.number_of_nodes(), 20),
                other => panic!("unexpected state {other:?}"),
            }
        }
        assert!(app.raw_json().contains("\"links\""));
    }

    #[test]
    fn malt_app_states_and_description() {
        let app = MaltApp::new(malt::generate(&MaltConfig::tiny()));
        assert_eq!(app.application(), Application::MaltLifecycle);
        assert!(app.describe().contains("packet_switch"));
        assert!(app.describe().contains("45 entities"));
        match app.initial_state(Backend::NetworkX) {
            NetworkState::Graph(g) => assert_eq!(g.number_of_nodes(), 45),
            other => panic!("unexpected {other:?}"),
        }
        match app.initial_state(Backend::Pandas) {
            NetworkState::Frames { nodes, .. } => assert_eq!(nodes.n_rows(), 45),
            other => panic!("unexpected {other:?}"),
        }
    }
}
