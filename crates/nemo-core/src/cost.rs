//! Token counting and dollar-cost accounting (Section 4.5 / Figure 4).
//!
//! The paper prices queries with Azure OpenAI GPT-4 list prices and shows
//! that the strawman baseline (whole graph pasted into the prompt) costs
//! roughly three times more than code generation at 80 nodes+edges, and
//! exceeds the model's token window at ≈150 nodes+edges, while the
//! code-generation prompt cost is flat in graph size.

/// An approximate tokenizer.
///
/// Real GPT tokenizers are byte-pair encoders; for cost accounting the
/// standard engineering approximation of ~4 characters per token (bounded
/// below by the word count) is accurate to within a few percent on JSON and
/// English prose, which is all the cost model needs.
pub fn count_tokens(text: &str) -> usize {
    let chars = text.chars().count();
    let words = text.split_whitespace().count();
    (chars / 4).max(words).max(usize::from(!text.is_empty()))
}

/// Per-1 000-token prices in dollars.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriceTable {
    /// Price per 1 000 prompt tokens.
    pub prompt_per_1k: f64,
    /// Price per 1 000 completion tokens.
    pub completion_per_1k: f64,
}

impl PriceTable {
    /// Azure OpenAI GPT-4 (8k context) list price at the time of the paper:
    /// $0.03 / 1k prompt tokens, $0.06 / 1k completion tokens.
    pub const GPT4: PriceTable = PriceTable {
        prompt_per_1k: 0.03,
        completion_per_1k: 0.06,
    };

    /// GPT-3.5-era completion pricing ($0.02 / 1k tokens both ways).
    pub const GPT3: PriceTable = PriceTable {
        prompt_per_1k: 0.02,
        completion_per_1k: 0.02,
    };

    /// The dollar cost of one request.
    pub fn cost(&self, prompt_tokens: usize, completion_tokens: usize) -> f64 {
        prompt_tokens as f64 / 1000.0 * self.prompt_per_1k
            + completion_tokens as f64 / 1000.0 * self.completion_per_1k
    }
}

/// The cost record of one LLM call.
#[derive(Debug, Clone, PartialEq)]
pub struct CostRecord {
    /// Tokens in the prompt.
    pub prompt_tokens: usize,
    /// Tokens in the completion.
    pub completion_tokens: usize,
    /// Dollar cost under the price table used.
    pub dollars: f64,
    /// True when the prompt exceeded the model's token window (the request
    /// would be rejected; the paper reports this for the strawman at ≈150
    /// nodes+edges).
    pub exceeded_window: bool,
}

/// Builds a cost record for one request against a model with the given
/// context window.
pub fn price_request(
    prices: &PriceTable,
    token_window: usize,
    prompt: &str,
    completion: &str,
) -> CostRecord {
    let prompt_tokens = count_tokens(prompt);
    let completion_tokens = count_tokens(completion);
    CostRecord {
        prompt_tokens,
        completion_tokens,
        dollars: prices.cost(prompt_tokens, completion_tokens),
        exceeded_window: prompt_tokens + completion_tokens > token_window,
    }
}

/// Summary statistics over a set of per-query costs (used for the CDF in
/// Figure 4a and the sweep in Figure 4b).
#[derive(Debug, Clone, PartialEq)]
pub struct CostSummary {
    /// Number of records.
    pub count: usize,
    /// Mean dollar cost.
    pub mean: f64,
    /// Maximum dollar cost.
    pub max: f64,
    /// Number of requests that exceeded the token window.
    pub over_window: usize,
}

/// Summarizes a set of cost records.
pub fn summarize_costs(records: &[CostRecord]) -> CostSummary {
    let count = records.len();
    let total: f64 = records.iter().map(|r| r.dollars).sum();
    CostSummary {
        count,
        mean: if count == 0 {
            0.0
        } else {
            total / count as f64
        },
        max: records.iter().map(|r| r.dollars).fold(0.0, f64::max),
        over_window: records.iter().filter(|r| r.exceeded_window).count(),
    }
}

/// Points of an empirical cost CDF: `(dollars, cumulative fraction)` pairs
/// sorted by cost.
pub type CostCdf = Vec<(f64, f64)>;

/// The points of an empirical CDF over per-query dollar costs, as plotted in
/// Figure 4a: sorted costs paired with cumulative probability.
pub fn cost_cdf(records: &[CostRecord]) -> CostCdf {
    let mut costs: Vec<f64> = records.iter().map(|r| r.dollars).collect();
    costs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = costs.len();
    costs
        .into_iter()
        .enumerate()
        .map(|(i, c)| (c, (i + 1) as f64 / n as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_counting_heuristics() {
        assert_eq!(count_tokens(""), 0);
        assert_eq!(count_tokens("word"), 1);
        assert!(count_tokens("a much longer sentence with several words") >= 7);
        // JSON-ish content: roughly chars / 4.
        let json = "{\"nodes\": [{\"id\": \"10.0.0.1\"}, {\"id\": \"10.0.0.2\"}]}";
        let t = count_tokens(json);
        assert!(t >= json.len() / 5 && t <= json.len() / 2, "unexpected {t}");
    }

    #[test]
    fn pricing_matches_list_prices() {
        let c = PriceTable::GPT4.cost(1000, 1000);
        assert!((c - 0.09).abs() < 1e-12);
        let record = price_request(&PriceTable::GPT4, 8192, &"x ".repeat(100), "short answer");
        assert!(!record.exceeded_window);
        assert!(record.dollars > 0.0);
    }

    #[test]
    fn window_overflow_detection() {
        let huge = "tok ".repeat(9000);
        let record = price_request(&PriceTable::GPT4, 8192, &huge, "");
        assert!(record.exceeded_window);
    }

    #[test]
    fn summary_and_cdf() {
        let records: Vec<CostRecord> = (1..=4)
            .map(|i| CostRecord {
                prompt_tokens: 100 * i,
                completion_tokens: 50,
                dollars: 0.01 * i as f64,
                exceeded_window: i == 4,
            })
            .collect();
        let s = summarize_costs(&records);
        assert_eq!(s.count, 4);
        assert!((s.mean - 0.025).abs() < 1e-12);
        assert!((s.max - 0.04).abs() < 1e-12);
        assert_eq!(s.over_window, 1);
        let cdf = cost_cdf(&records);
        assert_eq!(cdf.len(), 4);
        assert!((cdf[0].1 - 0.25).abs() < 1e-12);
        assert!((cdf[3].1 - 1.0).abs() < 1e-12);
        assert!(cdf.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(summarize_costs(&[]).mean, 0.0);
    }
}
