//! The dimensions of the paper's evaluation matrix: applications, code
//! generation approaches (backends) and query complexity levels.

use std::fmt;

/// The two benchmark applications (Section 4.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Application {
    /// Network traffic analysis over synthetic communication graphs.
    TrafficAnalysis,
    /// Network lifecycle management over the MALT topology.
    MaltLifecycle,
}

impl Application {
    /// Both applications.
    pub const ALL: [Application; 2] = [Application::TrafficAnalysis, Application::MaltLifecycle];

    /// Short identifier used in reports and logs.
    pub fn name(&self) -> &'static str {
        match self {
            Application::TrafficAnalysis => "traffic_analysis",
            Application::MaltLifecycle => "malt",
        }
    }
}

impl fmt::Display for Application {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The code-generation approaches (plus the strawman baseline) compared in
/// Tables 2–4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Backend {
    /// Paste the raw graph JSON into the prompt and ask the LLM to answer
    /// directly (no code generation).
    Strawman,
    /// Generate SQL against node/edge tables.
    Sql,
    /// Generate a GraphScript program over node/edge dataframes.
    Pandas,
    /// Generate a GraphScript program over a property graph.
    NetworkX,
}

impl Backend {
    /// All backends, in the column order of the paper's Table 2.
    pub const ALL: [Backend; 4] = [
        Backend::Strawman,
        Backend::Sql,
        Backend::Pandas,
        Backend::NetworkX,
    ];

    /// The code-generation backends (everything except the strawman).
    pub const CODEGEN: [Backend; 3] = [Backend::Sql, Backend::Pandas, Backend::NetworkX];

    /// Short identifier used in reports and logs.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Strawman => "strawman",
            Backend::Sql => "sql",
            Backend::Pandas => "pandas",
            Backend::NetworkX => "networkx",
        }
    }

    /// True when this backend asks the LLM for code (rather than a direct
    /// answer).
    pub fn generates_code(&self) -> bool {
        !matches!(self, Backend::Strawman)
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Query complexity levels (Table 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Complexity {
    /// Single-step lookups and filters.
    Easy,
    /// Multi-step computations.
    Medium,
    /// Multi-step computations plus graph manipulation / rebalancing.
    Hard,
}

impl Complexity {
    /// All levels in difficulty order.
    pub const ALL: [Complexity; 3] = [Complexity::Easy, Complexity::Medium, Complexity::Hard];

    /// Short identifier (`E`, `M`, `H`) as used in Tables 3 and 4.
    pub fn letter(&self) -> &'static str {
        match self {
            Complexity::Easy => "E",
            Complexity::Medium => "M",
            Complexity::Hard => "H",
        }
    }

    /// Full lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            Complexity::Easy => "easy",
            Complexity::Medium => "medium",
            Complexity::Hard => "hard",
        }
    }
}

impl fmt::Display for Complexity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_orderings() {
        assert_eq!(Application::TrafficAnalysis.to_string(), "traffic_analysis");
        assert_eq!(Backend::NetworkX.name(), "networkx");
        assert_eq!(Complexity::Medium.letter(), "M");
        assert!(Backend::Sql.generates_code());
        assert!(!Backend::Strawman.generates_code());
        assert_eq!(Backend::ALL.len(), 4);
        assert_eq!(Backend::CODEGEN.len(), 3);
        assert!(Complexity::Easy < Complexity::Hard);
    }
}
