//! Fault injection: turning a correct program into the kinds of broken
//! program the paper's LLMs actually produced.
//!
//! Table 5 of the paper classifies the failed NetworkX-backend programs into
//! seven error types. The simulated LLM reproduces a failure by taking the
//! golden program and applying one of these faults; the corrupted program is
//! then *really* executed, so the sandbox, evaluator and error classifier
//! all see genuine failures of the right kind.

use crate::backend::{Application, Backend};

/// The seven error types of the paper's Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// The program does not parse ("Syntax error").
    Syntax,
    /// The program reads a node/edge attribute or column that does not
    /// exist ("Imaginary graph attributes").
    ImaginaryAttribute,
    /// The program calls a function or method that does not exist
    /// ("Imaginary files/function arguments").
    ImaginaryFunction,
    /// The program calls a real function with the wrong arguments
    /// ("Arguments error").
    ArgumentError,
    /// A runtime operation fails (missing node, division by zero, ...)
    /// ("Operation error").
    OperationError,
    /// The program runs but computes the wrong value
    /// ("Wrong calculation logic").
    WrongCalculation,
    /// The program runs but leaves the network in the wrong state
    /// ("Graphs are not identical").
    WrongManipulation,
}

impl FaultKind {
    /// All fault kinds in the row order of Table 5.
    pub const ALL: [FaultKind; 7] = [
        FaultKind::Syntax,
        FaultKind::ImaginaryAttribute,
        FaultKind::ImaginaryFunction,
        FaultKind::ArgumentError,
        FaultKind::OperationError,
        FaultKind::WrongCalculation,
        FaultKind::WrongManipulation,
    ];

    /// The paper's observed frequency of each fault kind among failed
    /// NetworkX programs, per application (Table 5: 35 traffic failures,
    /// 17 MALT failures). Used as sampling weights by the simulated LLM.
    pub fn weights(app: Application) -> [(FaultKind, u32); 7] {
        match app {
            Application::TrafficAnalysis => [
                (FaultKind::Syntax, 9),
                (FaultKind::ImaginaryAttribute, 9),
                (FaultKind::ImaginaryFunction, 3),
                (FaultKind::ArgumentError, 7),
                (FaultKind::OperationError, 4),
                (FaultKind::WrongCalculation, 2),
                (FaultKind::WrongManipulation, 1),
            ],
            Application::MaltLifecycle => [
                // The paper reports 0 syntax errors for MALT; keep a tiny
                // weight at 0 so the distribution matches.
                (FaultKind::Syntax, 0),
                (FaultKind::ImaginaryAttribute, 1),
                (FaultKind::ImaginaryFunction, 2),
                (FaultKind::ArgumentError, 8),
                (FaultKind::OperationError, 2),
                (FaultKind::WrongCalculation, 3),
                (FaultKind::WrongManipulation, 1),
            ],
        }
    }

    /// Samples a fault kind from the application's Table-5 distribution
    /// using a hash value as the randomness source.
    pub fn sample(app: Application, hash: u64) -> FaultKind {
        let weights = Self::weights(app);
        let total: u64 = weights.iter().map(|(_, w)| *w as u64).sum();
        let mut point = hash % total.max(1);
        for (kind, w) in weights {
            if (w as u64) > point {
                return kind;
            }
            point -= w as u64;
        }
        FaultKind::ArgumentError
    }

    /// The display label used when regenerating Table 5.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Syntax => "Syntax error",
            FaultKind::ImaginaryAttribute => "Imaginary graph attributes",
            FaultKind::ImaginaryFunction => "Imaginary files/function arguments",
            FaultKind::ArgumentError => "Arguments error",
            FaultKind::OperationError => "Operation error",
            FaultKind::WrongCalculation => "Wrong calculation logic",
            FaultKind::WrongManipulation => "Graphs are not identical",
        }
    }
}

/// Applies a fault to a correct program (or, for the strawman backend, to a
/// correct direct answer), producing text that will genuinely fail in the
/// sandbox or the evaluator.
pub fn inject_fault(program: &str, backend: Backend, kind: FaultKind) -> String {
    match backend {
        Backend::NetworkX | Backend::Pandas => inject_graphscript(program, backend, kind),
        Backend::Sql => inject_sql(program, kind),
        Backend::Strawman => inject_strawman(program, kind),
    }
}

fn inject_graphscript(program: &str, backend: Backend, kind: FaultKind) -> String {
    let is_graph = backend == Backend::NetworkX;
    match kind {
        FaultKind::Syntax => {
            // Drop the last closing parenthesis; the program no longer parses.
            match program.rfind(')') {
                Some(pos) => {
                    let mut s = program.to_string();
                    s.remove(pos);
                    s
                }
                None => format!("{program}\nif true {{"),
            }
        }
        FaultKind::ImaginaryAttribute => {
            let probe = if is_graph {
                "probe_nodes = G.nodes()\nprobe = G.get_node_attr(probe_nodes[0], \"total_capacity\")"
            } else {
                "probe = nodes.sum(\"total_capacity\")"
            };
            format!("{program}\n{probe}\n")
        }
        FaultKind::ImaginaryFunction => {
            let probe = if is_graph {
                "probe = G.get_total_weight()"
            } else {
                "probe = nodes.pivot_table()"
            };
            format!("{program}\n{probe}\n")
        }
        FaultKind::ArgumentError => {
            format!("{program}\nprobe = ip_prefix(\"10.0.0.1\")\n")
        }
        FaultKind::OperationError => {
            let probe = if is_graph {
                "G.remove_node(\"__no_such_node__\")"
            } else {
                "probe = 1 / 0"
            };
            format!("{program}\n{probe}\n")
        }
        FaultKind::WrongCalculation => {
            format!("{program}\nresult = -987654.25\n")
        }
        FaultKind::WrongManipulation => {
            let mutation = if is_graph {
                "for __n in G.nodes() {\n    G.set_node_attr(__n, \"__touched__\", 1)\n}"
            } else {
                "edges.delete_rows(\"source\", \"!=\", \"__nobody__\")"
            };
            format!("{program}\n{mutation}\n")
        }
    }
}

fn inject_sql(program: &str, kind: FaultKind) -> String {
    match kind {
        FaultKind::Syntax => {
            if let Some(pos) = program.find("SELECT") {
                let mut s = program.to_string();
                s.replace_range(pos..pos + 6, "SELEC");
                s
            } else if let Some(pos) = program.find("UPDATE") {
                let mut s = program.to_string();
                s.replace_range(pos..pos + 6, "UPDTE");
                s
            } else {
                format!("{program} WHERE")
            }
        }
        FaultKind::ImaginaryAttribute => {
            format!("{program};\nSELECT total_capacity FROM nodes")
        }
        FaultKind::ImaginaryFunction => {
            format!("{program};\nSELECT TOTAL_BYTES(source) FROM edges")
        }
        FaultKind::ArgumentError => {
            format!("{program};\nSELECT SUBSTR(source) FROM edges")
        }
        FaultKind::OperationError => {
            format!("{program};\nSELECT 1 / 0 FROM nodes")
        }
        FaultKind::WrongCalculation => {
            format!("{program};\nSELECT -987654.25 AS answer")
        }
        FaultKind::WrongManipulation => {
            format!("{program};\nDELETE FROM edges WHERE source != '__nobody__'")
        }
    }
}

fn inject_strawman(answer: &str, kind: FaultKind) -> String {
    match kind {
        // A direct answer cannot have a syntax error; the analogue of the
        // LLM "hallucinating" is an answer referencing data that does not
        // exist or simply getting the arithmetic wrong.
        FaultKind::WrongManipulation => {
            format!("{answer} (and I have also removed every edge from the graph)")
        }
        _ => format!(
            "I believe the answer is approximately {}",
            mangle_numbers(answer)
        ),
    }
}

/// Perturbs every number in the text (the strawman's arithmetic mistakes).
fn mangle_numbers(text: &str) -> String {
    let mut out = String::new();
    let mut digits = String::new();
    for c in text.chars() {
        if c.is_ascii_digit() {
            digits.push(c);
        } else {
            flush_mangled(&mut out, &mut digits);
            out.push(c);
        }
    }
    flush_mangled(&mut out, &mut digits);
    if out == text {
        format!("{out} 12345")
    } else {
        out
    }
}

fn flush_mangled(out: &mut String, digits: &mut String) {
    if digits.is_empty() {
        return;
    }
    let n: u64 = digits.parse().unwrap_or(0);
    out.push_str(&(n * 3 + 7).to_string());
    digits.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROGRAM: &str = "totals = node_weight_totals(G, \"bytes\")\nresult = top_k(totals, 3)";
    const SQL: &str = "SELECT source, SUM(bytes) AS total FROM edges GROUP BY source";

    #[test]
    fn weights_match_table5_totals() {
        let traffic: u32 = FaultKind::weights(Application::TrafficAnalysis)
            .iter()
            .map(|(_, w)| w)
            .sum();
        let malt: u32 = FaultKind::weights(Application::MaltLifecycle)
            .iter()
            .map(|(_, w)| w)
            .sum();
        assert_eq!(traffic, 35);
        assert_eq!(malt, 17);
    }

    #[test]
    fn sampling_is_deterministic_and_respects_zero_weights() {
        for h in 0..200u64 {
            let kind = FaultKind::sample(Application::MaltLifecycle, h);
            assert_ne!(kind, FaultKind::Syntax, "MALT has zero syntax-error weight");
        }
        assert_eq!(
            FaultKind::sample(Application::TrafficAnalysis, 42),
            FaultKind::sample(Application::TrafficAnalysis, 42)
        );
    }

    #[test]
    fn graphscript_faults_produce_distinct_programs() {
        for kind in FaultKind::ALL {
            let bad = inject_fault(PROGRAM, Backend::NetworkX, kind);
            assert_ne!(bad, PROGRAM, "{kind:?} did not change the program");
        }
        // Syntax fault removes a parenthesis.
        let bad = inject_fault(PROGRAM, Backend::NetworkX, FaultKind::Syntax);
        assert_eq!(bad.matches(')').count(), PROGRAM.matches(')').count() - 1);
    }

    #[test]
    fn sql_faults_produce_distinct_programs() {
        for kind in FaultKind::ALL {
            let bad = inject_fault(SQL, Backend::Sql, kind);
            assert_ne!(bad, SQL);
        }
        assert!(inject_fault(SQL, Backend::Sql, FaultKind::Syntax).contains("SELEC "));
    }

    #[test]
    fn strawman_faults_corrupt_numbers() {
        let bad = inject_fault(
            "total bytes: 2550",
            Backend::Strawman,
            FaultKind::WrongCalculation,
        );
        assert!(!bad.contains("2550"));
        let manip = inject_fault("done", Backend::Strawman, FaultKind::WrongManipulation);
        assert!(manip.contains("removed"));
    }

    #[test]
    fn labels_are_the_table5_rows() {
        assert_eq!(FaultKind::Syntax.label(), "Syntax error");
        assert_eq!(
            FaultKind::WrongManipulation.label(),
            "Graphs are not identical"
        );
        assert_eq!(FaultKind::ALL.len(), 7);
    }
}
