//! Language models (component 4 of the paper's Figure 2).
//!
//! The paper evaluates four commercial LLMs (GPT-4, GPT-3,
//! text-davinci-003, Google Bard). Those models are not reachable from this
//! reproduction, so the crate provides:
//!
//! * [`Llm`] — the narrow interface the framework needs (a name and a
//!   prompt → completion function),
//! * [`ScriptedLlm`] — a fixed transcript, used in unit tests,
//! * [`SimulatedLlm`] — a deterministic, seeded model of each commercial
//!   LLM's code-generation behaviour, calibrated per (application, backend,
//!   complexity) cell from the paper's published accuracy tables. When the
//!   simulated model "knows" a task it emits the benchmark's golden program;
//!   when it does not, it emits that program corrupted by a fault drawn from
//!   the paper's Table-5 error-type distribution, so every downstream stage
//!   (sandbox, evaluator, error classifier, pass@k, self-debug, cost model)
//!   operates on real failures.

mod faults;
pub mod profiles;
mod scripted;
mod simulated;
mod traits;

pub use faults::{inject_fault, FaultKind};
pub use profiles::{all_profiles, ModelProfile};
pub use scripted::ScriptedLlm;
pub use simulated::{hash_parts, CodeKnowledge, KnownTask, SimulatedLlm};
pub use traits::{extract_code, Llm, LlmResponse};
