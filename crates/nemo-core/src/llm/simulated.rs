//! The simulated LLM: a deterministic, calibrated stand-in for the four
//! commercial models the paper evaluates.
//!
//! A [`SimulatedLlm`] owns a [`ModelProfile`] (the published per-cell
//! accuracies, pricing and temperature behaviour) and a [`CodeKnowledge`]
//! base (the benchmark's golden programs — the analogue of "the model has
//! seen a lot of NetworkX/pandas/SQL code on GitHub"). For each prompt it
//! identifies the task being asked, decides from the profile whether this
//! model would have solved it, and answers with either the correct program
//! or a program corrupted by a Table-5 fault. Non-deterministic models
//! (Bard) vary across repeated attempts, which is what pass@k exploits;
//! self-debug feedback gives a second chance whose success depends on the
//! fault kind.

use crate::backend::{Application, Backend, Complexity};
use crate::cost::PriceTable;
use crate::llm::faults::{inject_fault, FaultKind};
use crate::llm::profiles::ModelProfile;
use crate::llm::traits::{Llm, LlmResponse};
use crate::prompt::{FEEDBACK_MARKER, QUERY_MARKER};
use crate::state::normalize_text;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One task the simulated model may know how to solve.
#[derive(Debug, Clone, PartialEq)]
pub struct KnownTask {
    /// Stable identifier (used in logs).
    pub id: String,
    /// The operator query, verbatim as it appears in prompts.
    pub query: String,
    /// Which application the task belongs to.
    pub application: Application,
    /// The task's complexity level.
    pub complexity: Complexity,
    /// The correct program per code-generation backend.
    pub programs: BTreeMap<Backend, String>,
    /// The correct direct answer (what a perfect strawman reply looks like).
    pub direct_answer: String,
}

/// The simulated model's knowledge base.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CodeKnowledge {
    tasks: Vec<KnownTask>,
}

impl CodeKnowledge {
    /// Builds a knowledge base from tasks.
    pub fn new(tasks: Vec<KnownTask>) -> Self {
        CodeKnowledge { tasks }
    }

    /// All tasks.
    pub fn tasks(&self) -> &[KnownTask] {
        &self.tasks
    }

    /// Finds the task whose query matches `query` (whitespace-insensitive).
    pub fn find_by_query(&self, query: &str) -> Option<&KnownTask> {
        let wanted = normalize_text(query);
        self.tasks
            .iter()
            .find(|t| normalize_text(&t.query) == wanted)
    }

    /// The tasks in the same (application, complexity) cell.
    pub fn cell(&self, app: Application, complexity: Complexity) -> Vec<&KnownTask> {
        self.tasks
            .iter()
            .filter(|t| t.application == app && t.complexity == complexity)
            .collect()
    }
}

/// Deterministic FNV-1a hash over the given string parts: the randomness
/// source behind every simulated-model decision, and behind the benchmark
/// runner's per-cell seed derivation (shared so the two can never drift).
pub fn hash_parts(parts: &[&str]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for byte in part.as_bytes() {
            hash ^= *byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash ^= 0x1f;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A deterministic, seeded stand-in for one of the paper's LLMs.
///
/// The knowledge base is held behind an [`Arc`] so the benchmark can build
/// it once and hand it to every per-cell model without copying the golden
/// programs; all of the model's decisions are pure hashes of
/// `(profile, backend, query, seed)`, so two models built from the same
/// inputs behave identically regardless of construction order.
#[derive(Debug, Clone)]
pub struct SimulatedLlm {
    profile: ModelProfile,
    knowledge: Arc<CodeKnowledge>,
    seed: u64,
    /// Per (query, backend) count of non-feedback attempts, used to model
    /// sampling variance of non-deterministic models.
    attempts: BTreeMap<(String, Backend), u32>,
}

impl SimulatedLlm {
    /// Creates a simulated model. Accepts either an owned
    /// [`CodeKnowledge`] or a shared `Arc<CodeKnowledge>`.
    pub fn new(profile: ModelProfile, knowledge: impl Into<Arc<CodeKnowledge>>, seed: u64) -> Self {
        SimulatedLlm {
            profile,
            knowledge: knowledge.into(),
            seed,
            attempts: BTreeMap::new(),
        }
    }

    /// The model's behavioural profile.
    pub fn profile(&self) -> &ModelProfile {
        &self.profile
    }

    /// Resets the per-task attempt counters (a fresh "session").
    pub fn reset_attempts(&mut self) {
        self.attempts.clear();
    }

    /// Whether the model's base (first-attempt, no-feedback) behaviour on a
    /// task and backend is to produce correct code. This is the calibrated
    /// competence assignment: within each (application, complexity) cell the
    /// tasks are ranked by a per-model hash and the top `accuracy × cell
    /// size` (rounded) are the ones the model can solve.
    pub fn base_knows(&self, task: &KnownTask, backend: Backend) -> bool {
        let accuracy = self
            .profile
            .accuracy(task.application, backend, task.complexity);
        let cell = self.knowledge.cell(task.application, task.complexity);
        if cell.is_empty() {
            return false;
        }
        let n_known = (accuracy * cell.len() as f64).round() as usize;
        let mut ranked: Vec<&KnownTask> = cell;
        ranked.sort_by_key(|t| {
            hash_parts(&[
                self.profile.name,
                backend.name(),
                &t.query,
                &self.seed.to_string(),
            ])
        });
        ranked
            .iter()
            .position(|t| t.id == task.id)
            .map(|pos| pos < n_known)
            .unwrap_or(false)
    }

    /// The fault kind this model exhibits when it fails a task (stable per
    /// task/backend, drawn from the application's Table-5 distribution).
    pub fn fault_kind(&self, task: &KnownTask, backend: Backend) -> FaultKind {
        let hash = hash_parts(&[
            "fault",
            self.profile.name,
            backend.name(),
            &task.query,
            &self.seed.to_string(),
        ]);
        FaultKind::sample(task.application, hash)
    }

    /// For non-deterministic models: the attempt index (1-based) at which a
    /// base-unknown task nevertheless succeeds, modelling sampling variance.
    /// Always between 2 and 5, so pass@5 recovers every such failure
    /// (matching the paper's Table 6) while pass@1 does not.
    fn rescue_attempt(&self, task: &KnownTask, backend: Backend) -> u32 {
        let hash = hash_parts(&[
            "rescue",
            self.profile.name,
            backend.name(),
            &task.query,
            &self.seed.to_string(),
        ]);
        2 + (hash % 4) as u32
    }

    /// Whether a self-debug round (error message fed back) fixes a failure
    /// of the given kind for this task.
    fn self_debug_fixes(&self, task: &KnownTask, backend: Backend, kind: FaultKind) -> bool {
        let hash = hash_parts(&[
            "selfdebug",
            self.profile.name,
            backend.name(),
            &task.query,
            &self.seed.to_string(),
        ]);
        let u = (hash % 10_000) as f64 / 10_000.0;
        u < (self.profile.self_debug_fix)(kind)
    }

    fn correct_response(&self, task: &KnownTask, backend: Backend) -> String {
        match backend {
            Backend::Strawman => task.direct_answer.clone(),
            _ => {
                let program = task
                    .programs
                    .get(&backend)
                    .cloned()
                    .unwrap_or_else(|| "result = null".to_string());
                render_code_response(backend, &program)
            }
        }
    }

    fn faulty_response(&self, task: &KnownTask, backend: Backend, kind: FaultKind) -> String {
        match backend {
            Backend::Strawman => inject_fault(&task.direct_answer, backend, kind),
            _ => {
                let program = task
                    .programs
                    .get(&backend)
                    .cloned()
                    .unwrap_or_else(|| "result = null".to_string());
                render_code_response(backend, &inject_fault(&program, backend, kind))
            }
        }
    }

    /// The reply for a task the model does not recognize at all.
    fn unknown_task_response(&self, backend: Backend) -> String {
        match backend {
            Backend::Strawman => "I am not sure how to answer that.".to_string(),
            Backend::Sql => render_code_response(backend, "SELECT answer FROM unknown_table"),
            _ => render_code_response(backend, "result = answer_the_query(G)"),
        }
    }
}

fn render_code_response(backend: Backend, program: &str) -> String {
    let lang = match backend {
        Backend::Sql => "sql",
        _ => "graphscript",
    };
    format!(
        "Here is a program that answers the query.\n\n```{lang}\n{}\n```\n",
        program.trim_end()
    )
}

/// Identifies which backend a prompt targets from its instruction section.
fn detect_backend(prompt: &str) -> Backend {
    if prompt.contains("do not write code") {
        Backend::Strawman
    } else if prompt.contains("```sql") {
        Backend::Sql
    } else if prompt.contains("two global dataframes") {
        Backend::Pandas
    } else {
        Backend::NetworkX
    }
}

/// Extracts the operator query embedded in a prompt.
fn extract_query(prompt: &str) -> Option<String> {
    let start = prompt.find(QUERY_MARKER)? + QUERY_MARKER.len();
    let rest = &prompt[start..];
    let mut lines = Vec::new();
    for line in rest.lines().skip(1) {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with("##") {
            break;
        }
        lines.push(trimmed.to_string());
    }
    if lines.is_empty() {
        None
    } else {
        Some(lines.join(" "))
    }
}

impl Llm for SimulatedLlm {
    fn name(&self) -> &str {
        self.profile.name
    }

    fn complete(&mut self, prompt: &str) -> LlmResponse {
        let backend = detect_backend(prompt);
        let is_feedback = prompt.contains(FEEDBACK_MARKER);
        let query = match extract_query(prompt) {
            Some(q) => q,
            None => {
                return LlmResponse {
                    text: self.unknown_task_response(backend),
                }
            }
        };
        let task = match self.knowledge.find_by_query(&query) {
            Some(t) => t.clone(),
            None => {
                return LlmResponse {
                    text: self.unknown_task_response(backend),
                }
            }
        };

        // Attempt bookkeeping: only fresh attempts (not self-debug rounds)
        // advance the counter that models sampling variance.
        let attempt = if is_feedback {
            *self
                .attempts
                .get(&(task.query.clone(), backend))
                .unwrap_or(&1)
        } else {
            let counter = self
                .attempts
                .entry((task.query.clone(), backend))
                .or_insert(0);
            *counter += 1;
            *counter
        };

        let mut correct = self.base_knows(&task, backend);
        let fault = self.fault_kind(&task, backend);
        if !correct && !self.profile.deterministic && attempt >= self.rescue_attempt(&task, backend)
        {
            correct = true;
        }
        if !correct && is_feedback && self.self_debug_fixes(&task, backend, fault) {
            correct = true;
        }

        let text = if correct {
            self.correct_response(&task, backend)
        } else {
            self.faulty_response(&task, backend, fault)
        };
        LlmResponse { text }
    }

    fn token_window(&self) -> usize {
        self.profile.token_window
    }

    fn prices(&self) -> PriceTable {
        self.profile.prices
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::llm::profiles::{bard, gpt4};
    use crate::llm::traits::extract_code;

    fn task(id: &str, query: &str, complexity: Complexity) -> KnownTask {
        let mut programs = BTreeMap::new();
        programs.insert(
            Backend::NetworkX,
            format!("result = G.number_of_nodes() # {id}"),
        );
        programs.insert(Backend::Pandas, format!("result = nodes.n_rows() # {id}"));
        programs.insert(Backend::Sql, "SELECT COUNT(*) AS n FROM nodes".to_string());
        KnownTask {
            id: id.to_string(),
            query: query.to_string(),
            application: Application::TrafficAnalysis,
            complexity,
            programs,
            direct_answer: "80".to_string(),
        }
    }

    fn knowledge() -> CodeKnowledge {
        CodeKnowledge::new(vec![
            task("q1", "How many nodes are in the graph?", Complexity::Easy),
            task("q2", "How many endpoints are there?", Complexity::Easy),
            task("q3", "Count all hosts.", Complexity::Easy),
            task("q4", "Count nodes please.", Complexity::Easy),
        ])
    }

    fn prompt_for(query: &str, backend: Backend) -> String {
        let marker = QUERY_MARKER;
        let instructions = crate::prompt::backend_instructions(backend);
        format!("## Application\nA graph.\n\n{marker}\n{query}\n\n## Task\n{instructions}\n")
    }

    #[test]
    fn perfect_cell_returns_golden_code() {
        // GPT-4 NetworkX Easy accuracy is 1.0, so every easy task succeeds.
        let mut llm = SimulatedLlm::new(gpt4(), knowledge(), 1);
        for q in ["How many nodes are in the graph?", "Count all hosts."] {
            let response = llm.complete(&prompt_for(q, Backend::NetworkX));
            let code = extract_code(&response.text).unwrap();
            assert!(code.contains("number_of_nodes"), "unexpected code: {code}");
        }
    }

    #[test]
    fn accuracy_fraction_of_cell_is_correct() {
        // GPT-4 pandas Easy accuracy is 0.50: exactly half of the 4 easy
        // tasks get correct pandas programs.
        let mut llm = SimulatedLlm::new(gpt4(), knowledge(), 1);
        let mut correct = 0;
        for q in [
            "How many nodes are in the graph?",
            "How many endpoints are there?",
            "Count all hosts.",
            "Count nodes please.",
        ] {
            let response = llm.complete(&prompt_for(q, Backend::Pandas));
            let code = extract_code(&response.text).unwrap();
            if code == "result = nodes.n_rows() # q1"
                || code == "result = nodes.n_rows() # q2"
                || code == "result = nodes.n_rows() # q3"
                || code == "result = nodes.n_rows() # q4"
            {
                correct += 1;
            }
        }
        assert_eq!(correct, 2);
    }

    #[test]
    fn deterministic_models_repeat_failures_nondeterministic_recover() {
        let k = knowledge();
        // Force a failing cell by using a backend/complexity with 0 accuracy:
        // GPT-4 strawman Hard is 0.0 — but build hard tasks instead.
        let hard = CodeKnowledge::new(vec![
            task("h1", "Cluster the nodes into 5 groups.", Complexity::Hard),
            task("h2", "Rebalance the capacity.", Complexity::Hard),
        ]);
        let mut gpt = SimulatedLlm::new(gpt4(), hard.clone(), 1);
        let p = prompt_for("Rebalance the capacity.", Backend::Pandas); // 0.13 accuracy -> 0 of 2
        let first = gpt.complete(&p).text;
        let second = gpt.complete(&p).text;
        assert_eq!(first, second, "temperature-0 model must repeat itself");

        let mut b = SimulatedLlm::new(bard(), hard, 1);
        let mut answers = Vec::new();
        for _ in 0..5 {
            answers.push(b.complete(&p).text);
        }
        // Bard recovers on some later attempt (pass@5 behaviour).
        let golden_seen = answers
            .iter()
            .filter_map(|t| extract_code(t))
            .any(|c| c.starts_with("result = nodes.n_rows()"));
        assert!(
            golden_seen,
            "non-deterministic model never recovered: {answers:?}"
        );
        let _ = k;
    }

    #[test]
    fn failures_are_real_injected_faults() {
        // GPT-4 SQL Easy accuracy is 0.75 -> 3 of the 4 easy tasks correct,
        // one fault-injected.
        let mut llm = SimulatedLlm::new(gpt4(), knowledge(), 1);
        let mut faulty = Vec::new();
        for q in [
            "How many nodes are in the graph?",
            "How many endpoints are there?",
            "Count all hosts.",
            "Count nodes please.",
        ] {
            let text = llm.complete(&prompt_for(q, Backend::Sql)).text;
            let code = extract_code(&text).unwrap();
            if code != "SELECT COUNT(*) AS n FROM nodes" {
                faulty.push(code);
            }
        }
        assert_eq!(faulty.len(), 1);
        assert_ne!(faulty[0], "SELECT COUNT(*) AS n FROM nodes");
    }

    #[test]
    fn unknown_queries_get_generic_wrong_code() {
        let mut llm = SimulatedLlm::new(gpt4(), knowledge(), 1);
        let text = llm
            .complete(&prompt_for("Completely novel question?", Backend::NetworkX))
            .text;
        assert!(extract_code(&text).unwrap().contains("answer_the_query"));
        let strawman = llm.complete(&prompt_for("Novel?", Backend::Strawman)).text;
        assert!(strawman.contains("not sure"));
    }

    #[test]
    fn backend_detection_and_window() {
        let llm = SimulatedLlm::new(gpt4(), knowledge(), 1);
        assert_eq!(llm.token_window(), 8_192);
        assert_eq!(detect_backend(&prompt_for("q", Backend::Sql)), Backend::Sql);
        assert_eq!(
            detect_backend(&prompt_for("q", Backend::Pandas)),
            Backend::Pandas
        );
        assert_eq!(
            detect_backend(&prompt_for("q", Backend::NetworkX)),
            Backend::NetworkX
        );
        assert_eq!(
            detect_backend("please answer, do not write code"),
            Backend::Strawman
        );
    }

    #[test]
    fn extract_query_reads_the_marker_section() {
        let p = prompt_for("How many nodes are in the graph?", Backend::NetworkX);
        assert_eq!(
            extract_query(&p).unwrap(),
            "How many nodes are in the graph?"
        );
        assert_eq!(extract_query("no marker here"), None);
    }
}
