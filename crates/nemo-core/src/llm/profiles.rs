//! Behavioural profiles of the four commercial LLMs the paper evaluates.
//!
//! Each profile carries the per-cell code-correctness rates published in the
//! paper's Tables 3 (traffic analysis) and 4 (MALT), the model's context
//! window and pricing, whether the model is deterministic at temperature 0,
//! and how effective self-debugging feedback is per error category. The
//! [`super::SimulatedLlm`] uses these numbers to decide, per task, whether
//! to emit a correct program or a faulted one — so the *shape* of the
//! paper's results is reproduced by construction of the fault rates, while
//! every downstream number is measured from real execution.

use crate::backend::{Application, Backend, Complexity};
use crate::cost::PriceTable;
use crate::llm::faults::FaultKind;

/// A per-(application, backend, complexity) accuracy table plus the model's
/// operational characteristics.
#[derive(Debug, Clone)]
pub struct ModelProfile {
    /// Display name used in the paper's tables.
    pub name: &'static str,
    /// Context-window size in tokens.
    pub token_window: usize,
    /// Price table.
    pub prices: PriceTable,
    /// True for models queried at temperature 0 (OpenAI models in the
    /// paper): repeated attempts return identical completions, so pass@k
    /// cannot help them.
    pub deterministic: bool,
    /// Traffic-analysis accuracies indexed `[backend][complexity]` with
    /// backend order strawman/SQL/pandas/NetworkX and complexity order
    /// E/M/H (Table 3).
    pub traffic: [[f64; 3]; 4],
    /// MALT accuracies indexed `[backend][complexity]` with backend order
    /// SQL/pandas/NetworkX (Table 4).
    pub malt: [[f64; 3]; 3],
    /// Probability that a self-debug round fixes a failure, per fault kind
    /// (syntax errors and hallucinated attributes are usually fixable once
    /// the error message is shown; wrong logic rarely is).
    pub self_debug_fix: fn(FaultKind) -> f64,
}

impl ModelProfile {
    /// The published accuracy for one cell of the evaluation matrix.
    /// The strawman backend is only defined for traffic analysis (the MALT
    /// graph does not fit in any of the models' windows); it returns 0.0
    /// there.
    pub fn accuracy(&self, app: Application, backend: Backend, complexity: Complexity) -> f64 {
        let c = match complexity {
            Complexity::Easy => 0,
            Complexity::Medium => 1,
            Complexity::Hard => 2,
        };
        match app {
            Application::TrafficAnalysis => {
                let b = match backend {
                    Backend::Strawman => 0,
                    Backend::Sql => 1,
                    Backend::Pandas => 2,
                    Backend::NetworkX => 3,
                };
                self.traffic[b][c]
            }
            Application::MaltLifecycle => match backend {
                Backend::Strawman => 0.0,
                Backend::Sql => self.malt[0][c],
                Backend::Pandas => self.malt[1][c],
                Backend::NetworkX => self.malt[2][c],
            },
        }
    }
}

fn default_self_debug_fix(kind: FaultKind) -> f64 {
    match kind {
        FaultKind::Syntax => 0.9,
        FaultKind::ImaginaryAttribute => 0.8,
        FaultKind::ImaginaryFunction => 0.7,
        FaultKind::ArgumentError => 0.6,
        FaultKind::OperationError => 0.4,
        FaultKind::WrongCalculation => 0.15,
        FaultKind::WrongManipulation => 0.15,
    }
}

/// GPT-4 (8k window, Azure list pricing, temperature 0).
pub fn gpt4() -> ModelProfile {
    ModelProfile {
        name: "GPT-4",
        token_window: 8_192,
        prices: PriceTable::GPT4,
        deterministic: true,
        traffic: [
            [0.50, 0.38, 0.00], // strawman
            [0.75, 0.50, 0.25], // SQL
            [0.50, 0.50, 0.13], // pandas
            [1.00, 1.00, 0.63], // NetworkX
        ],
        malt: [
            [0.33, 0.00, 0.00], // SQL
            [0.67, 0.67, 0.33], // pandas
            [1.00, 1.00, 0.33], // NetworkX
        ],
        self_debug_fix: default_self_debug_fix,
    }
}

/// GPT-3 (davinci-class, 4k window, temperature 0).
pub fn gpt3() -> ModelProfile {
    ModelProfile {
        name: "GPT-3",
        token_window: 4_096,
        prices: PriceTable::GPT3,
        deterministic: true,
        traffic: [
            [0.38, 0.13, 0.00],
            [0.25, 0.13, 0.00],
            [0.50, 0.25, 0.00],
            [1.00, 0.63, 0.25],
        ],
        malt: [[0.33, 0.00, 0.00], [0.67, 0.67, 0.00], [0.67, 0.67, 0.00]],
        self_debug_fix: default_self_debug_fix,
    }
}

/// text-davinci-003 (GPT-3.5 variant, 4k window, temperature 0).
pub fn text_davinci_003() -> ModelProfile {
    ModelProfile {
        name: "text-davinci-003",
        token_window: 4_096,
        prices: PriceTable::GPT3,
        deterministic: true,
        traffic: [
            [0.38, 0.25, 0.00],
            [0.63, 0.25, 0.00],
            [0.63, 0.25, 0.00],
            [1.00, 0.75, 0.13],
        ],
        malt: [[0.33, 0.00, 0.00], [0.33, 0.33, 0.00], [0.67, 0.67, 0.33]],
        self_debug_fix: default_self_debug_fix,
    }
}

/// Google Bard (temperature not adjustable, so repeated attempts differ;
/// the paper averages 5 trials per query).
pub fn bard() -> ModelProfile {
    ModelProfile {
        name: "Google Bard",
        token_window: 4_096,
        prices: PriceTable::GPT3,
        deterministic: false,
        traffic: [
            [0.50, 0.25, 0.00],
            [0.38, 0.25, 0.00],
            [0.50, 0.13, 0.13],
            [0.88, 0.50, 0.38],
        ],
        malt: [[0.33, 0.00, 0.00], [0.67, 0.33, 0.00], [0.67, 0.33, 0.33]],
        self_debug_fix: default_self_debug_fix,
    }
}

/// All four profiles in the row order of the paper's tables.
pub fn all_profiles() -> Vec<ModelProfile> {
    vec![gpt4(), gpt3(), text_davinci_003(), bard()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_lookup_matches_published_cells() {
        let g4 = gpt4();
        assert_eq!(
            g4.accuracy(
                Application::TrafficAnalysis,
                Backend::NetworkX,
                Complexity::Easy
            ),
            1.0
        );
        assert_eq!(
            g4.accuracy(
                Application::TrafficAnalysis,
                Backend::Strawman,
                Complexity::Hard
            ),
            0.0
        );
        assert_eq!(
            g4.accuracy(
                Application::MaltLifecycle,
                Backend::NetworkX,
                Complexity::Hard
            ),
            0.33
        );
        assert_eq!(
            bard().accuracy(
                Application::TrafficAnalysis,
                Backend::NetworkX,
                Complexity::Easy
            ),
            0.88
        );
        // Strawman is undefined for MALT (graph too large for any window).
        assert_eq!(
            g4.accuracy(
                Application::MaltLifecycle,
                Backend::Strawman,
                Complexity::Easy
            ),
            0.0
        );
    }

    #[test]
    fn table2_summary_is_consistent_with_breakdown() {
        // Table 2's NetworkX column for traffic analysis is the mean of the
        // three complexity cells of Table 3 (8 queries per level).
        for (profile, expected) in [
            (gpt4(), 0.88),
            (gpt3(), 0.63),
            (text_davinci_003(), 0.63),
            (bard(), 0.59),
        ] {
            let mean = Complexity::ALL
                .iter()
                .map(|&c| profile.accuracy(Application::TrafficAnalysis, Backend::NetworkX, c))
                .sum::<f64>()
                / 3.0;
            assert!(
                (mean - expected).abs() < 0.02,
                "{}: mean {mean} vs table-2 {expected}",
                profile.name
            );
        }
    }

    #[test]
    fn profiles_and_self_debug_rates() {
        assert_eq!(all_profiles().len(), 4);
        assert!(gpt4().deterministic);
        assert!(!bard().deterministic);
        let fix = gpt4().self_debug_fix;
        assert!(fix(FaultKind::Syntax) > fix(FaultKind::WrongCalculation));
    }
}
