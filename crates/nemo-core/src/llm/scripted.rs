//! A scripted (canned-transcript) LLM used by unit tests.

use crate::cost::PriceTable;
use crate::llm::traits::{Llm, LlmResponse};
use std::collections::VecDeque;

/// An [`Llm`] that returns a fixed sequence of completions regardless of the
/// prompt. When the transcript runs out it repeats the last entry (or an
/// empty completion when none was provided).
#[derive(Debug, Clone)]
pub struct ScriptedLlm {
    name: String,
    responses: VecDeque<String>,
    last: String,
    /// Every prompt received, for assertions in tests.
    pub prompts_seen: Vec<String>,
}

impl ScriptedLlm {
    /// Creates a scripted model with the given completions.
    pub fn new(name: impl Into<String>, responses: Vec<String>) -> Self {
        ScriptedLlm {
            name: name.into(),
            responses: responses.into(),
            last: String::new(),
            prompts_seen: Vec::new(),
        }
    }
}

impl Llm for ScriptedLlm {
    fn name(&self) -> &str {
        &self.name
    }

    fn complete(&mut self, prompt: &str) -> LlmResponse {
        self.prompts_seen.push(prompt.to_string());
        if let Some(next) = self.responses.pop_front() {
            self.last = next;
        }
        LlmResponse {
            text: self.last.clone(),
        }
    }

    fn prices(&self) -> PriceTable {
        PriceTable::GPT4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replays_transcript_then_repeats_last() {
        let mut llm = ScriptedLlm::new("test", vec!["one".into(), "two".into()]);
        assert_eq!(llm.complete("a").text, "one");
        assert_eq!(llm.complete("b").text, "two");
        assert_eq!(llm.complete("c").text, "two");
        assert_eq!(llm.prompts_seen.len(), 3);
        assert_eq!(llm.name(), "test");
    }

    #[test]
    fn empty_transcript_yields_empty_completions() {
        let mut llm = ScriptedLlm::new("empty", vec![]);
        assert_eq!(llm.complete("x").text, "");
    }
}
