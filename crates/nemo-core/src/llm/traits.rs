//! The LLM interface and the response type.

use crate::cost::PriceTable;

/// One completion returned by a model.
#[derive(Debug, Clone, PartialEq)]
pub struct LlmResponse {
    /// The completion text (prose plus a fenced code block for the
    /// code-generation backends).
    pub text: String,
}

/// The interface the framework uses to talk to a language model.
///
/// Completions are a function of the prompt only — exactly what a remote
/// LLM API offers. Implementations may keep internal state (e.g. attempt
/// counters for non-deterministic models), which is why `complete` takes
/// `&mut self`.
pub trait Llm {
    /// The model's name as used in the paper's tables
    /// (`"GPT-4"`, `"Google Bard"`, ...).
    fn name(&self) -> &str;

    /// Generates a completion for a prompt.
    fn complete(&mut self, prompt: &str) -> LlmResponse;

    /// The model's context-window size in tokens (prompt + completion).
    fn token_window(&self) -> usize {
        8_192
    }

    /// The model's price table.
    fn prices(&self) -> PriceTable {
        PriceTable::GPT4
    }
}

/// A mutable borrow of a model is itself a model, so the pipeline can
/// either own its model (one per benchmark cell, the parallel runner's
/// layout) or borrow one across several runs (the pass@k / self-debug
/// loops and the unit tests).
impl<T: Llm + ?Sized> Llm for &mut T {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn complete(&mut self, prompt: &str) -> LlmResponse {
        (**self).complete(prompt)
    }

    fn token_window(&self) -> usize {
        (**self).token_window()
    }

    fn prices(&self) -> PriceTable {
        (**self).prices()
    }
}

/// Extracts the first fenced code block from a completion, tolerating an
/// optional language tag. Returns `None` when the completion contains no
/// code fence (the strawman's direct answers, or a malformed reply).
pub fn extract_code(completion: &str) -> Option<String> {
    let start = completion.find("```")?;
    let after = &completion[start + 3..];
    // Skip the language tag line if present.
    let body_start = after.find('\n').map(|i| i + 1).unwrap_or(0);
    let body = &after[body_start..];
    let end = body.find("```")?;
    Some(body[..end].trim().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_code_handles_language_tags_and_absence() {
        let completion = "Here is the program:\n```graphscript\nresult = 1 + 1\n```\nDone.";
        assert_eq!(extract_code(completion).unwrap(), "result = 1 + 1");
        let sql = "```sql\nSELECT 1;\n```";
        assert_eq!(extract_code(sql).unwrap(), "SELECT 1;");
        assert_eq!(extract_code("just an answer, no code"), None);
        assert_eq!(extract_code("``` incomplete"), None);
    }
}
