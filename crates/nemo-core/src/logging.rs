//! The results logger (Figure 3): keeps every attempt's record and offers
//! the aggregations the benchmark tables are built from.

use crate::backend::Backend;
use crate::framework::RunRecord;
use crate::llm::FaultKind;
use std::collections::BTreeMap;

/// An append-only log of run records with aggregation helpers.
#[derive(Debug, Default, PartialEq)]
pub struct ResultsLogger {
    records: Vec<RunRecord>,
}

impl ResultsLogger {
    /// Creates an empty logger.
    pub fn new() -> Self {
        ResultsLogger::default()
    }

    /// Appends one record.
    pub fn log(&mut self, record: RunRecord) {
        self.records.push(record);
    }

    /// Appends many records.
    pub fn log_all(&mut self, records: impl IntoIterator<Item = RunRecord>) {
        self.records.extend(records);
    }

    /// Appends every record of `other`, preserving its insertion order —
    /// for combining the logs of separately executed benchmark slices
    /// (e.g. per-model runs produced on different machines).
    pub fn merge(&mut self, other: ResultsLogger) {
        self.records.extend(other.records);
    }

    /// All records in insertion order.
    pub fn records(&self) -> &[RunRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Pass rate over the records selected by `filter` (0.0 when none match).
    pub fn pass_rate<F: Fn(&RunRecord) -> bool>(&self, filter: F) -> f64 {
        let selected: Vec<&RunRecord> = self.records.iter().filter(|r| filter(r)).collect();
        if selected.is_empty() {
            return 0.0;
        }
        selected.iter().filter(|r| r.passed()).count() as f64 / selected.len() as f64
    }

    /// Pass rate for one (model, backend) pair.
    pub fn pass_rate_for(&self, model: &str, backend: Backend) -> f64 {
        self.pass_rate(|r| r.model == model && r.backend == backend)
    }

    /// Counts failures by error category over the records selected by
    /// `filter` (the data behind Table 5).
    pub fn failure_categories<F: Fn(&RunRecord) -> bool>(
        &self,
        filter: F,
    ) -> BTreeMap<FaultKind, usize> {
        let mut out = BTreeMap::new();
        for record in self.records.iter().filter(|r| filter(r)) {
            if let Some(category) = record.verdict.category() {
                *out.entry(category).or_insert(0) += 1;
            }
        }
        out
    }

    /// Total dollar cost over the records selected by `filter`.
    pub fn total_cost<F: Fn(&RunRecord) -> bool>(&self, filter: F) -> f64 {
        self.records
            .iter()
            .filter(|r| filter(r))
            .map(|r| r.cost.dollars)
            .sum()
    }
}

impl FromIterator<RunRecord> for ResultsLogger {
    fn from_iter<I: IntoIterator<Item = RunRecord>>(iter: I) -> Self {
        ResultsLogger {
            records: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostRecord;
    use crate::evaluator::Verdict;

    fn record(model: &str, backend: Backend, pass: bool, category: FaultKind) -> RunRecord {
        RunRecord {
            model: model.to_string(),
            backend,
            query: "q".to_string(),
            code: None,
            response: String::new(),
            verdict: if pass {
                Verdict::Pass
            } else {
                Verdict::Fail {
                    category,
                    detail: "d".to_string(),
                }
            },
            cost: CostRecord {
                prompt_tokens: 100,
                completion_tokens: 10,
                dollars: 0.01,
                exceeded_window: false,
            },
        }
    }

    #[test]
    fn pass_rates_and_costs() {
        let mut log = ResultsLogger::new();
        assert!(log.is_empty());
        log.log(record("GPT-4", Backend::NetworkX, true, FaultKind::Syntax));
        log.log(record("GPT-4", Backend::NetworkX, false, FaultKind::Syntax));
        log.log(record(
            "GPT-4",
            Backend::Sql,
            false,
            FaultKind::ArgumentError,
        ));
        log.log_all(vec![record(
            "Bard",
            Backend::NetworkX,
            true,
            FaultKind::Syntax,
        )]);
        assert_eq!(log.len(), 4);
        assert_eq!(log.pass_rate_for("GPT-4", Backend::NetworkX), 0.5);
        assert_eq!(log.pass_rate_for("Bard", Backend::NetworkX), 1.0);
        assert_eq!(log.pass_rate_for("Bard", Backend::Sql), 0.0);
        assert!((log.total_cost(|_| true) - 0.04).abs() < 1e-12);
    }

    #[test]
    fn merge_and_from_iterator_preserve_order() {
        let a: ResultsLogger = vec![
            record("GPT-4", Backend::NetworkX, true, FaultKind::Syntax),
            record("GPT-4", Backend::Sql, false, FaultKind::Syntax),
        ]
        .into_iter()
        .collect();
        let b: ResultsLogger = vec![record("Bard", Backend::NetworkX, true, FaultKind::Syntax)]
            .into_iter()
            .collect();
        let mut merged = ResultsLogger::new();
        merged.merge(a);
        merged.merge(b);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged.records()[0].model, "GPT-4");
        assert_eq!(merged.records()[2].model, "Bard");
    }

    #[test]
    fn failure_category_counts() {
        let mut log = ResultsLogger::new();
        log.log(record("GPT-4", Backend::NetworkX, false, FaultKind::Syntax));
        log.log(record("GPT-4", Backend::NetworkX, false, FaultKind::Syntax));
        log.log(record(
            "GPT-4",
            Backend::NetworkX,
            false,
            FaultKind::WrongCalculation,
        ));
        log.log(record("GPT-4", Backend::NetworkX, true, FaultKind::Syntax));
        let counts = log.failure_categories(|r| r.backend == Backend::NetworkX);
        assert_eq!(counts[&FaultKind::Syntax], 2);
        assert_eq!(counts[&FaultKind::WrongCalculation], 1);
        assert_eq!(counts.values().sum::<usize>(), 3);
    }
}
