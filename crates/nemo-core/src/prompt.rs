//! Prompt generation (components 2 and 3 of the paper's Figure 2).
//!
//! The *application prompt generator* turns the application wrapper's
//! description plus the operator's natural-language query into a
//! task-specific prompt; the *code-gen prompt generator* appends the
//! backend-specific instructions (which library to use, how to return the
//! result). The strawman prompt instead pastes the raw graph JSON and asks
//! for a direct answer.
//!
//! Prompts are plain text with `##`-delimited sections; the `## Query`
//! section carries the operator's request verbatim, which is also how the
//! simulated LLM recognizes which task it is being asked to solve.

use crate::apps::ApplicationWrapper;
use crate::backend::Backend;

/// A fully rendered prompt plus the metadata the framework keeps about it.
#[derive(Debug, Clone, PartialEq)]
pub struct Prompt {
    /// The complete prompt text sent to the LLM.
    pub text: String,
    /// The operator query embedded in the prompt.
    pub query: String,
    /// The backend the prompt targets.
    pub backend: Backend,
}

/// Section marker used for the operator query. The simulated LLM looks for
/// this marker to identify the task.
pub const QUERY_MARKER: &str = "## Query";

/// Section marker introducing error feedback in a self-debug round.
pub const FEEDBACK_MARKER: &str = "## Previous attempt failed";

/// Builds the application-specific part of the prompt (component 2).
pub fn application_prompt(app: &dyn ApplicationWrapper, query: &str) -> String {
    format!(
        "You are a network management assistant.\n\n## Application\n{}\n\n{QUERY_MARKER}\n{}\n",
        app.describe(),
        query.trim()
    )
}

/// Builds the complete code-generation prompt (components 2 + 3).
pub fn codegen_prompt(app: &dyn ApplicationWrapper, backend: Backend, query: &str) -> Prompt {
    let mut text = application_prompt(app, query);
    text.push_str("\n## Task\n");
    text.push_str(backend_instructions(backend));
    Prompt {
        text,
        query: query.trim().to_string(),
        backend,
    }
}

/// Builds the strawman prompt: the raw graph JSON plus the query, asking the
/// model to answer directly without code.
pub fn strawman_prompt(app: &dyn ApplicationWrapper, query: &str) -> Prompt {
    let text = format!(
        "You are a network management assistant.\n\n## Application\n{}\n\n## Network data (node-link JSON)\n{}\n\n{QUERY_MARKER}\n{}\n\n## Task\nAnswer the query directly using the data above. Reply with the answer only; do not write code.\n",
        app.describe(),
        app.raw_json(),
        query.trim()
    );
    Prompt {
        text,
        query: query.trim().to_string(),
        backend: Backend::Strawman,
    }
}

/// Builds a self-debug follow-up prompt: the original prompt plus the failed
/// code and its error message (the technique of Table 6).
pub fn self_debug_prompt(original: &Prompt, previous_code: &str, error: &str) -> Prompt {
    let text = format!(
        "{}\n{FEEDBACK_MARKER} with an error.\n### Previous code\n{}\n### Error\n{}\n\nPlease fix the code and return a corrected version.\n",
        original.text, previous_code, error
    );
    Prompt {
        text,
        query: original.query.clone(),
        backend: original.backend,
    }
}

/// The backend-specific code-generation instructions (component 3).
pub fn backend_instructions(backend: Backend) -> &'static str {
    match backend {
        Backend::NetworkX => {
            "Write a GraphScript program that answers the query.\n\
             The network is available as the global graph `G`.\n\
             Useful graph methods: G.nodes(), G.edges(), G.edges_data(), G.node_attrs(id), \
             G.get_node_attr(id, key), G.set_node_attr(id, key, value), G.get_edge_attr(u, v, key), \
             G.add_node(id, attrs), G.add_edge(u, v, attrs), G.remove_node(id), G.remove_edge(u, v), \
             G.neighbors(id), G.degree(id), G.subgraph(ids), G.number_of_nodes(), G.number_of_edges().\n\
             Useful functions: shortest_path(G, a, b), shortest_path_length(G, a, b), \
             connected_components(G), node_weight_totals(G, attr), kmeans_groups(scores, k), \
             top_k(scores, k), ip_prefix(addr, n), palette_color(i), len, sum, sorted, keys, values, items.\n\
             Assign the final answer to a variable named `result`.\n\
             Return the program inside a ```graphscript code block."
        }
        Backend::Pandas => {
            "Write a GraphScript program that answers the query using dataframes.\n\
             The network is available as two global dataframes: `nodes` and `edges`.\n\
             Useful dataframe methods: df.filter(column, op, value), df.sort_values(column, ascending), \
             df.groupby_agg(key, value_column, func, out_name), df.sum(column), df.mean(column), \
             df.value(row, column), df.set_value(row, column, value), df.set_column(name, values), \
             df.delete_rows(column, op, value), df.unique(column), df.join(other, left_on, right_on), \
             df.n_rows(), df.column(name), df.to_rows().\n\
             Useful functions: ip_prefix(addr, n), palette_color(i), kmeans_groups(scores, k), \
             len, sum, sorted, keys, values, items.\n\
             Assign the final answer to a variable named `result`.\n\
             Return the program inside a ```graphscript code block."
        }
        Backend::Sql => {
            "Write SQL that answers the query.\n\
             The network is stored in two tables: `nodes` and `edges`.\n\
             You may use SELECT / UPDATE / INSERT / DELETE, joins, GROUP BY, HAVING, ORDER BY, \
             LIMIT, and the functions COUNT, SUM, AVG, MIN, MAX, LENGTH, SUBSTR, REPLACE, UPPER, \
             LOWER, ROUND, COALESCE, SPLIT_PART, IP_PREFIX. Separate multiple statements with \
             semicolons; the last SELECT is treated as the answer.\n\
             Return the SQL inside a ```sql code block."
        }
        Backend::Strawman => "Answer the query directly using the data above; do not write code.",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::TrafficApp;
    use trafficgen::TrafficConfig;

    fn app() -> TrafficApp {
        TrafficApp::new(trafficgen::generate(&TrafficConfig {
            nodes: 10,
            edges: 12,
            prefixes: 2,
            seed: 1,
        }))
    }

    #[test]
    fn codegen_prompt_contains_sections() {
        let app = app();
        let p = codegen_prompt(&app, Backend::NetworkX, "List all nodes with prefix 15.76");
        assert!(p.text.contains("## Application"));
        assert!(p.text.contains(QUERY_MARKER));
        assert!(p.text.contains("List all nodes with prefix 15.76"));
        assert!(p.text.contains("```graphscript"));
        assert_eq!(p.backend, Backend::NetworkX);
        let sql = codegen_prompt(&app, Backend::Sql, "count edges");
        assert!(sql.text.contains("```sql"));
    }

    #[test]
    fn strawman_prompt_embeds_graph_json_and_scales_with_graph_size() {
        let small = strawman_prompt(&app(), "count edges");
        assert!(small.text.contains("\"links\""));
        let big_app = TrafficApp::new(trafficgen::generate(&TrafficConfig {
            nodes: 100,
            edges: 120,
            prefixes: 2,
            seed: 1,
        }));
        let big = strawman_prompt(&big_app, "count edges");
        assert!(big.text.len() > small.text.len() * 3);
    }

    #[test]
    fn codegen_prompt_is_independent_of_graph_size() {
        let small = codegen_prompt(&app(), Backend::NetworkX, "count edges");
        let big_app = TrafficApp::new(trafficgen::generate(&TrafficConfig {
            nodes: 400,
            edges: 400,
            prefixes: 4,
            seed: 1,
        }));
        let big = codegen_prompt(&big_app, Backend::NetworkX, "count edges");
        // Only the one-line node/edge count in the description changes.
        let delta = (big.text.len() as i64 - small.text.len() as i64).abs();
        assert!(delta < 16, "prompt size changed by {delta} bytes");
    }

    #[test]
    fn self_debug_prompt_appends_feedback() {
        let base = codegen_prompt(&app(), Backend::NetworkX, "count edges");
        let debug = self_debug_prompt(
            &base,
            "result = G.count()",
            "'graph' object has no attribute 'count'",
        );
        assert!(debug.text.contains(FEEDBACK_MARKER));
        assert!(debug.text.contains("no attribute 'count'"));
        assert_eq!(debug.query, base.query);
    }
}
