//! The results evaluator and error classifier (the benchmark's "Results
//! Evaluator" in Figure 3, plus the analysis behind Table 5).
//!
//! A candidate outcome passes when both its result value and its final
//! network state match the golden answer's. Failures are classified into
//! the paper's seven error types ([`FaultKind`]): execution errors map by
//! their error kind, successful executions with wrong results map to "wrong
//! calculation logic" or "graphs are not identical".

use crate::llm::FaultKind;
use crate::sandbox::SandboxError;
use crate::state::Outcome;
use graphscript::ScriptError;
use sqlengine::SqlError;
use std::fmt;

/// The evaluator's judgement of one candidate program.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// The candidate's value and final state both match the golden answer.
    Pass,
    /// The candidate failed; `category` is the Table-5 error type and
    /// `detail` a human-readable explanation (shown to the operator and fed
    /// back to the LLM by self-debug).
    Fail {
        /// Which of the seven error types this failure is.
        category: FaultKind,
        /// Explanation (error message or mismatch description).
        detail: String,
    },
}

impl Verdict {
    /// True for [`Verdict::Pass`].
    pub fn passed(&self) -> bool {
        matches!(self, Verdict::Pass)
    }

    /// The failure category, if any.
    pub fn category(&self) -> Option<FaultKind> {
        match self {
            Verdict::Pass => None,
            Verdict::Fail { category, .. } => Some(*category),
        }
    }

    /// The failure detail, if any.
    pub fn detail(&self) -> Option<&str> {
        match self {
            Verdict::Pass => None,
            Verdict::Fail { detail, .. } => Some(detail),
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Pass => write!(f, "PASS"),
            Verdict::Fail { category, detail } => {
                write!(f, "FAIL [{}]: {detail}", category.label())
            }
        }
    }
}

/// Compares a candidate execution against the golden outcome.
pub fn evaluate(candidate: &Result<Outcome, SandboxError>, golden: &Outcome) -> Verdict {
    match candidate {
        Err(error) => Verdict::Fail {
            category: classify_error(error),
            detail: error.to_string(),
        },
        Ok(outcome) => {
            if !outcome.value.approx_eq(&golden.value) {
                return Verdict::Fail {
                    category: FaultKind::WrongCalculation,
                    detail: format!(
                        "result mismatch: expected `{}`, got `{}`",
                        truncate(&golden.value.render()),
                        truncate(&outcome.value.render())
                    ),
                };
            }
            if !outcome.state.approx_eq(&golden.state) {
                return Verdict::Fail {
                    category: FaultKind::WrongManipulation,
                    detail: format!(
                        "network state mismatch: expected {}, got {}",
                        golden.state.describe(),
                        outcome.state.describe()
                    ),
                };
            }
            Verdict::Pass
        }
    }
}

/// Maps a sandbox error onto the paper's error taxonomy.
pub fn classify_error(error: &SandboxError) -> FaultKind {
    match error {
        // A reply with no code block at all is treated as a malformed
        // (unparseable) program.
        SandboxError::NoCode => FaultKind::Syntax,
        SandboxError::StateMismatch { .. } => FaultKind::OperationError,
        SandboxError::Script(e) => classify_script_error(e),
        SandboxError::Sql(e) => classify_sql_error(e),
    }
}

fn classify_script_error(error: &ScriptError) -> FaultKind {
    if error.is_syntax() {
        FaultKind::Syntax
    } else if error.is_missing_attribute() {
        FaultKind::ImaginaryAttribute
    } else if error.is_unknown_callable() {
        FaultKind::ImaginaryFunction
    } else if error.is_argument_error() {
        FaultKind::ArgumentError
    } else {
        FaultKind::OperationError
    }
}

fn classify_sql_error(error: &SqlError) -> FaultKind {
    match error {
        SqlError::Lex { .. } | SqlError::Parse { .. } => FaultKind::Syntax,
        SqlError::UnknownColumn(_) | SqlError::UnknownTable(_) => FaultKind::ImaginaryAttribute,
        SqlError::UnknownFunction(_) => FaultKind::ImaginaryFunction,
        SqlError::Arity { .. } => FaultKind::ArgumentError,
        SqlError::Type(_) | SqlError::Execution(_) => FaultKind::OperationError,
    }
}

fn truncate(text: &str) -> String {
    const LIMIT: usize = 120;
    if text.chars().count() <= LIMIT {
        text.to_string()
    } else {
        let prefix: String = text.chars().take(LIMIT).collect();
        format!("{prefix}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{NetworkState, OutputValue, ScriptValue};
    use netgraph::{attrs, Graph};

    fn golden() -> Outcome {
        let mut g = Graph::directed();
        g.add_edge("a", "b", attrs([("bytes", 10i64)]));
        Outcome {
            value: OutputValue::Script(ScriptValue::Int(2)),
            state: NetworkState::Graph(g),
            printed: vec![],
        }
    }

    #[test]
    fn pass_and_value_state_mismatches() {
        let g = golden();
        assert!(evaluate(&Ok(g.clone()), &g).passed());

        let mut wrong_value = g.clone();
        wrong_value.value = OutputValue::Script(ScriptValue::Int(3));
        let v = evaluate(&Ok(wrong_value), &g);
        assert_eq!(v.category(), Some(FaultKind::WrongCalculation));
        assert!(v.detail().unwrap().contains("result mismatch"));

        let mut wrong_state = g.clone();
        if let NetworkState::Graph(graph) = &mut wrong_state.state {
            graph.add_node("extra", Default::default());
        }
        let v = evaluate(&Ok(wrong_state), &g);
        assert_eq!(v.category(), Some(FaultKind::WrongManipulation));
    }

    #[test]
    fn execution_errors_map_to_paper_categories() {
        let g = golden();
        let cases: Vec<(SandboxError, FaultKind)> = vec![
            (SandboxError::NoCode, FaultKind::Syntax),
            (
                SandboxError::Script(ScriptError::Syntax {
                    line: 1,
                    message: "x".into(),
                }),
                FaultKind::Syntax,
            ),
            (
                SandboxError::Script(ScriptError::MissingAttribute {
                    owner: "node a".into(),
                    key: "capacity".into(),
                }),
                FaultKind::ImaginaryAttribute,
            ),
            (
                SandboxError::Script(ScriptError::AttributeError {
                    type_name: "graph".into(),
                    attr: "frobnicate".into(),
                }),
                FaultKind::ImaginaryFunction,
            ),
            (
                SandboxError::Script(ScriptError::ArgumentError {
                    function: "ip_prefix".into(),
                    message: "m".into(),
                }),
                FaultKind::ArgumentError,
            ),
            (
                SandboxError::Script(ScriptError::Runtime("division by zero".into())),
                FaultKind::OperationError,
            ),
            (
                SandboxError::Sql(SqlError::UnknownColumn("latency".into())),
                FaultKind::ImaginaryAttribute,
            ),
            (
                SandboxError::Sql(SqlError::UnknownFunction("TOTAL".into())),
                FaultKind::ImaginaryFunction,
            ),
            (
                SandboxError::Sql(SqlError::Parse {
                    position: 0,
                    message: "m".into(),
                }),
                FaultKind::Syntax,
            ),
            (
                SandboxError::Sql(SqlError::Execution("division by zero".into())),
                FaultKind::OperationError,
            ),
        ];
        for (error, expected) in cases {
            let verdict = evaluate(&Err(error.clone()), &g);
            assert_eq!(verdict.category(), Some(expected), "error {error:?}");
            assert!(!verdict.passed());
        }
    }

    #[test]
    fn verdict_display_and_truncation() {
        let g = golden();
        let long_value = Outcome {
            value: OutputValue::Text("x".repeat(500)),
            state: g.state.clone(),
            printed: vec![],
        };
        let v = evaluate(&Ok(long_value), &g);
        assert!(v.to_string().starts_with("FAIL"));
        assert!(v.detail().unwrap().len() < 400);
        assert_eq!(Verdict::Pass.to_string(), "PASS");
    }
}
