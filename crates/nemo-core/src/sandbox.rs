//! The execution sandbox (component 5 of the paper's Figure 2).
//!
//! LLM-generated code never touches the live network: it runs here against a
//! *copy* of the network state, with an interpreter step budget as a
//! runaway-loop guard, and the caller decides afterwards whether to sync the
//! mutated state back. Each backend uses its own engine: GraphScript over a
//! graph (NetworkX approach), GraphScript over dataframes (pandas approach),
//! the SQL engine (SQL approach). The strawman baseline has nothing to
//! execute — the reply *is* the answer.

use crate::backend::Backend;
use crate::llm::{extract_code, LlmResponse};
use crate::state::{NetworkState, Outcome, OutputValue, ScriptValue};
use graphscript::{Interpreter, ScriptError, Value};
use sqlengine::{QueryResult, SqlError};
use std::fmt;

/// Why the sandbox could not produce an outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum SandboxError {
    /// The LLM reply contained no code block to execute.
    NoCode,
    /// The reply's code targeted a different representation than the state
    /// provided (an internal wiring error, not an LLM failure).
    StateMismatch {
        /// The backend requested.
        backend: Backend,
        /// A description of the state that was provided.
        state: String,
    },
    /// The GraphScript program failed to parse or run.
    Script(ScriptError),
    /// The SQL script failed to parse or run.
    Sql(SqlError),
}

impl fmt::Display for SandboxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SandboxError::NoCode => write!(f, "the reply contained no code block"),
            SandboxError::StateMismatch { backend, state } => {
                write!(f, "backend {backend} cannot execute against {state}")
            }
            SandboxError::Script(e) => write!(f, "{e}"),
            SandboxError::Sql(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SandboxError {}

/// Interpreter step budget applied to GraphScript programs (runaway-loop
/// guard; generous for benchmark-sized networks).
pub const SANDBOX_STEP_LIMIT: u64 = 20_000_000;

/// Executes an LLM reply against a copy of `state`.
///
/// For code-generation backends the first fenced code block is extracted
/// and executed; for the strawman the reply text is the outcome value and
/// the state is returned untouched.
pub fn execute_response(
    backend: Backend,
    response: &LlmResponse,
    state: &NetworkState,
) -> Result<Outcome, SandboxError> {
    match backend {
        Backend::Strawman => Ok(Outcome {
            value: OutputValue::Text(response.text.clone()),
            state: state.clone(),
            printed: Vec::new(),
        }),
        _ => {
            let code = extract_code(&response.text).ok_or(SandboxError::NoCode)?;
            execute_code(backend, &code, state)
        }
    }
}

/// Executes a program (GraphScript or SQL, depending on the backend) against
/// a copy of `state`.
pub fn execute_code(
    backend: Backend,
    code: &str,
    state: &NetworkState,
) -> Result<Outcome, SandboxError> {
    match backend {
        Backend::NetworkX | Backend::Strawman => {
            let graph = match state {
                NetworkState::Graph(g) => g.clone(),
                other => {
                    return Err(SandboxError::StateMismatch {
                        backend,
                        state: other.describe(),
                    })
                }
            };
            let graph_value = Value::graph(graph);
            let mut interp = Interpreter::new().with_step_limit(SANDBOX_STEP_LIMIT);
            interp.set_global("G", graph_value.clone());
            let run = interp.run(code).map_err(SandboxError::Script)?;
            let final_graph = match &graph_value {
                Value::Graph(g) => g.borrow().clone(),
                _ => unreachable!("graph global is a graph"),
            };
            Ok(Outcome {
                value: OutputValue::Script(ScriptValue::from(&run.value)),
                state: NetworkState::Graph(final_graph),
                printed: run.output,
            })
        }
        Backend::Pandas => {
            let (nodes, edges) = match state {
                NetworkState::Frames { nodes, edges } => (nodes.clone(), edges.clone()),
                other => {
                    return Err(SandboxError::StateMismatch {
                        backend,
                        state: other.describe(),
                    })
                }
            };
            let nodes_value = Value::frame(nodes);
            let edges_value = Value::frame(edges);
            let mut interp = Interpreter::new().with_step_limit(SANDBOX_STEP_LIMIT);
            interp.set_global("nodes", nodes_value.clone());
            interp.set_global("edges", edges_value.clone());
            let run = interp.run(code).map_err(SandboxError::Script)?;
            let final_nodes = match &nodes_value {
                Value::Frame(df) => df.borrow().clone(),
                _ => unreachable!(),
            };
            let final_edges = match &edges_value {
                Value::Frame(df) => df.borrow().clone(),
                _ => unreachable!(),
            };
            Ok(Outcome {
                value: OutputValue::Script(ScriptValue::from(&run.value)),
                state: NetworkState::Frames {
                    nodes: final_nodes,
                    edges: final_edges,
                },
                printed: run.output,
            })
        }
        Backend::Sql => {
            let mut db = match state {
                NetworkState::Database(db) => db.clone(),
                other => {
                    return Err(SandboxError::StateMismatch {
                        backend,
                        state: other.describe(),
                    })
                }
            };
            let results = db.execute_script(code).map_err(SandboxError::Sql)?;
            let last_rows = results.iter().rev().find_map(|r| match r {
                QueryResult::Rows(df) => Some(df.clone()),
                QueryResult::Affected(_) => None,
            });
            Ok(Outcome {
                value: match last_rows {
                    Some(df) => OutputValue::Table(df),
                    None => OutputValue::None,
                },
                state: NetworkState::Database(db),
                printed: Vec::new(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataframe::{Column, DataFrame};
    use netgraph::{attrs, Graph};
    use sqlengine::Database;

    fn graph_state() -> NetworkState {
        let mut g = Graph::directed();
        g.add_edge("a", "b", attrs([("bytes", 10i64)]));
        g.add_edge("b", "c", attrs([("bytes", 20i64)]));
        NetworkState::Graph(g)
    }

    fn frame_state() -> NetworkState {
        NetworkState::Frames {
            nodes: DataFrame::from_columns(vec![(
                "id".to_string(),
                Column::from_values(["a", "b", "c"]),
            )])
            .unwrap(),
            edges: DataFrame::from_columns(vec![
                ("source".to_string(), Column::from_values(["a", "b"])),
                ("target".to_string(), Column::from_values(["b", "c"])),
                ("bytes".to_string(), Column::from_values([10i64, 20])),
            ])
            .unwrap(),
        }
    }

    fn db_state() -> NetworkState {
        let mut db = Database::new();
        if let NetworkState::Frames { nodes, edges } = frame_state() {
            db.create_table("nodes", nodes);
            db.create_table("edges", edges);
        }
        NetworkState::Database(db)
    }

    #[test]
    fn networkx_execution_mutates_a_copy() {
        let state = graph_state();
        let outcome = execute_code(
            Backend::NetworkX,
            "G.set_node_attr(\"a\", \"color\", \"red\")\nresult = G.number_of_edges()",
            &state,
        )
        .unwrap();
        assert!(outcome
            .value
            .approx_eq(&OutputValue::Script(ScriptValue::Int(2))));
        // The sandbox ran against a copy: the input state is untouched.
        if let NetworkState::Graph(g) = &state {
            assert!(g.get_node_attr_opt("a", "color").is_none());
        }
        if let NetworkState::Graph(g) = &outcome.state {
            assert!(g.get_node_attr_opt("a", "color").is_some());
        }
    }

    #[test]
    fn pandas_execution_returns_final_frames() {
        let outcome = execute_code(
            Backend::Pandas,
            "edges.delete_rows(\"bytes\", \"<\", 15)\nresult = edges.n_rows()",
            &frame_state(),
        )
        .unwrap();
        assert!(outcome
            .value
            .approx_eq(&OutputValue::Script(ScriptValue::Int(1))));
        if let NetworkState::Frames { edges, .. } = &outcome.state {
            assert_eq!(edges.n_rows(), 1);
        }
    }

    #[test]
    fn sql_execution_returns_last_select_and_mutated_db() {
        let outcome = execute_code(
            Backend::Sql,
            "UPDATE edges SET bytes = bytes * 2; SELECT SUM(bytes) AS total FROM edges;",
            &db_state(),
        )
        .unwrap();
        match &outcome.value {
            OutputValue::Table(df) => {
                assert_eq!(df.value(0, "total").unwrap().as_f64(), Some(60.0))
            }
            other => panic!("unexpected value {other:?}"),
        }
        if let NetworkState::Database(db) = &outcome.state {
            let mut db = db.clone();
            let total = db
                .execute("SELECT SUM(bytes) AS t FROM edges")
                .unwrap()
                .rows()
                .unwrap()
                .value(0, "t")
                .unwrap()
                .as_f64();
            assert_eq!(total, Some(60.0));
        }
    }

    #[test]
    fn strawman_reply_is_the_outcome() {
        let response = LlmResponse {
            text: "The total is 30 bytes.".to_string(),
        };
        let outcome = execute_response(Backend::Strawman, &response, &graph_state()).unwrap();
        assert!(outcome
            .value
            .approx_eq(&OutputValue::Text("the total is 30 bytes.".to_string())));
    }

    #[test]
    fn code_extraction_and_error_propagation() {
        let response = LlmResponse {
            text: "Sure!\n```graphscript\nresult = G.number_of_nodes()\n```".to_string(),
        };
        let outcome = execute_response(Backend::NetworkX, &response, &graph_state()).unwrap();
        assert!(outcome
            .value
            .approx_eq(&OutputValue::Script(ScriptValue::Int(3))));

        let no_code = LlmResponse {
            text: "I cannot help with that.".to_string(),
        };
        assert_eq!(
            execute_response(Backend::NetworkX, &no_code, &graph_state()).unwrap_err(),
            SandboxError::NoCode
        );

        let err =
            execute_code(Backend::NetworkX, "result = G.frobnicate()", &graph_state()).unwrap_err();
        assert!(matches!(err, SandboxError::Script(_)));
        let err = execute_code(Backend::Sql, "SELEC 1", &db_state()).unwrap_err();
        assert!(matches!(err, SandboxError::Sql(_)));
    }

    #[test]
    fn state_mismatch_is_reported() {
        let err = execute_code(Backend::Sql, "SELECT 1", &graph_state()).unwrap_err();
        assert!(matches!(err, SandboxError::StateMismatch { .. }));
        assert!(err.to_string().contains("sql"));
    }

    #[test]
    fn runaway_loops_are_stopped() {
        let err =
            execute_code(Backend::NetworkX, "while true { x = 1 }", &graph_state()).unwrap_err();
        assert!(matches!(
            err,
            SandboxError::Script(ScriptError::StepLimit(_))
        ));
    }
}
