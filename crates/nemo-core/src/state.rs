//! Network state snapshots and execution outcomes.
//!
//! The execution sandbox runs a program against a *state* (the network in
//! the representation of the chosen backend) and produces an *outcome* (the
//! program's result value plus the possibly-mutated state). The results
//! evaluator compares the outcome of the LLM-generated program against the
//! outcome of the golden program — both the value and the final state must
//! match, which is how the paper's "graphs are not identical" failures are
//! detected.

use dataframe::DataFrame;
use graphscript::Value;
use netgraph::{graphs_approx_eq, Graph};
use sqlengine::Database;
use std::collections::BTreeMap;
use std::fmt;

/// The network in one backend's representation.
#[derive(Debug, Clone)]
pub enum NetworkState {
    /// A property graph (NetworkX approach and strawman baseline).
    Graph(Graph),
    /// Node and edge dataframes (pandas approach).
    Frames {
        /// The node frame.
        nodes: DataFrame,
        /// The edge frame.
        edges: DataFrame,
    },
    /// Node and edge SQL tables (SQL approach).
    Database(Database),
}

impl NetworkState {
    /// True when both states use the same representation and are
    /// approximately equal (numeric tolerance, row-order insensitive for
    /// tables).
    pub fn approx_eq(&self, other: &NetworkState) -> bool {
        match (self, other) {
            (NetworkState::Graph(a), NetworkState::Graph(b)) => graphs_approx_eq(a, b),
            (
                NetworkState::Frames {
                    nodes: an,
                    edges: ae,
                },
                NetworkState::Frames {
                    nodes: bn,
                    edges: be,
                },
            ) => an.approx_eq_unordered(bn) && ae.approx_eq_unordered(be),
            (NetworkState::Database(a), NetworkState::Database(b)) => a.approx_eq(b),
            _ => false,
        }
    }

    /// A one-line description used in logs.
    pub fn describe(&self) -> String {
        match self {
            NetworkState::Graph(g) => format!(
                "graph({} nodes, {} edges)",
                g.number_of_nodes(),
                g.number_of_edges()
            ),
            NetworkState::Frames { nodes, edges } => {
                format!(
                    "frames({} node rows, {} edge rows)",
                    nodes.n_rows(),
                    edges.n_rows()
                )
            }
            NetworkState::Database(db) => format!("database({} tables)", db.table_names().len()),
        }
    }
}

/// A self-contained snapshot of a GraphScript runtime value.
///
/// `graphscript::Value` uses `Rc<RefCell<...>>` reference semantics inside
/// the interpreter, which makes anything holding one `!Send`. The sandbox
/// detaches results into this deep-copied tree at its boundary so outcomes
/// (and everything built from them — golden answers, the benchmark suite)
/// can be shared across worker threads.
#[derive(Debug, Clone, PartialEq)]
pub enum ScriptValue {
    /// `null` / `None`
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// String.
    Str(String),
    /// List snapshot.
    List(Vec<ScriptValue>),
    /// Dictionary snapshot (string keys, deterministically ordered).
    Dict(BTreeMap<String, ScriptValue>),
    /// A property graph returned as the program's result (boxed: the
    /// interned graph core is a wide struct, and snapshots are cloned
    /// throughout the benchmark matrix).
    Graph(Box<Graph>),
    /// A dataframe returned as the program's result.
    Frame(DataFrame),
}

impl ScriptValue {
    /// Numeric view, mirroring `graphscript::Value::as_f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ScriptValue::Int(i) => Some(*i as f64),
            ScriptValue::Float(f) => Some(*f),
            ScriptValue::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Deep equality with numeric coercion and float tolerance, mirroring
    /// `graphscript::Value::approx_eq` so detaching values at the sandbox
    /// boundary does not change any evaluator verdict.
    pub fn approx_eq(&self, other: &ScriptValue) -> bool {
        match (self, other) {
            (ScriptValue::Null, ScriptValue::Null) => true,
            (ScriptValue::Str(a), ScriptValue::Str(b)) => a == b,
            (ScriptValue::Bool(a), ScriptValue::Bool(b)) => a == b,
            (ScriptValue::List(a), ScriptValue::List(b)) => {
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.approx_eq(y))
            }
            (ScriptValue::Dict(a), ScriptValue::Dict(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .all(|(k, v)| b.get(k).map(|o| v.approx_eq(o)).unwrap_or(false))
            }
            (ScriptValue::Graph(a), ScriptValue::Graph(b)) => graphs_approx_eq(a, b),
            (ScriptValue::Frame(a), ScriptValue::Frame(b)) => a.approx_eq(b),
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => {
                    let diff = (a - b).abs();
                    diff <= 1e-9 || diff <= 1e-9 * a.abs().max(b.abs())
                }
                _ => false,
            },
        }
    }
}

impl From<&Value> for ScriptValue {
    /// Deep snapshot of an interpreter value. Function values cannot
    /// meaningfully outlive the interpreter; they snapshot to their display
    /// form.
    fn from(value: &Value) -> Self {
        match value {
            Value::Null => ScriptValue::Null,
            Value::Bool(b) => ScriptValue::Bool(*b),
            Value::Int(i) => ScriptValue::Int(*i),
            Value::Float(f) => ScriptValue::Float(*f),
            Value::Str(s) => ScriptValue::Str(s.clone()),
            Value::List(items) => {
                ScriptValue::List(items.borrow().iter().map(ScriptValue::from).collect())
            }
            Value::Dict(map) => ScriptValue::Dict(
                map.borrow()
                    .iter()
                    .map(|(k, v)| (k.clone(), ScriptValue::from(v)))
                    .collect(),
            ),
            Value::Graph(g) => ScriptValue::Graph(Box::new(g.borrow().clone())),
            Value::Frame(df) => ScriptValue::Frame(df.borrow().clone()),
            Value::Function(_) => ScriptValue::Str(value.to_string()),
        }
    }
}

impl fmt::Display for ScriptValue {
    /// Mirrors `graphscript::Value`'s display formats exactly, so rendered
    /// answers (and the strawman's golden direct answers derived from them)
    /// are unchanged by the snapshot.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScriptValue::Null => write!(f, "null"),
            ScriptValue::Bool(b) => write!(f, "{b}"),
            ScriptValue::Int(i) => write!(f, "{i}"),
            ScriptValue::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            ScriptValue::Str(s) => write!(f, "{s}"),
            ScriptValue::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            ScriptValue::Dict(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
            ScriptValue::Graph(g) => {
                write!(
                    f,
                    "<graph {} nodes, {} edges>",
                    g.number_of_nodes(),
                    g.number_of_edges()
                )
            }
            ScriptValue::Frame(df) => {
                write!(f, "<dataframe {} rows x {} cols>", df.n_rows(), df.n_cols())
            }
        }
    }
}

/// The value a program produced.
#[derive(Debug, Clone)]
pub enum OutputValue {
    /// The program produced no explicit value.
    None,
    /// A detached GraphScript value (NetworkX / pandas backends).
    Script(ScriptValue),
    /// A result table (SQL backend `SELECT`s).
    Table(DataFrame),
    /// Free text (the strawman baseline's direct answer).
    Text(String),
}

impl OutputValue {
    /// Approximate equality between two output values of the same shape.
    /// Text answers are compared after whitespace normalization.
    pub fn approx_eq(&self, other: &OutputValue) -> bool {
        match (self, other) {
            (OutputValue::None, OutputValue::None) => true,
            (OutputValue::Script(a), OutputValue::Script(b)) => a.approx_eq(b),
            (OutputValue::Table(a), OutputValue::Table(b)) => a.approx_eq_unordered(b),
            (OutputValue::Text(a), OutputValue::Text(b)) => normalize_text(a) == normalize_text(b),
            // A script value can match a text answer when their normalized
            // renderings agree (used when comparing the strawman's direct
            // answer against a golden program's value).
            (OutputValue::Script(a), OutputValue::Text(b))
            | (OutputValue::Text(b), OutputValue::Script(a)) => {
                normalize_text(&a.to_string()) == normalize_text(b)
            }
            _ => false,
        }
    }

    /// Renders the value for logs and the UX display.
    pub fn render(&self) -> String {
        match self {
            OutputValue::None => "(no value)".to_string(),
            OutputValue::Script(v) => v.to_string(),
            OutputValue::Table(df) => df.to_string(),
            OutputValue::Text(t) => t.clone(),
        }
    }
}

/// Whitespace- and case-insensitive canonical form used when comparing
/// free-text answers (and by the simulated LLM's query matching).
pub(crate) fn normalize_text(text: &str) -> String {
    text.split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
        .to_lowercase()
}

/// The result of executing one program in the sandbox.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The value the program produced.
    pub value: OutputValue,
    /// The network state after execution (programs may mutate it).
    pub state: NetworkState,
    /// Anything the program printed.
    pub printed: Vec<String>,
}

impl Outcome {
    /// True when both the value and the final state match.
    pub fn matches(&self, other: &Outcome) -> bool {
        self.value.approx_eq(&other.value) && self.state.approx_eq(&other.state)
    }
}

// Outcomes are shared across benchmark worker threads (golden answers live
// in the suite); this fails to compile if a non-Send/Sync type sneaks back
// into the state tree.
const _: fn() = || {
    fn assert_sync_send<T: Send + Sync>() {}
    assert_sync_send::<Outcome>();
    assert_sync_send::<NetworkState>();
    assert_sync_send::<ScriptValue>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use dataframe::Column;
    use netgraph::attrs;

    fn graph_state() -> NetworkState {
        let mut g = Graph::directed();
        g.add_edge("a", "b", attrs([("bytes", 10i64)]));
        NetworkState::Graph(g)
    }

    #[test]
    fn state_comparison_same_and_cross_representation() {
        let a = graph_state();
        let b = graph_state();
        assert!(a.approx_eq(&b));
        let mut g = Graph::directed();
        g.add_edge("a", "b", attrs([("bytes", 99i64)]));
        assert!(!a.approx_eq(&NetworkState::Graph(g)));
        let frames = NetworkState::Frames {
            nodes: DataFrame::new(),
            edges: DataFrame::new(),
        };
        assert!(!a.approx_eq(&frames));
        assert!(a.describe().contains("graph"));
        assert!(frames.describe().contains("frames"));
    }

    #[test]
    fn frames_comparison_is_row_order_insensitive() {
        let df =
            DataFrame::from_columns(vec![("x".to_string(), Column::from_values([1i64, 2, 3]))])
                .unwrap();
        let shuffled = df.take(&[2, 0, 1]).unwrap();
        let a = NetworkState::Frames {
            nodes: df.clone(),
            edges: df.clone(),
        };
        let b = NetworkState::Frames {
            nodes: shuffled.clone(),
            edges: shuffled,
        };
        assert!(a.approx_eq(&b));
    }

    #[test]
    fn output_value_comparisons() {
        assert!(OutputValue::Script(ScriptValue::Int(5))
            .approx_eq(&OutputValue::Script(ScriptValue::Float(5.0))));
        assert!(OutputValue::Text("  Hello   World ".into())
            .approx_eq(&OutputValue::Text("hello world".into())));
        assert!(OutputValue::Script(ScriptValue::Int(5)).approx_eq(&OutputValue::Text("5".into())));
        assert!(!OutputValue::Script(ScriptValue::Int(5)).approx_eq(&OutputValue::None));
        assert!(OutputValue::None.approx_eq(&OutputValue::None));
        let t =
            DataFrame::from_columns(vec![("n".to_string(), Column::from_values([1i64]))]).unwrap();
        assert!(OutputValue::Table(t.clone()).approx_eq(&OutputValue::Table(t)));
    }

    #[test]
    fn script_value_snapshot_preserves_rendering_and_equality() {
        // A nested interpreter value snapshots into an equivalent detached
        // tree: same display form, approx-equal element-wise.
        let mut dict = std::collections::BTreeMap::new();
        dict.insert("a".to_string(), Value::Int(1));
        dict.insert("b".to_string(), Value::Float(2.0));
        let live = Value::list(vec![
            Value::dict(dict),
            Value::Str("x".into()),
            Value::Null,
            Value::Bool(true),
        ]);
        let snap = ScriptValue::from(&live);
        assert_eq!(snap.to_string(), live.to_string());
        let again = ScriptValue::from(&live);
        assert!(snap.approx_eq(&again));

        let mut g = Graph::directed();
        g.add_edge("a", "b", attrs([("bytes", 10i64)]));
        let graph_snap = ScriptValue::from(&Value::graph(g.clone()));
        assert!(graph_snap.approx_eq(&ScriptValue::Graph(Box::new(g))));
        assert!(graph_snap.to_string().contains("<graph"));
        assert!(!graph_snap.approx_eq(&ScriptValue::Int(1)));
    }

    #[test]
    fn outcome_matching_requires_value_and_state() {
        let base = Outcome {
            value: OutputValue::Script(ScriptValue::Int(1)),
            state: graph_state(),
            printed: vec![],
        };
        let same = Outcome {
            value: OutputValue::Script(ScriptValue::Float(1.0)),
            state: graph_state(),
            printed: vec!["ignored".into()],
        };
        assert!(base.matches(&same));
        let wrong_value = Outcome {
            value: OutputValue::Script(ScriptValue::Int(2)),
            state: graph_state(),
            printed: vec![],
        };
        assert!(!base.matches(&wrong_value));
    }
}
