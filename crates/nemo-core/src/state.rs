//! Network state snapshots and execution outcomes.
//!
//! The execution sandbox runs a program against a *state* (the network in
//! the representation of the chosen backend) and produces an *outcome* (the
//! program's result value plus the possibly-mutated state). The results
//! evaluator compares the outcome of the LLM-generated program against the
//! outcome of the golden program — both the value and the final state must
//! match, which is how the paper's "graphs are not identical" failures are
//! detected.

use dataframe::DataFrame;
use graphscript::Value;
use netgraph::{graphs_approx_eq, Graph};
use sqlengine::Database;

/// The network in one backend's representation.
#[derive(Debug, Clone)]
pub enum NetworkState {
    /// A property graph (NetworkX approach and strawman baseline).
    Graph(Graph),
    /// Node and edge dataframes (pandas approach).
    Frames {
        /// The node frame.
        nodes: DataFrame,
        /// The edge frame.
        edges: DataFrame,
    },
    /// Node and edge SQL tables (SQL approach).
    Database(Database),
}

impl NetworkState {
    /// True when both states use the same representation and are
    /// approximately equal (numeric tolerance, row-order insensitive for
    /// tables).
    pub fn approx_eq(&self, other: &NetworkState) -> bool {
        match (self, other) {
            (NetworkState::Graph(a), NetworkState::Graph(b)) => graphs_approx_eq(a, b),
            (
                NetworkState::Frames {
                    nodes: an,
                    edges: ae,
                },
                NetworkState::Frames {
                    nodes: bn,
                    edges: be,
                },
            ) => an.approx_eq_unordered(bn) && ae.approx_eq_unordered(be),
            (NetworkState::Database(a), NetworkState::Database(b)) => a.approx_eq(b),
            _ => false,
        }
    }

    /// A one-line description used in logs.
    pub fn describe(&self) -> String {
        match self {
            NetworkState::Graph(g) => format!(
                "graph({} nodes, {} edges)",
                g.number_of_nodes(),
                g.number_of_edges()
            ),
            NetworkState::Frames { nodes, edges } => {
                format!(
                    "frames({} node rows, {} edge rows)",
                    nodes.n_rows(),
                    edges.n_rows()
                )
            }
            NetworkState::Database(db) => format!("database({} tables)", db.table_names().len()),
        }
    }
}

/// The value a program produced.
#[derive(Debug, Clone)]
pub enum OutputValue {
    /// The program produced no explicit value.
    None,
    /// A GraphScript value (NetworkX / pandas backends).
    Script(Value),
    /// A result table (SQL backend `SELECT`s).
    Table(DataFrame),
    /// Free text (the strawman baseline's direct answer).
    Text(String),
}

impl OutputValue {
    /// Approximate equality between two output values of the same shape.
    /// Text answers are compared after whitespace normalization.
    pub fn approx_eq(&self, other: &OutputValue) -> bool {
        match (self, other) {
            (OutputValue::None, OutputValue::None) => true,
            (OutputValue::Script(a), OutputValue::Script(b)) => a.approx_eq(b),
            (OutputValue::Table(a), OutputValue::Table(b)) => a.approx_eq_unordered(b),
            (OutputValue::Text(a), OutputValue::Text(b)) => normalize_text(a) == normalize_text(b),
            // A script value can match a text answer when their normalized
            // renderings agree (used when comparing the strawman's direct
            // answer against a golden program's value).
            (OutputValue::Script(a), OutputValue::Text(b))
            | (OutputValue::Text(b), OutputValue::Script(a)) => {
                normalize_text(&a.to_string()) == normalize_text(b)
            }
            _ => false,
        }
    }

    /// Renders the value for logs and the UX display.
    pub fn render(&self) -> String {
        match self {
            OutputValue::None => "(no value)".to_string(),
            OutputValue::Script(v) => v.to_string(),
            OutputValue::Table(df) => df.to_string(),
            OutputValue::Text(t) => t.clone(),
        }
    }
}

/// Whitespace- and case-insensitive canonical form used when comparing
/// free-text answers (and by the simulated LLM's query matching).
pub(crate) fn normalize_text(text: &str) -> String {
    text.split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
        .to_lowercase()
}

/// The result of executing one program in the sandbox.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The value the program produced.
    pub value: OutputValue,
    /// The network state after execution (programs may mutate it).
    pub state: NetworkState,
    /// Anything the program printed.
    pub printed: Vec<String>,
}

impl Outcome {
    /// True when both the value and the final state match.
    pub fn matches(&self, other: &Outcome) -> bool {
        self.value.approx_eq(&other.value) && self.state.approx_eq(&other.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataframe::Column;
    use netgraph::attrs;

    fn graph_state() -> NetworkState {
        let mut g = Graph::directed();
        g.add_edge("a", "b", attrs([("bytes", 10i64)]));
        NetworkState::Graph(g)
    }

    #[test]
    fn state_comparison_same_and_cross_representation() {
        let a = graph_state();
        let b = graph_state();
        assert!(a.approx_eq(&b));
        let mut g = Graph::directed();
        g.add_edge("a", "b", attrs([("bytes", 99i64)]));
        assert!(!a.approx_eq(&NetworkState::Graph(g)));
        let frames = NetworkState::Frames {
            nodes: DataFrame::new(),
            edges: DataFrame::new(),
        };
        assert!(!a.approx_eq(&frames));
        assert!(a.describe().contains("graph"));
        assert!(frames.describe().contains("frames"));
    }

    #[test]
    fn frames_comparison_is_row_order_insensitive() {
        let df =
            DataFrame::from_columns(vec![("x".to_string(), Column::from_values([1i64, 2, 3]))])
                .unwrap();
        let shuffled = df.take(&[2, 0, 1]).unwrap();
        let a = NetworkState::Frames {
            nodes: df.clone(),
            edges: df.clone(),
        };
        let b = NetworkState::Frames {
            nodes: shuffled.clone(),
            edges: shuffled,
        };
        assert!(a.approx_eq(&b));
    }

    #[test]
    fn output_value_comparisons() {
        assert!(
            OutputValue::Script(Value::Int(5)).approx_eq(&OutputValue::Script(Value::Float(5.0)))
        );
        assert!(OutputValue::Text("  Hello   World ".into())
            .approx_eq(&OutputValue::Text("hello world".into())));
        assert!(OutputValue::Script(Value::Int(5)).approx_eq(&OutputValue::Text("5".into())));
        assert!(!OutputValue::Script(Value::Int(5)).approx_eq(&OutputValue::None));
        assert!(OutputValue::None.approx_eq(&OutputValue::None));
        let t =
            DataFrame::from_columns(vec![("n".to_string(), Column::from_values([1i64]))]).unwrap();
        assert!(OutputValue::Table(t.clone()).approx_eq(&OutputValue::Table(t)));
    }

    #[test]
    fn outcome_matching_requires_value_and_state() {
        let base = Outcome {
            value: OutputValue::Script(Value::Int(1)),
            state: graph_state(),
            printed: vec![],
        };
        let same = Outcome {
            value: OutputValue::Script(Value::Float(1.0)),
            state: graph_state(),
            printed: vec!["ignored".into()],
        };
        assert!(base.matches(&same));
        let wrong_value = Outcome {
            value: OutputValue::Script(Value::Int(2)),
            state: graph_state(),
            printed: vec![],
        };
        assert!(!base.matches(&wrong_value));
    }
}
