//! Deterministic generator for a MALT example topology.
//!
//! The paper converts Google's public MALT example dataset into "a directed
//! graph with 5493 nodes and 6424 edges" covering packet switches, chassis,
//! ports and their containment/control relationships. The dataset itself is
//! not redistributable here, so this generator builds a topology with the
//! same entity kinds, the same relationship kinds, the same naming scheme as
//! the paper's example query (`ju1.a1.m1.s2c1`), and a very similar scale
//! (the default preset yields 5330 entities and exactly 6424 relationships).

use crate::entity::{Entity, EntityKind};
use crate::model::MaltModel;
use crate::relationship::{Relationship, RelationshipKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of the generated topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaltConfig {
    /// Number of datacenters (`ju1`, `ju2`, ...).
    pub datacenters: usize,
    /// Aggregation pods per datacenter (`ju1.a1`, ...).
    pub pods_per_datacenter: usize,
    /// Racks per pod (`ju1.a1.r1`, ...).
    pub racks_per_pod: usize,
    /// Chassis per rack (`ju1.a1.m1`, ... — numbered within the pod).
    pub chassis_per_rack: usize,
    /// Packet switches per chassis (`ju1.a1.m1.s1c1`, ...).
    pub switches_per_chassis: usize,
    /// Ports per packet switch (`ju1.a1.m1.s1c1.p1`, ...).
    pub ports_per_switch: usize,
    /// Control points per pod.
    pub control_points_per_pod: usize,
    /// Number of inter-switch physical links (port-to-port `connected_to`
    /// relationships) added on top of the containment tree.
    pub physical_links: usize,
    /// RNG seed for capacities and link placement.
    pub seed: u64,
}

impl Default for MaltConfig {
    fn default() -> Self {
        // Preset sized to approximate the paper's example dataset
        // (5493 nodes / 6424 edges): 5330 entities / 6424 relationships.
        MaltConfig {
            datacenters: 2,
            pods_per_datacenter: 4,
            racks_per_pod: 8,
            chassis_per_rack: 2,
            switches_per_chassis: 4,
            ports_per_switch: 9,
            control_points_per_pod: 1,
            physical_links: 584,
            seed: 2023,
        }
    }
}

impl MaltConfig {
    /// A small configuration for unit tests and doc examples.
    pub fn tiny() -> Self {
        MaltConfig {
            datacenters: 1,
            pods_per_datacenter: 2,
            racks_per_pod: 2,
            chassis_per_rack: 1,
            switches_per_chassis: 2,
            ports_per_switch: 3,
            control_points_per_pod: 1,
            physical_links: 4,
            seed: 1,
        }
    }
}

/// Generates a topology from a configuration.
pub fn generate(config: &MaltConfig) -> MaltModel {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut model = MaltModel::new();
    let mut all_ports: Vec<String> = Vec::new();
    let contains = |model: &mut MaltModel, parent: &str, child: &str| {
        model.add_relationship(Relationship::new(parent, child, RelationshipKind::Contains));
    };

    for d in 1..=config.datacenters {
        let dc = format!("ju{d}");
        model.add_entity(
            Entity::new(&dc, EntityKind::Datacenter).with_attr("region", format!("region-{d}")),
        );
        for p in 1..=config.pods_per_datacenter {
            let pod = format!("{dc}.a{p}");
            model.add_entity(Entity::new(&pod, EntityKind::Pod).with_attr("tier", 2i64));
            contains(&mut model, &dc, &pod);

            // Control points for the pod.
            let mut pod_switches: Vec<String> = Vec::new();
            let mut chassis_index = 0usize;
            for r in 1..=config.racks_per_pod {
                let rack = format!("{pod}.r{r}");
                model.add_entity(
                    Entity::new(&rack, EntityKind::Rack).with_attr("position", r as i64),
                );
                contains(&mut model, &pod, &rack);
                for _ in 0..config.chassis_per_rack {
                    chassis_index += 1;
                    let chassis = format!("{pod}.m{chassis_index}");
                    // Chassis capacity is the sum of its switch capacities;
                    // fill it in after switches are generated.
                    let mut chassis_capacity = 0i64;
                    let mut switch_names = Vec::new();
                    for s in 1..=config.switches_per_chassis {
                        let switch = format!("{chassis}.s{s}c1");
                        let capacity = *[400i64, 800, 1600, 3200]
                            .get(rng.gen_range(0..4usize))
                            .expect("non-empty");
                        chassis_capacity += capacity;
                        model.add_entity(
                            Entity::new(&switch, EntityKind::PacketSwitch)
                                .with_attr("capacity_gbps", capacity)
                                .with_attr(
                                    "vendor",
                                    ["arista", "juniper", "cisco"][rng.gen_range(0..3usize)],
                                )
                                .with_attr("role", if s == 1 { "spine" } else { "leaf" }),
                        );
                        switch_names.push(switch.clone());
                        pod_switches.push(switch.clone());
                        for q in 1..=config.ports_per_switch {
                            let port = format!("{switch}.p{q}");
                            let speed = capacity / config.ports_per_switch.max(1) as i64;
                            model.add_entity(
                                Entity::new(&port, EntityKind::Port)
                                    .with_attr("speed_gbps", speed.max(10))
                                    .with_attr("index", q as i64),
                            );
                            all_ports.push(port);
                        }
                    }
                    model.add_entity(
                        Entity::new(&chassis, EntityKind::Chassis)
                            .with_attr("capacity_gbps", chassis_capacity)
                            .with_attr("rack", rack.clone()),
                    );
                    contains(&mut model, &rack, &chassis);
                    for switch in &switch_names {
                        contains(&mut model, &chassis, switch);
                        for q in 1..=config.ports_per_switch {
                            contains(&mut model, switch, &format!("{switch}.p{q}"));
                        }
                    }
                }
            }
            for c in 1..=config.control_points_per_pod {
                let cp = format!("{pod}.cp{c}");
                model.add_entity(
                    Entity::new(&cp, EntityKind::ControlPoint).with_attr("software", "sdn-ctl-3.2"),
                );
                contains(&mut model, &pod, &cp);
                for switch in &pod_switches {
                    model.add_relationship(Relationship::new(
                        &cp,
                        switch,
                        RelationshipKind::Controls,
                    ));
                }
            }
        }
    }

    // Physical port-to-port links on top of the containment tree. Endpoint
    // pairs are deduplicated so the graph export preserves the edge count.
    let mut added = 0usize;
    let mut attempts = 0usize;
    let mut used: std::collections::BTreeSet<(usize, usize)> = std::collections::BTreeSet::new();
    while added < config.physical_links
        && attempts < config.physical_links * 20
        && all_ports.len() >= 2
    {
        attempts += 1;
        let a = rng.gen_range(0..all_ports.len());
        let b = rng.gen_range(0..all_ports.len());
        if a == b || used.contains(&(a, b)) {
            continue;
        }
        used.insert((a, b));
        if model.add_relationship(Relationship::new(
            &all_ports[a],
            &all_ports[b],
            RelationshipKind::ConnectedTo,
        )) {
            added += 1;
        }
    }

    model
}

/// Generates the default example topology (the stand-in for the paper's
/// 5493-node / 6424-edge MALT example dataset).
pub fn example_model() -> MaltModel {
    generate(&MaltConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_model_shape() {
        let m = generate(&MaltConfig::tiny());
        // 1 dc + 2 pods + 4 racks + 4 chassis + 8 switches + 24 ports + 2 cps
        assert_eq!(m.entity_count(), 45);
        assert_eq!(m.entities_of_kind(EntityKind::PacketSwitch).len(), 8);
        assert_eq!(m.entities_of_kind(EntityKind::Port).len(), 24);
        // Every switch has a containing chassis.
        for sw in m.entities_of_kind(EntityKind::PacketSwitch) {
            assert_eq!(m.parent(&sw.name).unwrap().kind, EntityKind::Chassis);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&MaltConfig::tiny());
        let b = generate(&MaltConfig::tiny());
        assert_eq!(a, b);
    }

    #[test]
    fn default_preset_approximates_paper_scale() {
        let m = example_model();
        // Paper: 5493 nodes / 6424 edges. Our preset: 5330 / 6424.
        assert_eq!(m.entity_count(), 5330);
        assert_eq!(m.relationship_count(), 6424);
        // The paper's example switch naming style exists.
        assert!(m.entity("ju1.a1.m1.s2c1").is_some());
    }

    #[test]
    fn chassis_capacity_is_sum_of_switches() {
        let m = generate(&MaltConfig::tiny());
        for chassis in m.entities_of_kind(EntityKind::Chassis) {
            let switch_sum: f64 = m
                .children(&chassis.name)
                .iter()
                .filter(|e| e.kind == EntityKind::PacketSwitch)
                .filter_map(|e| e.capacity())
                .sum();
            assert_eq!(chassis.capacity().unwrap(), switch_sum);
        }
    }

    #[test]
    fn control_points_control_every_pod_switch() {
        let m = generate(&MaltConfig::tiny());
        for cp in m.entities_of_kind(EntityKind::ControlPoint) {
            let controlled = m.targets_of(&cp.name, RelationshipKind::Controls);
            assert_eq!(controlled.len(), 4); // 2 racks * 1 chassis * 2 switches
        }
    }
}
