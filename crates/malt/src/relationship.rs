//! MALT relationships: the typed, directed edges of the topology.

use std::fmt;

/// The relationship kinds used by the example dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RelationshipKind {
    /// Physical or logical containment (datacenter contains pod, chassis
    /// contains packet switch, packet switch contains port, ...).
    Contains,
    /// Control-plane association (control point controls packet switch).
    Controls,
    /// A physical link between two ports.
    ConnectedTo,
}

impl RelationshipKind {
    /// All kinds.
    pub const ALL: [RelationshipKind; 3] = [
        RelationshipKind::Contains,
        RelationshipKind::Controls,
        RelationshipKind::ConnectedTo,
    ];

    /// The canonical snake_case name used in edge attributes and SQL rows.
    pub fn name(&self) -> &'static str {
        match self {
            RelationshipKind::Contains => "contains",
            RelationshipKind::Controls => "controls",
            RelationshipKind::ConnectedTo => "connected_to",
        }
    }

    /// Parses a canonical name back into a kind.
    pub fn parse(name: &str) -> Option<RelationshipKind> {
        RelationshipKind::ALL
            .iter()
            .copied()
            .find(|k| k.name() == name)
    }
}

impl fmt::Display for RelationshipKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// One directed relationship between two entities (identified by name).
#[derive(Debug, Clone, PartialEq)]
pub struct Relationship {
    /// Source entity name.
    pub from: String,
    /// Target entity name.
    pub to: String,
    /// The relationship kind.
    pub kind: RelationshipKind,
}

impl Relationship {
    /// Creates a relationship.
    pub fn new(from: impl Into<String>, to: impl Into<String>, kind: RelationshipKind) -> Self {
        Relationship {
            from: from.into(),
            to: to.into(),
            kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for kind in RelationshipKind::ALL {
            assert_eq!(RelationshipKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(RelationshipKind::parse("peers_with"), None);
        assert_eq!(RelationshipKind::Controls.to_string(), "controls");
    }

    #[test]
    fn construction() {
        let r = Relationship::new("cp1", "ju1.a1.m1.s1c1", RelationshipKind::Controls);
        assert_eq!(r.from, "cp1");
        assert_eq!(r.kind, RelationshipKind::Controls);
    }
}
