//! The in-memory MALT model: entities plus relationships, with the query
//! helpers the application wrapper and the golden programs need.

use crate::entity::{Entity, EntityKind};
use crate::relationship::{Relationship, RelationshipKind};
use std::collections::BTreeMap;

/// A multi-abstraction-layer topology.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MaltModel {
    entities: BTreeMap<String, Entity>,
    relationships: Vec<Relationship>,
}

impl MaltModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        MaltModel::default()
    }

    /// Adds an entity (replacing any entity with the same name).
    pub fn add_entity(&mut self, entity: Entity) {
        self.entities.insert(entity.name.clone(), entity);
    }

    /// Adds a relationship. Both endpoints must already exist.
    ///
    /// Returns `false` (and does not add the edge) when either endpoint is
    /// unknown, so generators cannot silently create dangling references.
    pub fn add_relationship(&mut self, rel: Relationship) -> bool {
        if !self.entities.contains_key(&rel.from) || !self.entities.contains_key(&rel.to) {
            return false;
        }
        self.relationships.push(rel);
        true
    }

    /// Number of entities.
    pub fn entity_count(&self) -> usize {
        self.entities.len()
    }

    /// Number of relationships.
    pub fn relationship_count(&self) -> usize {
        self.relationships.len()
    }

    /// Looks an entity up by name.
    pub fn entity(&self, name: &str) -> Option<&Entity> {
        self.entities.get(name)
    }

    /// All entities in name order.
    pub fn entities(&self) -> impl Iterator<Item = &Entity> {
        self.entities.values()
    }

    /// All relationships in insertion order.
    pub fn relationships(&self) -> &[Relationship] {
        &self.relationships
    }

    /// Entities of a given kind, in name order.
    pub fn entities_of_kind(&self, kind: EntityKind) -> Vec<&Entity> {
        self.entities.values().filter(|e| e.kind == kind).collect()
    }

    /// Names of entities directly related to `name` via `kind` edges
    /// pointing *out of* `name` (e.g. the ports contained by a switch).
    pub fn targets_of(&self, name: &str, kind: RelationshipKind) -> Vec<&Entity> {
        self.relationships
            .iter()
            .filter(|r| r.kind == kind && r.from == name)
            .filter_map(|r| self.entities.get(&r.to))
            .collect()
    }

    /// Names of entities with a `kind` edge pointing *into* `name`
    /// (e.g. the chassis containing a switch).
    pub fn sources_of(&self, name: &str, kind: RelationshipKind) -> Vec<&Entity> {
        self.relationships
            .iter()
            .filter(|r| r.kind == kind && r.to == name)
            .filter_map(|r| self.entities.get(&r.from))
            .collect()
    }

    /// The entities contained (directly) by `name`.
    pub fn children(&self, name: &str) -> Vec<&Entity> {
        self.targets_of(name, RelationshipKind::Contains)
    }

    /// The entity that directly contains `name`, if any.
    pub fn parent(&self, name: &str) -> Option<&Entity> {
        self.sources_of(name, RelationshipKind::Contains)
            .into_iter()
            .next()
    }

    /// All entities reachable from `name` by following `contains` edges.
    pub fn descendants(&self, name: &str) -> Vec<&Entity> {
        let mut out = Vec::new();
        let mut stack: Vec<&str> = vec![name];
        while let Some(current) = stack.pop() {
            for child in self.children(current) {
                stack.push(&child.name);
                out.push(child);
            }
        }
        out
    }

    /// Per-entity aggregate capacity: for entities with their own
    /// `capacity_gbps` that value, otherwise the sum over descendants.
    pub fn aggregate_capacity(&self, name: &str) -> f64 {
        match self.entity(name).and_then(Entity::capacity) {
            Some(c) => c,
            None => self
                .descendants(name)
                .iter()
                .filter_map(|e| e.capacity())
                .sum(),
        }
    }

    /// Removes an entity, all relationships touching it, and (recursively)
    /// everything it contains. Returns the number of entities removed.
    pub fn remove_entity_recursive(&mut self, name: &str) -> usize {
        let mut to_remove: Vec<String> = vec![name.to_string()];
        to_remove.extend(self.descendants(name).iter().map(|e| e.name.clone()));
        let removed = to_remove
            .iter()
            .filter(|n| self.entities.remove(*n).is_some())
            .count();
        self.relationships
            .retain(|r| !to_remove.contains(&r.from) && !to_remove.contains(&r.to));
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model() -> MaltModel {
        let mut m = MaltModel::new();
        m.add_entity(Entity::new("ch1", EntityKind::Chassis));
        m.add_entity(
            Entity::new("ch1.s1", EntityKind::PacketSwitch).with_attr("capacity_gbps", 800i64),
        );
        m.add_entity(
            Entity::new("ch1.s2", EntityKind::PacketSwitch).with_attr("capacity_gbps", 400i64),
        );
        m.add_entity(Entity::new("ch1.s1.p1", EntityKind::Port).with_attr("speed_gbps", 100i64));
        m.add_entity(Entity::new("cp1", EntityKind::ControlPoint));
        assert!(m.add_relationship(Relationship::new(
            "ch1",
            "ch1.s1",
            RelationshipKind::Contains
        )));
        assert!(m.add_relationship(Relationship::new(
            "ch1",
            "ch1.s2",
            RelationshipKind::Contains
        )));
        assert!(m.add_relationship(Relationship::new(
            "ch1.s1",
            "ch1.s1.p1",
            RelationshipKind::Contains
        )));
        assert!(m.add_relationship(Relationship::new(
            "cp1",
            "ch1.s1",
            RelationshipKind::Controls
        )));
        m
    }

    #[test]
    fn containment_queries() {
        let m = tiny_model();
        assert_eq!(m.entity_count(), 5);
        assert_eq!(m.relationship_count(), 4);
        let children: Vec<&str> = m.children("ch1").iter().map(|e| e.name.as_str()).collect();
        assert_eq!(children, vec!["ch1.s1", "ch1.s2"]);
        assert_eq!(m.parent("ch1.s1").unwrap().name, "ch1");
        assert!(m.parent("ch1").is_none());
        assert_eq!(m.descendants("ch1").len(), 3);
    }

    #[test]
    fn control_queries_and_kind_filters() {
        let m = tiny_model();
        let controlled = m.targets_of("cp1", RelationshipKind::Controls);
        assert_eq!(controlled.len(), 1);
        assert_eq!(controlled[0].name, "ch1.s1");
        let controllers = m.sources_of("ch1.s1", RelationshipKind::Controls);
        assert_eq!(controllers[0].name, "cp1");
        assert_eq!(m.entities_of_kind(EntityKind::PacketSwitch).len(), 2);
    }

    #[test]
    fn aggregate_capacity_rolls_up() {
        let m = tiny_model();
        assert_eq!(m.aggregate_capacity("ch1.s1"), 800.0);
        assert_eq!(m.aggregate_capacity("ch1"), 1200.0);
        assert_eq!(m.aggregate_capacity("missing"), 0.0);
    }

    #[test]
    fn dangling_relationships_are_rejected() {
        let mut m = tiny_model();
        assert!(!m.add_relationship(Relationship::new(
            "ch1",
            "ghost",
            RelationshipKind::Contains
        )));
        assert_eq!(m.relationship_count(), 4);
    }

    #[test]
    fn recursive_removal() {
        let mut m = tiny_model();
        let removed = m.remove_entity_recursive("ch1.s1");
        assert_eq!(removed, 2); // the switch and its port
        assert_eq!(m.entity_count(), 3);
        // The controls edge to the removed switch is gone too.
        assert!(m.targets_of("cp1", RelationshipKind::Controls).is_empty());
    }
}
