//! Exports a MALT model into the three backend representations the
//! benchmark evaluates.

use crate::entity::Entity;
use crate::model::MaltModel;
use dataframe::{Column, DataFrame};
use netgraph::intern::Interner;
use netgraph::{AttrValue, Graph};
use sqlengine::Database;

/// Builds the directed property graph: one node per entity (id = entity
/// name, attributes = `kind` plus the entity's own attributes), one edge per
/// relationship with a `relationship` attribute.
pub fn to_graph(model: &MaltModel) -> Graph {
    // Kind and relationship names come from small fixed sets; intern them
    // so every node/edge shares one allocation per distinct name.
    let mut interner = Interner::new();
    let mut g = Graph::directed();
    for entity in model.entities() {
        let mut attrs = entity.attrs.clone();
        attrs.insert(
            "kind".to_string(),
            AttrValue::Str(interner.intern_shared(entity.kind.name())),
        );
        g.add_node(&entity.name, attrs);
    }
    for rel in model.relationships() {
        let mut attrs = netgraph::AttrMap::new();
        attrs.insert(
            "relationship".to_string(),
            AttrValue::Str(interner.intern_shared(rel.kind.name())),
        );
        g.add_edge(&rel.from, &rel.to, attrs);
    }
    g
}

/// Builds the pandas-style representation: a node frame (`name`, `kind`,
/// `capacity_gbps`, `speed_gbps`, `role`, `vendor`) and an edge frame
/// (`source`, `target`, `relationship`).
pub fn to_frames(model: &MaltModel) -> (DataFrame, DataFrame) {
    let attr_or_null = |e: &Entity, key: &str| -> AttrValue {
        e.attrs.get(key).cloned().unwrap_or(AttrValue::Null)
    };
    // Entity names appear in the node frame and once per incident
    // relationship; one interner shares those allocations across frames.
    let mut interner = Interner::new();
    let entities: Vec<&Entity> = model.entities().collect();
    let nodes = DataFrame::from_columns(vec![
        (
            "name".to_string(),
            entities
                .iter()
                .map(|e| AttrValue::Str(interner.intern_shared(&e.name)))
                .collect::<Column>(),
        ),
        (
            "kind".to_string(),
            entities
                .iter()
                .map(|e| AttrValue::Str(interner.intern_shared(e.kind.name())))
                .collect(),
        ),
        (
            "capacity_gbps".to_string(),
            entities
                .iter()
                .map(|e| attr_or_null(e, "capacity_gbps"))
                .collect(),
        ),
        (
            "speed_gbps".to_string(),
            entities
                .iter()
                .map(|e| attr_or_null(e, "speed_gbps"))
                .collect(),
        ),
        (
            "role".to_string(),
            entities.iter().map(|e| attr_or_null(e, "role")).collect(),
        ),
        (
            "vendor".to_string(),
            entities.iter().map(|e| attr_or_null(e, "vendor")).collect(),
        ),
    ])
    .expect("node columns are equal length");

    let rels = model.relationships();
    let edges = DataFrame::from_columns(vec![
        (
            "source".to_string(),
            rels.iter()
                .map(|r| AttrValue::Str(interner.intern_shared(&r.from)))
                .collect::<Column>(),
        ),
        (
            "target".to_string(),
            rels.iter()
                .map(|r| AttrValue::Str(interner.intern_shared(&r.to)))
                .collect(),
        ),
        (
            "relationship".to_string(),
            rels.iter()
                .map(|r| AttrValue::Str(interner.intern_shared(r.kind.name())))
                .collect(),
        ),
    ])
    .expect("edge columns are equal length");

    (nodes, edges)
}

/// Builds the SQL representation: a database with `nodes` and `edges` tables
/// whose schemas match [`to_frames`].
pub fn to_database(model: &MaltModel) -> Database {
    let (nodes, edges) = to_frames(model);
    let mut db = Database::new();
    db.create_table("nodes", nodes);
    db.create_table("edges", edges);
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, MaltConfig};
    use netgraph::AttrMapExt;

    #[test]
    fn graph_preserves_counts_and_attributes() {
        let model = generate(&MaltConfig::tiny());
        let g = to_graph(&model);
        assert_eq!(g.number_of_nodes(), model.entity_count());
        assert_eq!(g.number_of_edges(), model.relationship_count());
        let sw = model
            .entities_of_kind(crate::EntityKind::PacketSwitch)
            .into_iter()
            .next()
            .unwrap();
        assert_eq!(
            g.node_attrs(&sw.name).unwrap().get_str("kind"),
            Some("packet_switch")
        );
    }

    #[test]
    fn frames_and_database_shapes() {
        let model = generate(&MaltConfig::tiny());
        let (nodes, edges) = to_frames(&model);
        assert_eq!(nodes.n_rows(), model.entity_count());
        assert_eq!(edges.n_rows(), model.relationship_count());
        let mut db = to_database(&model);
        let switches = db
            .execute("SELECT COUNT(*) AS n FROM nodes WHERE kind = 'packet_switch'")
            .unwrap();
        assert_eq!(
            switches.rows().unwrap().value(0, "n").unwrap().as_i64(),
            Some(8)
        );
        let contains = db
            .execute("SELECT COUNT(*) AS n FROM edges WHERE relationship = 'contains'")
            .unwrap();
        assert!(
            contains
                .rows()
                .unwrap()
                .value(0, "n")
                .unwrap()
                .as_i64()
                .unwrap()
                > 0
        );
    }

    #[test]
    fn default_export_matches_example_scale() {
        let model = crate::example_model();
        let g = to_graph(&model);
        assert_eq!(g.number_of_nodes(), 5330);
        assert_eq!(g.number_of_edges(), 6424);
    }
}
