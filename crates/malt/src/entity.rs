//! MALT entities: the typed nodes of a multi-abstraction-layer topology.

use netgraph::{AttrMap, AttrMapExt, AttrValue};
use std::fmt;

/// The entity kinds modelled by the example dataset.
///
/// MALT (Mogul et al., NSDI 2020) represents a network at multiple
/// abstraction levels; the subset here covers the levels the paper's nine
/// lifecycle-management queries touch: physical containment from datacenter
/// down to port, plus the control plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EntityKind {
    /// A datacenter / campus.
    Datacenter,
    /// An aggregation pod.
    Pod,
    /// A rack.
    Rack,
    /// A chassis hosting packet switches.
    Chassis,
    /// A packet switch (the paper's `ju1.a1.m1.s2c1`-style devices).
    PacketSwitch,
    /// A physical port on a packet switch.
    Port,
    /// A control point (SDN controller instance) controlling switches.
    ControlPoint,
}

impl EntityKind {
    /// All kinds, in containment order from the root down.
    pub const ALL: [EntityKind; 7] = [
        EntityKind::Datacenter,
        EntityKind::Pod,
        EntityKind::Rack,
        EntityKind::Chassis,
        EntityKind::PacketSwitch,
        EntityKind::Port,
        EntityKind::ControlPoint,
    ];

    /// The canonical snake_case name used in node attributes and SQL rows.
    pub fn name(&self) -> &'static str {
        match self {
            EntityKind::Datacenter => "datacenter",
            EntityKind::Pod => "pod",
            EntityKind::Rack => "rack",
            EntityKind::Chassis => "chassis",
            EntityKind::PacketSwitch => "packet_switch",
            EntityKind::Port => "port",
            EntityKind::ControlPoint => "control_point",
        }
    }

    /// Parses a canonical name back into a kind.
    pub fn parse(name: &str) -> Option<EntityKind> {
        EntityKind::ALL.iter().copied().find(|k| k.name() == name)
    }
}

impl fmt::Display for EntityKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// One entity of the topology.
#[derive(Debug, Clone, PartialEq)]
pub struct Entity {
    /// Globally unique hierarchical name (`ju1.a2.m3.s1c1`).
    pub name: String,
    /// The entity's kind.
    pub kind: EntityKind,
    /// Kind-specific attributes (capacity in Gbps for switches and chassis,
    /// port speed, rack position, ...).
    pub attrs: AttrMap,
}

impl Entity {
    /// Creates an entity with no extra attributes.
    pub fn new(name: impl Into<String>, kind: EntityKind) -> Self {
        Entity {
            name: name.into(),
            kind,
            attrs: AttrMap::new(),
        }
    }

    /// Adds an attribute (builder style).
    pub fn with_attr(mut self, key: &str, value: impl Into<AttrValue>) -> Self {
        self.attrs.set(key, value);
        self
    }

    /// The entity's capacity attribute in Gbps, if it has one.
    pub fn capacity(&self) -> Option<f64> {
        self.attrs.get_f64("capacity_gbps")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for kind in EntityKind::ALL {
            assert_eq!(EntityKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(EntityKind::parse("router"), None);
        assert_eq!(EntityKind::PacketSwitch.to_string(), "packet_switch");
    }

    #[test]
    fn entity_builder_and_capacity() {
        let e = Entity::new("ju1.a1.m1", EntityKind::Chassis).with_attr("capacity_gbps", 3200i64);
        assert_eq!(e.capacity(), Some(3200.0));
        let p = Entity::new("ju1.a1.m1.s1c1.p1", EntityKind::Port);
        assert_eq!(p.capacity(), None);
    }
}
