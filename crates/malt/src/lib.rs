//! # malt
//!
//! A model of the Multi-Abstraction-Layer Topology (MALT) representation
//! used by the paper's network lifecycle-management application, plus a
//! deterministic generator standing in for Google's example dataset (which
//! the paper converts into a directed graph with 5 493 nodes and 6 424
//! edges — the default preset here yields 5 330 entities and exactly 6 424
//! relationships with the same entity kinds, relationship kinds and naming
//! scheme).
//!
//! * [`Entity`] / [`EntityKind`] — datacenters, pods, racks, chassis,
//!   packet switches, ports and control points,
//! * [`Relationship`] / [`RelationshipKind`] — `contains`, `controls`,
//!   `connected_to`,
//! * [`MaltModel`] — containment/control queries, capacity roll-ups and
//!   topology edits,
//! * [`generate`] / [`example_model`] — the dataset generator,
//! * [`export`] — conversion to the graph / dataframe / SQL backends.
//!
//! ```
//! use malt::{generate, MaltConfig, EntityKind};
//!
//! let model = generate(&MaltConfig::tiny());
//! let switches = model.entities_of_kind(EntityKind::PacketSwitch);
//! assert_eq!(switches.len(), 8);
//! let ports = model.children(&switches[0].name);
//! assert!(ports.iter().all(|p| p.kind == EntityKind::Port));
//! ```

#![warn(missing_docs)]

mod entity;
pub mod export;
mod generator;
mod model;
mod relationship;

pub use entity::{Entity, EntityKind};
pub use generator::{example_model, generate, MaltConfig};
pub use model::MaltModel;
pub use relationship::{Relationship, RelationshipKind};
