//! Error model for GraphScript.
//!
//! The error *kinds* are the raw material of the paper's Table 5: the
//! NeMoEval error classifier maps each kind onto one of the seven published
//! error categories (syntax error, imaginary graph attributes, imaginary
//! functions/arguments, argument errors, operation errors, wrong calculation
//! logic, non-identical graphs). The last two categories are not errors at
//! all — they are successful executions with wrong results — so they do not
//! appear here.

use std::fmt;

/// Errors raised while lexing, parsing or executing a GraphScript program.
#[derive(Debug, Clone, PartialEq)]
pub enum ScriptError {
    /// The program text is not syntactically valid.
    Syntax {
        /// 1-based line number of the offending token.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// A variable was referenced before assignment.
    NameError(String),
    /// A function was called that does not exist.
    UnknownFunction(String),
    /// A method was called (or a field accessed) that the receiver type does
    /// not provide.
    AttributeError {
        /// The receiver's type name.
        type_name: String,
        /// The missing method or field.
        attr: String,
    },
    /// A call received the wrong number or kind of arguments.
    ArgumentError {
        /// The function or method being called.
        function: String,
        /// Description of the problem.
        message: String,
    },
    /// A node/edge attribute or dictionary key that does not exist was read.
    MissingAttribute {
        /// What owns the attribute ("node 10.0.0.1", "edge a->b", "dict").
        owner: String,
        /// The missing key.
        key: String,
    },
    /// An operation was applied to values of the wrong type.
    TypeError(String),
    /// Any other runtime failure (missing node, division by zero, index out
    /// of range, ...).
    Runtime(String),
    /// The interpreter hit its execution-step budget (runaway loop guard).
    StepLimit(u64),
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScriptError::Syntax { line, message } => {
                write!(f, "syntax error on line {line}: {message}")
            }
            ScriptError::NameError(name) => write!(f, "name '{name}' is not defined"),
            ScriptError::UnknownFunction(name) => {
                write!(f, "function '{name}' is not defined")
            }
            ScriptError::AttributeError { type_name, attr } => {
                write!(f, "'{type_name}' object has no attribute '{attr}'")
            }
            ScriptError::ArgumentError { function, message } => {
                write!(f, "bad arguments to {function}(): {message}")
            }
            ScriptError::MissingAttribute { owner, key } => {
                write!(f, "{owner} has no attribute '{key}'")
            }
            ScriptError::TypeError(msg) => write!(f, "type error: {msg}"),
            ScriptError::Runtime(msg) => write!(f, "runtime error: {msg}"),
            ScriptError::StepLimit(n) => {
                write!(
                    f,
                    "execution aborted after {n} steps (possible infinite loop)"
                )
            }
        }
    }
}

impl std::error::Error for ScriptError {}

impl ScriptError {
    /// True for lexical/grammatical errors (the paper's "syntax error" row).
    pub fn is_syntax(&self) -> bool {
        matches!(self, ScriptError::Syntax { .. })
    }

    /// True when the program referenced a graph/frame attribute or dict key
    /// that does not exist (the paper's "imaginary graph attributes" row).
    pub fn is_missing_attribute(&self) -> bool {
        matches!(self, ScriptError::MissingAttribute { .. })
    }

    /// True when the program called a function or method that does not exist
    /// (the paper's "imaginary files/function arguments" row).
    pub fn is_unknown_callable(&self) -> bool {
        matches!(
            self,
            ScriptError::UnknownFunction(_) | ScriptError::AttributeError { .. }
        )
    }

    /// True for wrong-argument failures (the paper's "arguments error" row).
    pub fn is_argument_error(&self) -> bool {
        matches!(self, ScriptError::ArgumentError { .. })
    }
}

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ScriptError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            ScriptError::NameError("G2".into()).to_string(),
            "name 'G2' is not defined"
        );
        assert_eq!(
            ScriptError::AttributeError {
                type_name: "graph".into(),
                attr: "get_total_weight".into()
            }
            .to_string(),
            "'graph' object has no attribute 'get_total_weight'"
        );
        assert!(ScriptError::MissingAttribute {
            owner: "node 10.0.0.1".into(),
            key: "capacity".into()
        }
        .to_string()
        .contains("capacity"));
    }

    #[test]
    fn classification_helpers() {
        assert!(ScriptError::Syntax {
            line: 1,
            message: "x".into()
        }
        .is_syntax());
        assert!(ScriptError::MissingAttribute {
            owner: "node a".into(),
            key: "k".into()
        }
        .is_missing_attribute());
        assert!(ScriptError::UnknownFunction("f".into()).is_unknown_callable());
        assert!(ScriptError::AttributeError {
            type_name: "list".into(),
            attr: "push".into()
        }
        .is_unknown_callable());
        assert!(ScriptError::ArgumentError {
            function: "substr".into(),
            message: "m".into()
        }
        .is_argument_error());
        assert!(!ScriptError::Runtime("r".into()).is_syntax());
    }
}
