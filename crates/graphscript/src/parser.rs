//! Recursive-descent parser for GraphScript.

use crate::ast::*;
use crate::error::{Result, ScriptError};
use crate::lexer::tokenize;
use crate::token::{Keyword, Token, TokenKind};

/// Parses a complete program.
pub fn parse_program(source: &str) -> Result<Program> {
    let tokens = tokenize(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut statements = Vec::new();
    parser.skip_terminators();
    while !parser.at_eof() {
        statements.push(parser.statement()?);
        parser.skip_terminators();
    }
    Ok(Program { statements })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn line(&self) -> usize {
        self.tokens[self.pos.min(self.tokens.len() - 1)].line
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn advance(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos.min(self.tokens.len() - 1)]
            .kind
            .clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        kind
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(ScriptError::Syntax {
            line: self.line(),
            message: message.into(),
        })
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            self.error(format!("expected {kind}, found {}", self.peek()))
        }
    }

    fn eat_keyword(&mut self, kw: Keyword) -> bool {
        if matches!(self.peek(), TokenKind::Keyword(k) if *k == kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.advance();
                Ok(name)
            }
            other => self.error(format!("expected a name, found {other}")),
        }
    }

    fn skip_terminators(&mut self) {
        while matches!(self.peek(), TokenKind::Terminator) {
            self.advance();
        }
    }

    /// Consumes an end-of-statement marker: a terminator, or nothing when the
    /// next token closes the enclosing block / ends the file.
    fn end_statement(&mut self) -> Result<()> {
        match self.peek() {
            TokenKind::Terminator => {
                self.advance();
                Ok(())
            }
            TokenKind::RBrace | TokenKind::Eof => Ok(()),
            other => self.error(format!("expected end of statement, found {other}")),
        }
    }

    // ---------------------------------------------------------- statements

    fn statement(&mut self) -> Result<Stmt> {
        match self.peek().clone() {
            TokenKind::Keyword(Keyword::If) => self.if_statement(),
            TokenKind::Keyword(Keyword::For) => self.for_statement(),
            TokenKind::Keyword(Keyword::While) => self.while_statement(),
            TokenKind::Keyword(Keyword::Fn) => self.fn_statement(),
            TokenKind::Keyword(Keyword::Return) => {
                self.advance();
                let value = if matches!(
                    self.peek(),
                    TokenKind::Terminator | TokenKind::RBrace | TokenKind::Eof
                ) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.end_statement()?;
                Ok(Stmt::Return(value))
            }
            TokenKind::Keyword(Keyword::Break) => {
                self.advance();
                self.end_statement()?;
                Ok(Stmt::Break)
            }
            TokenKind::Keyword(Keyword::Continue) => {
                self.advance();
                self.end_statement()?;
                Ok(Stmt::Continue)
            }
            _ => self.simple_statement(),
        }
    }

    /// Assignment, augmented assignment or a bare expression.
    fn simple_statement(&mut self) -> Result<Stmt> {
        let expr = self.expression()?;
        let stmt = match self.peek() {
            TokenKind::Assign => {
                self.advance();
                let value = self.expression()?;
                let target = match expr {
                    Expr::Name(name) => AssignTarget::Name(name),
                    Expr::Index { object, index } => AssignTarget::Index {
                        object: *object,
                        index: *index,
                    },
                    _ => return self.error("invalid assignment target"),
                };
                Stmt::Assign { target, value }
            }
            TokenKind::PlusAssign
            | TokenKind::MinusAssign
            | TokenKind::StarAssign
            | TokenKind::SlashAssign => {
                let op = match self.advance() {
                    TokenKind::PlusAssign => BinaryOp::Add,
                    TokenKind::MinusAssign => BinaryOp::Sub,
                    TokenKind::StarAssign => BinaryOp::Mul,
                    TokenKind::SlashAssign => BinaryOp::Div,
                    _ => unreachable!(),
                };
                let value = self.expression()?;
                match expr {
                    Expr::Name(name) => Stmt::AugAssign { name, op, value },
                    _ => return self.error("augmented assignment target must be a name"),
                }
            }
            _ => Stmt::Expr(expr),
        };
        self.end_statement()?;
        Ok(stmt)
    }

    fn block(&mut self) -> Result<Vec<Stmt>> {
        self.expect(&TokenKind::LBrace)?;
        self.skip_terminators();
        let mut body = Vec::new();
        while !matches!(self.peek(), TokenKind::RBrace | TokenKind::Eof) {
            body.push(self.statement()?);
            self.skip_terminators();
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(body)
    }

    fn if_statement(&mut self) -> Result<Stmt> {
        self.advance(); // if
        let mut branches = Vec::new();
        let cond = self.expression()?;
        let body = self.block()?;
        branches.push((cond, body));
        let mut otherwise = None;
        loop {
            // Allow a newline between `}` and `elif`/`else`.
            let checkpoint = self.pos;
            self.skip_terminators();
            if self.eat_keyword(Keyword::Elif) {
                let cond = self.expression()?;
                let body = self.block()?;
                branches.push((cond, body));
            } else if self.eat_keyword(Keyword::Else) {
                if self.eat_keyword(Keyword::If) {
                    let cond = self.expression()?;
                    let body = self.block()?;
                    branches.push((cond, body));
                } else {
                    otherwise = Some(self.block()?);
                    break;
                }
            } else {
                self.pos = checkpoint;
                break;
            }
        }
        Ok(Stmt::If {
            branches,
            otherwise,
        })
    }

    fn for_statement(&mut self) -> Result<Stmt> {
        self.advance(); // for
        let mut vars = vec![self.ident()?];
        while self.eat(&TokenKind::Comma) {
            vars.push(self.ident()?);
        }
        if !self.eat_keyword(Keyword::In) {
            return self.error("expected 'in' in for loop");
        }
        let iterable = self.expression()?;
        let body = self.block()?;
        Ok(Stmt::For {
            vars,
            iterable,
            body,
        })
    }

    fn while_statement(&mut self) -> Result<Stmt> {
        self.advance(); // while
        let cond = self.expression()?;
        let body = self.block()?;
        Ok(Stmt::While { cond, body })
    }

    fn fn_statement(&mut self) -> Result<Stmt> {
        self.advance(); // fn / def
        let name = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                params.push(self.ident()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        let body = self.block()?;
        Ok(Stmt::FnDef { name, params, body })
    }

    // --------------------------------------------------------- expressions
    //
    // Precedence (lowest first): or, and, not, comparison/in, additive,
    // multiplicative, power, unary, postfix (call/index/attr), primary.

    fn expression(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_keyword(Keyword::Or) {
            let right = self.and_expr()?;
            left = Expr::binary(left, BinaryOp::Or, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_keyword(Keyword::And) {
            let right = self.not_expr()?;
            left = Expr::binary(left, BinaryOp::And, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_keyword(Keyword::Not) || self.eat(&TokenKind::Bang) {
            return Ok(Expr::Not(Box::new(self.not_expr()?)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        let op = match self.peek() {
            TokenKind::EqEq => Some(BinaryOp::Eq),
            TokenKind::NotEq => Some(BinaryOp::NotEq),
            TokenKind::Lt => Some(BinaryOp::Lt),
            TokenKind::LtEq => Some(BinaryOp::LtEq),
            TokenKind::Gt => Some(BinaryOp::Gt),
            TokenKind::GtEq => Some(BinaryOp::GtEq),
            TokenKind::Keyword(Keyword::In) => Some(BinaryOp::In),
            TokenKind::Keyword(Keyword::Not) => {
                // `x not in y`
                if matches!(
                    self.tokens.get(self.pos + 1).map(|t| &t.kind),
                    Some(TokenKind::Keyword(Keyword::In))
                ) {
                    self.advance();
                    Some(BinaryOp::NotIn)
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.additive()?;
            return Ok(Expr::binary(left, op, right));
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinaryOp::Add,
                TokenKind::Minus => BinaryOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.multiplicative()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.power()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinaryOp::Mul,
                TokenKind::Slash => BinaryOp::Div,
                TokenKind::Percent => BinaryOp::Mod,
                _ => break,
            };
            self.advance();
            let right = self.power()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn power(&mut self) -> Result<Expr> {
        let base = self.unary()?;
        if self.eat(&TokenKind::StarStar) {
            // Right-associative.
            let exponent = self.power()?;
            return Ok(Expr::binary(base, BinaryOp::Pow, exponent));
        }
        Ok(base)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::Minus) {
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        self.postfix()
    }

    /// Calls, method calls, indexing and attribute access, left to right.
    fn postfix(&mut self) -> Result<Expr> {
        let mut expr = self.primary()?;
        loop {
            match self.peek().clone() {
                TokenKind::LParen => {
                    self.advance();
                    let args = self.arguments()?;
                    expr = match expr {
                        Expr::Name(name) => Expr::Call { name, args },
                        Expr::Attr { object, name } => Expr::MethodCall { object, name, args },
                        other => {
                            return self.error(format!(
                            "cannot call {other:?}: only named functions and methods are callable"
                        ))
                        }
                    };
                }
                TokenKind::LBracket => {
                    self.advance();
                    let index = self.expression()?;
                    self.expect(&TokenKind::RBracket)?;
                    expr = Expr::Index {
                        object: Box::new(expr),
                        index: Box::new(index),
                    };
                }
                TokenKind::Dot => {
                    self.advance();
                    let name = self.ident()?;
                    expr = Expr::Attr {
                        object: Box::new(expr),
                        name,
                    };
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn arguments(&mut self) -> Result<Vec<Expr>> {
        let mut args = Vec::new();
        if self.eat(&TokenKind::RParen) {
            return Ok(args);
        }
        loop {
            args.push(self.expression()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(args)
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::Int(i) => {
                self.advance();
                Ok(Expr::Int(i))
            }
            TokenKind::Float(x) => {
                self.advance();
                Ok(Expr::Float(x))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Expr::Str(s))
            }
            TokenKind::Keyword(Keyword::True) => {
                self.advance();
                Ok(Expr::Bool(true))
            }
            TokenKind::Keyword(Keyword::False) => {
                self.advance();
                Ok(Expr::Bool(false))
            }
            TokenKind::Keyword(Keyword::Null) => {
                self.advance();
                Ok(Expr::Null)
            }
            TokenKind::Ident(name) => {
                self.advance();
                Ok(Expr::Name(name))
            }
            TokenKind::LParen => {
                self.advance();
                let inner = self.expression()?;
                self.expect(&TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::LBracket => {
                self.advance();
                let mut items = Vec::new();
                if !self.eat(&TokenKind::RBracket) {
                    loop {
                        items.push(self.expression()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                        // Allow a trailing comma.
                        if matches!(self.peek(), TokenKind::RBracket) {
                            break;
                        }
                    }
                    self.expect(&TokenKind::RBracket)?;
                }
                Ok(Expr::List(items))
            }
            TokenKind::LBrace => {
                self.advance();
                let mut pairs = Vec::new();
                if !self.eat(&TokenKind::RBrace) {
                    loop {
                        let key = self.expression()?;
                        self.expect(&TokenKind::Colon)?;
                        let value = self.expression()?;
                        pairs.push((key, value));
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                        if matches!(self.peek(), TokenKind::RBrace) {
                            break;
                        }
                    }
                    self.expect(&TokenKind::RBrace)?;
                }
                Ok(Expr::Dict(pairs))
            }
            other => self.error(format!("unexpected token {other} in expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_assignment_and_method_chain() {
        let p = parse_program("total = G.node_attrs(\"a\").get(\"bytes\")").unwrap();
        assert_eq!(p.statements.len(), 1);
        let Stmt::Assign { target, value } = &p.statements[0] else {
            panic!("expected assignment")
        };
        assert_eq!(*target, AssignTarget::Name("total".into()));
        assert!(matches!(value, Expr::MethodCall { name, .. } if name == "get"));
    }

    #[test]
    fn parses_if_elif_else() {
        let src = "if x > 1 {\n a = 1\n} elif x > 0 {\n a = 2\n} else {\n a = 3\n}";
        let p = parse_program(src).unwrap();
        let Stmt::If {
            branches,
            otherwise,
        } = &p.statements[0]
        else {
            panic!()
        };
        assert_eq!(branches.len(), 2);
        assert!(otherwise.is_some());
    }

    #[test]
    fn parses_else_if_spelling() {
        let src = "if x { a = 1 } else if y { a = 2 } else { a = 3 }";
        let p = parse_program(src).unwrap();
        let Stmt::If {
            branches,
            otherwise,
        } = &p.statements[0]
        else {
            panic!()
        };
        assert_eq!(branches.len(), 2);
        assert!(otherwise.is_some());
    }

    #[test]
    fn parses_for_with_two_vars_and_while() {
        let src = "for u, v in G.edges() {\n  count += 1\n}\nwhile count > 0 {\n  count -= 1\n}";
        let p = parse_program(src).unwrap();
        assert_eq!(p.statements.len(), 2);
        let Stmt::For { vars, .. } = &p.statements[0] else {
            panic!()
        };
        assert_eq!(vars, &vec!["u".to_string(), "v".to_string()]);
        assert!(matches!(p.statements[1], Stmt::While { .. }));
    }

    #[test]
    fn parses_function_definition_and_return() {
        let src =
            "fn prefix(addr, n) {\n  parts = addr.split(\".\")\n  return join(\".\", parts)\n}";
        let p = parse_program(src).unwrap();
        let Stmt::FnDef { name, params, body } = &p.statements[0] else {
            panic!()
        };
        assert_eq!(name, "prefix");
        assert_eq!(params.len(), 2);
        assert_eq!(body.len(), 2);
    }

    #[test]
    fn parses_indexed_assignment_and_dict_literal() {
        let src = "totals = {}\ntotals[\"a\"] = 1 + 2 * 3";
        let p = parse_program(src).unwrap();
        assert!(matches!(p.statements[0], Stmt::Assign { .. }));
        let Stmt::Assign { target, value } = &p.statements[1] else {
            panic!()
        };
        assert!(matches!(target, AssignTarget::Index { .. }));
        // Precedence: 1 + (2 * 3).
        let Expr::Binary { op, right, .. } = value else {
            panic!()
        };
        assert_eq!(*op, BinaryOp::Add);
        assert!(matches!(
            **right,
            Expr::Binary {
                op: BinaryOp::Mul,
                ..
            }
        ));
    }

    #[test]
    fn parses_membership_and_not_in() {
        let p = parse_program("a = x in items and y not in items").unwrap();
        let Stmt::Assign { value, .. } = &p.statements[0] else {
            panic!()
        };
        assert!(matches!(
            value,
            Expr::Binary {
                op: BinaryOp::And,
                ..
            }
        ));
    }

    #[test]
    fn parses_list_and_trailing_comma() {
        let p = parse_program("xs = [1, 2, 3,]").unwrap();
        let Stmt::Assign { value, .. } = &p.statements[0] else {
            panic!()
        };
        let Expr::List(items) = value else { panic!() };
        assert_eq!(items.len(), 3);
    }

    #[test]
    fn power_is_right_associative() {
        let p = parse_program("x = 2 ** 3 ** 2").unwrap();
        let Stmt::Assign { value, .. } = &p.statements[0] else {
            panic!()
        };
        let Expr::Binary { right, .. } = value else {
            panic!()
        };
        assert!(matches!(
            **right,
            Expr::Binary {
                op: BinaryOp::Pow,
                ..
            }
        ));
    }

    #[test]
    fn syntax_errors_are_reported_with_lines() {
        let err = parse_program("x = 1\ny = (2 + \n").unwrap_err();
        assert!(err.is_syntax());
        let err = parse_program("for x G.nodes() { }").unwrap_err();
        assert!(err.to_string().contains("'in'") || err.to_string().contains("in"));
        assert!(parse_program("if x { y = 1 ").is_err());
        assert!(parse_program("fn () { }").is_err());
        assert!(parse_program("x = = 3").is_err());
    }

    #[test]
    fn python_def_and_none_are_accepted() {
        let src = "def f(a) {\n  return None\n}\nr = f(True)";
        let p = parse_program(src).unwrap();
        assert_eq!(p.statements.len(), 2);
    }
}
