//! # graphscript
//!
//! GraphScript is the small, dynamically-typed scripting language that plays
//! the role of "Python" in this reproduction of the NeMoEval system: the
//! simulated LLM emits GraphScript programs, the execution sandbox runs them
//! against the network state, and the benchmark's error classifier relies on
//! the interpreter's error taxonomy to reproduce the paper's Table 5.
//!
//! The language is a pragmatic Python lookalike — newline-terminated
//! statements, brace-delimited blocks, `for`/`while`/`if`/`fn`, lists,
//! dictionaries, and reference semantics for containers — with two built-in
//! object types bound to the substrates:
//!
//! * graphs ([`netgraph::Graph`]) with a NetworkX-flavoured method surface
//!   (`G.nodes()`, `G.add_edge(u, v, attrs)`, `G.remove_node(n)`, ...), and
//! * dataframes ([`dataframe::DataFrame`]) with a pandas-flavoured method
//!   surface (`df.filter(...)`, `df.groupby_agg(...)`, `df.sort_values(...)`).
//!
//! A module-level standard library covers the general helpers (`len`, `sum`,
//! `sorted`, `range`, `print`) and the graph-analysis helpers the golden
//! programs use (`shortest_path`, `connected_components`,
//! `node_weight_totals`, `kmeans_groups`, `ip_prefix`, ...).
//!
//! ```
//! use graphscript::{Interpreter, Value};
//! use netgraph::{Graph, attrs};
//!
//! let mut g = Graph::directed();
//! g.add_edge("10.0.1.1", "10.0.2.7", attrs([("bytes", 1500i64)]));
//! g.add_edge("10.0.2.7", "10.0.3.3", attrs([("bytes", 800i64)]));
//!
//! let mut interp = Interpreter::new();
//! interp.set_global("G", Value::graph(g));
//! let outcome = interp.run(r#"
//! totals = node_weight_totals(G, "bytes")
//! result = top_k(totals, 1)
//! "#).unwrap();
//! assert!(outcome.value.to_string().contains("10.0.2.7"));
//! ```

#![warn(missing_docs)]

pub mod ast;
mod bindings;
mod env;
mod error;
mod interp;
mod lexer;
mod parser;
mod stdlib;
mod token;
mod value;

pub use error::{Result, ScriptError};
pub use interp::{Interpreter, RunOutcome, DEFAULT_STEP_LIMIT};
pub use lexer::tokenize;
pub use parser::parse_program;
pub use value::{FunctionDef, Value};
