//! Variable environments: a global scope plus a stack of function-call
//! scopes, with Python-style lookup (locals, then globals).

use crate::error::{Result, ScriptError};
use crate::value::Value;
use std::collections::BTreeMap;

/// The variable environment of a running program.
#[derive(Debug, Default)]
pub struct Env {
    globals: BTreeMap<String, Value>,
    /// One frame per active function call; lookups see only the innermost
    /// frame plus the globals (no lexical closures, like early Python).
    frames: Vec<BTreeMap<String, Value>>,
}

impl Env {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Env::default()
    }

    /// Defines or overwrites a global binding.
    pub fn set_global(&mut self, name: &str, value: Value) {
        self.globals.insert(name.to_string(), value);
    }

    /// Reads a global binding.
    pub fn global(&self, name: &str) -> Option<&Value> {
        self.globals.get(name)
    }

    /// All global bindings (used by the sandbox to extract results).
    pub fn globals(&self) -> &BTreeMap<String, Value> {
        &self.globals
    }

    /// Pushes a new function-call frame with the given parameter bindings.
    pub fn push_frame(&mut self, bindings: BTreeMap<String, Value>) {
        self.frames.push(bindings);
    }

    /// Pops the innermost function-call frame.
    pub fn pop_frame(&mut self) {
        self.frames.pop();
    }

    /// Assigns a variable: inside a function the innermost frame is used,
    /// otherwise the global scope (Python local-by-default semantics).
    pub fn assign(&mut self, name: &str, value: Value) {
        match self.frames.last_mut() {
            Some(frame) => {
                frame.insert(name.to_string(), value);
            }
            None => {
                self.globals.insert(name.to_string(), value);
            }
        }
    }

    /// Looks a variable up: innermost frame first, then globals.
    pub fn lookup(&self, name: &str) -> Result<Value> {
        if let Some(frame) = self.frames.last() {
            if let Some(v) = frame.get(name) {
                return Ok(v.clone());
            }
        }
        self.globals
            .get(name)
            .cloned()
            .ok_or_else(|| ScriptError::NameError(name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_assignment_and_lookup() {
        let mut env = Env::new();
        env.assign("x", Value::Int(1));
        assert!(matches!(env.lookup("x").unwrap(), Value::Int(1)));
        assert!(matches!(env.lookup("y"), Err(ScriptError::NameError(_))));
    }

    #[test]
    fn function_frames_shadow_globals_and_pop() {
        let mut env = Env::new();
        env.assign("x", Value::Int(1));
        let mut bindings = BTreeMap::new();
        bindings.insert("x".to_string(), Value::Int(99));
        env.push_frame(bindings);
        assert!(matches!(env.lookup("x").unwrap(), Value::Int(99)));
        // Assignment inside a function stays local.
        env.assign("y", Value::Int(7));
        env.pop_frame();
        assert!(matches!(env.lookup("x").unwrap(), Value::Int(1)));
        assert!(env.lookup("y").is_err());
    }

    #[test]
    fn globals_visible_inside_functions() {
        let mut env = Env::new();
        env.set_global("G", Value::Int(42));
        env.push_frame(BTreeMap::new());
        assert!(matches!(env.lookup("G").unwrap(), Value::Int(42)));
    }
}
