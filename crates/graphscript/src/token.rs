//! Token model for the GraphScript lexer.

use std::fmt;

/// A token plus the 1-based line it starts on (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
}

/// The kinds of token GraphScript understands.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier (variable, function or method name).
    Ident(String),
    /// Reserved word.
    Keyword(Keyword),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (quotes removed, escapes processed).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `;` or a newline that terminates a statement.
    Terminator,
    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `*=`
    StarAssign,
    /// `/=`
    SlashAssign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `**`
    StarStar,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `!`
    Bang,
    /// End of input.
    Eof,
}

/// Reserved words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    /// `if`
    If,
    /// `elif`
    Elif,
    /// `else`
    Else,
    /// `for`
    For,
    /// `in`
    In,
    /// `while`
    While,
    /// `fn`
    Fn,
    /// `return`
    Return,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `and`
    And,
    /// `or`
    Or,
    /// `not`
    Not,
    /// `true` / `True`
    True,
    /// `false` / `False`
    False,
    /// `null` / `None`
    Null,
}

impl Keyword {
    /// Looks up a word; accepts both GraphScript and Python spellings of the
    /// literals so that near-Python generated code still lexes.
    pub fn parse(word: &str) -> Option<Keyword> {
        Some(match word {
            "if" => Keyword::If,
            "elif" => Keyword::Elif,
            "else" => Keyword::Else,
            "for" => Keyword::For,
            "in" => Keyword::In,
            "while" => Keyword::While,
            "fn" | "def" => Keyword::Fn,
            "return" => Keyword::Return,
            "break" => Keyword::Break,
            "continue" => Keyword::Continue,
            "and" => Keyword::And,
            "or" => Keyword::Or,
            "not" => Keyword::Not,
            "true" | "True" => Keyword::True,
            "false" | "False" => Keyword::False,
            "null" | "None" => Keyword::Null,
            _ => return None,
        })
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Keyword(k) => write!(f, "{k:?}"),
            TokenKind::Int(i) => write!(f, "{i}"),
            TokenKind::Float(x) => write!(f, "{x}"),
            TokenKind::Str(s) => write!(f, "\"{s}\""),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::LBracket => write!(f, "["),
            TokenKind::RBracket => write!(f, "]"),
            TokenKind::LBrace => write!(f, "{{"),
            TokenKind::RBrace => write!(f, "}}"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Colon => write!(f, ":"),
            TokenKind::Dot => write!(f, "."),
            TokenKind::Terminator => write!(f, "<end of statement>"),
            TokenKind::Assign => write!(f, "="),
            TokenKind::PlusAssign => write!(f, "+="),
            TokenKind::MinusAssign => write!(f, "-="),
            TokenKind::StarAssign => write!(f, "*="),
            TokenKind::SlashAssign => write!(f, "/="),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::StarStar => write!(f, "**"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Percent => write!(f, "%"),
            TokenKind::EqEq => write!(f, "=="),
            TokenKind::NotEq => write!(f, "!="),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::LtEq => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::GtEq => write!(f, ">="),
            TokenKind::Bang => write!(f, "!"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_parsing_accepts_python_spellings() {
        assert_eq!(Keyword::parse("def"), Some(Keyword::Fn));
        assert_eq!(Keyword::parse("None"), Some(Keyword::Null));
        assert_eq!(Keyword::parse("True"), Some(Keyword::True));
        assert_eq!(Keyword::parse("banana"), None);
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(TokenKind::StarStar.to_string(), "**");
        assert_eq!(TokenKind::Str("hi".into()).to_string(), "\"hi\"");
    }
}
