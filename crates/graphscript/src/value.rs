//! Runtime values for the GraphScript interpreter.

use crate::ast::Stmt;
use crate::error::{Result, ScriptError};
use dataframe::DataFrame;
use netgraph::{AttrMap, AttrValue, Graph};
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// A user-defined function (the body of a `fn` statement).
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDef {
    /// Function name (used in error messages).
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A dynamically-typed runtime value.
///
/// Lists and dictionaries have reference semantics (mutating a list obtained
/// from a variable mutates the original), matching the Python programs the
/// LLM-generated code imitates. Graphs and dataframes are also shared
/// references so the sandbox can observe mutations made by the program.
#[derive(Debug, Clone)]
pub enum Value {
    /// `null` / `None`
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// String.
    Str(String),
    /// Mutable list.
    List(Rc<RefCell<Vec<Value>>>),
    /// Mutable dictionary with string keys, deterministically ordered.
    Dict(Rc<RefCell<BTreeMap<String, Value>>>),
    /// A property graph (the `G` global of the NetworkX backend).
    Graph(Rc<RefCell<Graph>>),
    /// A dataframe (the `nodes` / `edges` globals of the pandas backend).
    Frame(Rc<RefCell<DataFrame>>),
    /// A user-defined function.
    Function(Rc<FunctionDef>),
}

impl Value {
    /// Builds a list value.
    pub fn list(items: Vec<Value>) -> Value {
        Value::List(Rc::new(RefCell::new(items)))
    }

    /// Builds a dictionary value.
    pub fn dict(map: BTreeMap<String, Value>) -> Value {
        Value::Dict(Rc::new(RefCell::new(map)))
    }

    /// Wraps a graph.
    pub fn graph(g: Graph) -> Value {
        Value::Graph(Rc::new(RefCell::new(g)))
    }

    /// Wraps a dataframe.
    pub fn frame(df: DataFrame) -> Value {
        Value::Frame(Rc::new(RefCell::new(df)))
    }

    /// A short lowercase type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::List(_) => "list",
            Value::Dict(_) => "dict",
            Value::Graph(_) => "graph",
            Value::Frame(_) => "dataframe",
            Value::Function(_) => "function",
        }
    }

    /// Python-style truthiness.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::List(l) => !l.borrow().is_empty(),
            Value::Dict(d) => !d.borrow().is_empty(),
            Value::Graph(_) | Value::Frame(_) | Value::Function(_) => true,
        }
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Integer view (floats with no fractional part coerce).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.is_finite() => Some(*f as i64),
            Value::Bool(b) => Some(if *b { 1 } else { 0 }),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Requires an integer, erroring with `context` otherwise.
    pub fn expect_i64(&self, context: &str) -> Result<i64> {
        self.as_i64().ok_or_else(|| {
            ScriptError::TypeError(format!(
                "{context} expects an integer, got {}",
                self.type_name()
            ))
        })
    }

    /// Requires a number, erroring with `context` otherwise.
    pub fn expect_f64(&self, context: &str) -> Result<f64> {
        self.as_f64().ok_or_else(|| {
            ScriptError::TypeError(format!(
                "{context} expects a number, got {}",
                self.type_name()
            ))
        })
    }

    /// Requires a string, erroring with `context` otherwise.
    pub fn expect_str(&self, context: &str) -> Result<String> {
        self.as_str().map(|s| s.to_string()).ok_or_else(|| {
            ScriptError::TypeError(format!(
                "{context} expects a string, got {}",
                self.type_name()
            ))
        })
    }

    /// The string used when this value is a dictionary key.
    pub fn as_key(&self) -> Result<String> {
        match self {
            Value::Str(s) => Ok(s.clone()),
            Value::Int(i) => Ok(i.to_string()),
            Value::Bool(b) => Ok(b.to_string()),
            Value::Float(f) => Ok(f.to_string()),
            other => Err(ScriptError::TypeError(format!(
                "{} cannot be used as a dictionary key",
                other.type_name()
            ))),
        }
    }

    /// Deep conversion to an [`AttrValue`] (the attribute type shared by the
    /// graph, frame and SQL substrates). Dictionaries, graphs, frames and
    /// functions cannot be stored as attributes.
    pub fn to_attr(&self) -> Result<AttrValue> {
        Ok(match self {
            Value::Null => AttrValue::Null,
            Value::Bool(b) => AttrValue::Bool(*b),
            Value::Int(i) => AttrValue::Int(*i),
            Value::Float(f) => AttrValue::Float(*f),
            Value::Str(s) => AttrValue::Str(s.as_str().into()),
            Value::List(items) => AttrValue::List(
                items
                    .borrow()
                    .iter()
                    .map(Value::to_attr)
                    .collect::<Result<Vec<_>>>()?,
            ),
            other => {
                return Err(ScriptError::TypeError(format!(
                    "a {} cannot be stored as an attribute value",
                    other.type_name()
                )))
            }
        })
    }

    /// Conversion from an [`AttrValue`].
    pub fn from_attr(attr: &AttrValue) -> Value {
        match attr {
            AttrValue::Null => Value::Null,
            AttrValue::Bool(b) => Value::Bool(*b),
            AttrValue::Int(i) => Value::Int(*i),
            AttrValue::Float(f) => Value::Float(*f),
            AttrValue::Str(s) => Value::Str(s.to_string()),
            AttrValue::List(items) => Value::list(items.iter().map(Value::from_attr).collect()),
        }
    }

    /// Converts a dictionary value into an attribute map (for
    /// `G.add_node(id, {...})`-style calls).
    pub fn to_attr_map(&self) -> Result<AttrMap> {
        match self {
            Value::Dict(map) => {
                let mut out = AttrMap::new();
                for (k, v) in map.borrow().iter() {
                    out.insert(k.clone(), v.to_attr()?);
                }
                Ok(out)
            }
            Value::Null => Ok(AttrMap::new()),
            other => Err(ScriptError::TypeError(format!(
                "expected a dict of attributes, got {}",
                other.type_name()
            ))),
        }
    }

    /// Converts an attribute map into a dictionary value.
    pub fn from_attr_map(map: &AttrMap) -> Value {
        Value::dict(
            map.iter()
                .map(|(k, v)| (k.clone(), Value::from_attr(v)))
                .collect(),
        )
    }

    /// Ordering used by comparisons and `sorted()`. Numbers compare
    /// numerically, strings lexicographically, lists element-wise; values of
    /// incomparable types return `None`.
    pub fn partial_cmp_value(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::List(a), Value::List(b)) => {
                let a = a.borrow();
                let b = b.borrow();
                for (x, y) in a.iter().zip(b.iter()) {
                    match x.partial_cmp_value(y) {
                        Some(Ordering::Equal) => continue,
                        other => return other,
                    }
                }
                Some(a.len().cmp(&b.len()))
            }
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                a.partial_cmp(&b)
            }
        }
    }

    /// Deep equality with numeric coercion and float tolerance; the
    /// comparison the evaluator uses when matching program output against
    /// the golden answer.
    pub fn approx_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::List(a), Value::List(b)) => {
                let a = a.borrow();
                let b = b.borrow();
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.approx_eq(y))
            }
            (Value::Dict(a), Value::Dict(b)) => {
                let a = a.borrow();
                let b = b.borrow();
                a.len() == b.len()
                    && a.iter()
                        .all(|(k, v)| b.get(k).map(|o| v.approx_eq(o)).unwrap_or(false))
            }
            (Value::Graph(a), Value::Graph(b)) => {
                netgraph::graphs_approx_eq(&a.borrow(), &b.borrow())
            }
            (Value::Frame(a), Value::Frame(b)) => a.borrow().approx_eq(&b.borrow()),
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => {
                    let diff = (a - b).abs();
                    diff <= 1e-9 || diff <= 1e-9 * a.abs().max(b.abs())
                }
                _ => false,
            },
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.borrow().iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Dict(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.borrow().iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
            Value::Graph(g) => {
                let g = g.borrow();
                write!(
                    f,
                    "<graph {} nodes, {} edges>",
                    g.number_of_nodes(),
                    g.number_of_edges()
                )
            }
            Value::Frame(df) => {
                let df = df.borrow();
                write!(f, "<dataframe {} rows x {} cols>", df.n_rows(), df.n_cols())
            }
            Value::Function(func) => write!(f, "<fn {}>", func.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness_and_type_names() {
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Str(String::new()).is_truthy());
        assert!(Value::Int(3).is_truthy());
        assert!(Value::list(vec![Value::Int(1)]).is_truthy());
        assert!(!Value::dict(BTreeMap::new()).is_truthy());
        assert_eq!(Value::graph(Graph::directed()).type_name(), "graph");
    }

    #[test]
    fn attr_round_trip() {
        let v = Value::list(vec![Value::Int(1), Value::Str("x".into()), Value::Null]);
        let attr = v.to_attr().unwrap();
        let back = Value::from_attr(&attr);
        assert!(v.approx_eq(&back));
        assert!(Value::graph(Graph::directed()).to_attr().is_err());
    }

    #[test]
    fn attr_map_round_trip() {
        let mut map = BTreeMap::new();
        map.insert("bytes".to_string(), Value::Int(10));
        map.insert("color".to_string(), Value::Str("red".into()));
        let d = Value::dict(map);
        let am = d.to_attr_map().unwrap();
        assert_eq!(am.len(), 2);
        let back = Value::from_attr_map(&am);
        assert!(d.approx_eq(&back));
        assert!(Value::Int(3).to_attr_map().is_err());
        assert!(Value::Null.to_attr_map().unwrap().is_empty());
    }

    #[test]
    fn approx_eq_is_deep_and_tolerant() {
        assert!(Value::Int(5).approx_eq(&Value::Float(5.0)));
        let a = Value::list(vec![Value::Float(0.1 + 0.2)]);
        let b = Value::list(vec![Value::Float(0.3)]);
        assert!(a.approx_eq(&b));
        let mut d1 = BTreeMap::new();
        d1.insert("a".to_string(), Value::Int(1));
        let mut d2 = BTreeMap::new();
        d2.insert("a".to_string(), Value::Float(1.0));
        assert!(Value::dict(d1).approx_eq(&Value::dict(d2)));
        assert!(!Value::Str("1".into()).approx_eq(&Value::Int(1)));
    }

    #[test]
    fn list_reference_semantics() {
        let a = Value::list(vec![Value::Int(1)]);
        let b = a.clone();
        if let Value::List(items) = &a {
            items.borrow_mut().push(Value::Int(2));
        }
        if let Value::List(items) = &b {
            assert_eq!(items.borrow().len(), 2);
        }
    }

    #[test]
    fn ordering_and_keys() {
        assert_eq!(
            Value::Int(1).partial_cmp_value(&Value::Float(1.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Str("a".into()).partial_cmp_value(&Value::Str("b".into())),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Str("a".into()).partial_cmp_value(&Value::Int(1)),
            None
        );
        assert_eq!(Value::Int(5).as_key().unwrap(), "5");
        assert!(Value::list(vec![]).as_key().is_err());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(
            Value::list(vec![Value::Int(1), Value::Str("a".into())]).to_string(),
            "[1, a]"
        );
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), Value::Int(1));
        assert_eq!(Value::dict(m).to_string(), "{k: 1}");
        assert!(Value::graph(Graph::directed())
            .to_string()
            .contains("graph"));
    }
}
