//! Abstract syntax tree for GraphScript.

/// A parsed program: a sequence of statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Top-level statements in source order.
    pub statements: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// An expression evaluated for its side effects; the value of the last
    /// top-level expression statement becomes the program result.
    Expr(Expr),
    /// `name = expr` or `target[index] = expr`.
    Assign {
        /// What is being assigned to.
        target: AssignTarget,
        /// The assigned expression.
        value: Expr,
    },
    /// Augmented assignment (`x += 1`); only plain names are supported as
    /// targets, matching how the generated programs use it.
    AugAssign {
        /// Variable being updated.
        name: String,
        /// `+`, `-`, `*` or `/`.
        op: BinaryOp,
        /// Right-hand side.
        value: Expr,
    },
    /// `if cond { ... } elif cond { ... } else { ... }`
    If {
        /// `(condition, body)` pairs: the `if` arm followed by `elif` arms.
        branches: Vec<(Expr, Vec<Stmt>)>,
        /// The `else` body, if present.
        otherwise: Option<Vec<Stmt>>,
    },
    /// `for var in iterable { ... }`
    For {
        /// Loop variable name (or two names for `for k, v in ...`).
        vars: Vec<String>,
        /// The iterated expression.
        iterable: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `while cond { ... }`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `fn name(params) { ... }`
    FnDef {
        /// Function name.
        name: String,
        /// Parameter names.
        params: Vec<String>,
        /// Function body.
        body: Vec<Stmt>,
    },
    /// `return [expr]`
    Return(Option<Expr>),
    /// `break`
    Break,
    /// `continue`
    Continue,
}

/// The left-hand side of an assignment.
#[derive(Debug, Clone, PartialEq)]
pub enum AssignTarget {
    /// A plain variable.
    Name(String),
    /// `container[index] = ...` (list element or dict key).
    Index {
        /// The container expression.
        object: Expr,
        /// The index/key expression.
        index: Expr,
    },
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `**`
    Pow,
    /// `==`
    Eq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `and`
    And,
    /// `or`
    Or,
    /// `in` (membership test)
    In,
    /// `not in`
    NotIn,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `null` / `None`
    Null,
    /// Boolean literal.
    Bool(bool),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// A variable reference.
    Name(String),
    /// `[a, b, c]`
    List(Vec<Expr>),
    /// `{"k": v, ...}`
    Dict(Vec<(Expr, Expr)>),
    /// Unary minus.
    Neg(Box<Expr>),
    /// Logical not (`not x` / `!x`).
    Not(Box<Expr>),
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// A free function call `name(args)`.
    Call {
        /// Function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// A method call `receiver.name(args)`.
    MethodCall {
        /// The receiver expression.
        object: Box<Expr>,
        /// Method name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Subscription `object[index]`.
    Index {
        /// The container.
        object: Box<Expr>,
        /// The index or key.
        index: Box<Expr>,
    },
    /// Attribute access without a call, `object.name` (used for dict field
    /// sugar and for erroring helpfully on unknown members).
    Attr {
        /// The receiver expression.
        object: Box<Expr>,
        /// Attribute name.
        name: String,
    },
}

impl Expr {
    /// Convenience constructor for a binary node.
    pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_helper_builds_tree() {
        let e = Expr::binary(Expr::Int(1), BinaryOp::Add, Expr::Int(2));
        assert!(matches!(
            e,
            Expr::Binary {
                op: BinaryOp::Add,
                ..
            }
        ));
    }
}
