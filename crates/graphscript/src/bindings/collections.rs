//! Methods on lists, dictionaries and strings.

use crate::bindings::expect_arity;
use crate::error::{Result, ScriptError};
use crate::value::Value;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Dispatches a method call on a list.
pub fn call_list(items: &Rc<RefCell<Vec<Value>>>, method: &str, args: &[Value]) -> Result<Value> {
    match method {
        "append" => {
            expect_arity("append", args, &[1])?;
            items.borrow_mut().push(args[0].clone());
            Ok(Value::Null)
        }
        "extend" => {
            expect_arity("extend", args, &[1])?;
            match &args[0] {
                Value::List(other) => {
                    let extra = other.borrow().clone();
                    items.borrow_mut().extend(extra);
                    Ok(Value::Null)
                }
                other => Err(ScriptError::TypeError(format!(
                    "extend() expects a list, got {}",
                    other.type_name()
                ))),
            }
        }
        "pop" => {
            expect_arity("pop", args, &[0])?;
            items
                .borrow_mut()
                .pop()
                .ok_or_else(|| ScriptError::Runtime("pop from an empty list".to_string()))
        }
        "insert" => {
            expect_arity("insert", args, &[2])?;
            let idx = args[0].expect_i64("insert")?.max(0) as usize;
            let mut borrowed = items.borrow_mut();
            let idx = idx.min(borrowed.len());
            borrowed.insert(idx, args[1].clone());
            Ok(Value::Null)
        }
        "remove" => {
            expect_arity("remove", args, &[1])?;
            let mut borrowed = items.borrow_mut();
            match borrowed.iter().position(|v| v.approx_eq(&args[0])) {
                Some(pos) => {
                    borrowed.remove(pos);
                    Ok(Value::Null)
                }
                None => Err(ScriptError::Runtime(format!(
                    "list.remove(): value {} not found",
                    args[0]
                ))),
            }
        }
        "sort" => {
            expect_arity("sort", args, &[0, 1])?;
            let descending = args.first().map(|v| v.is_truthy()).unwrap_or(false);
            let mut borrowed = items.borrow_mut();
            borrowed.sort_by(|a, b| a.partial_cmp_value(b).unwrap_or(std::cmp::Ordering::Equal));
            if descending {
                borrowed.reverse();
            }
            Ok(Value::Null)
        }
        "reverse" => {
            expect_arity("reverse", args, &[0])?;
            items.borrow_mut().reverse();
            Ok(Value::Null)
        }
        "contains" => {
            expect_arity("contains", args, &[1])?;
            Ok(Value::Bool(
                items.borrow().iter().any(|v| v.approx_eq(&args[0])),
            ))
        }
        "index" => {
            expect_arity("index", args, &[1])?;
            items
                .borrow()
                .iter()
                .position(|v| v.approx_eq(&args[0]))
                .map(|i| Value::Int(i as i64))
                .ok_or_else(|| {
                    ScriptError::Runtime(format!("list.index(): value {} not found", args[0]))
                })
        }
        "count" => {
            expect_arity("count", args, &[1])?;
            Ok(Value::Int(
                items
                    .borrow()
                    .iter()
                    .filter(|v| v.approx_eq(&args[0]))
                    .count() as i64,
            ))
        }
        other => Err(ScriptError::AttributeError {
            type_name: "list".to_string(),
            attr: other.to_string(),
        }),
    }
}

/// Dispatches a method call on a dictionary.
pub fn call_dict(
    map: &Rc<RefCell<BTreeMap<String, Value>>>,
    method: &str,
    args: &[Value],
) -> Result<Value> {
    match method {
        "get" => {
            expect_arity("get", args, &[1, 2])?;
            let key = args[0].as_key()?;
            Ok(map
                .borrow()
                .get(&key)
                .cloned()
                .unwrap_or_else(|| args.get(1).cloned().unwrap_or(Value::Null)))
        }
        "set" => {
            expect_arity("set", args, &[2])?;
            let key = args[0].as_key()?;
            map.borrow_mut().insert(key, args[1].clone());
            Ok(Value::Null)
        }
        "keys" => {
            expect_arity("keys", args, &[0])?;
            Ok(Value::list(
                map.borrow().keys().map(|k| Value::Str(k.clone())).collect(),
            ))
        }
        "values" => {
            expect_arity("values", args, &[0])?;
            Ok(Value::list(map.borrow().values().cloned().collect()))
        }
        "items" => {
            expect_arity("items", args, &[0])?;
            Ok(Value::list(
                map.borrow()
                    .iter()
                    .map(|(k, v)| Value::list(vec![Value::Str(k.clone()), v.clone()]))
                    .collect(),
            ))
        }
        "contains" | "has_key" => {
            expect_arity(method, args, &[1])?;
            let key = args[0].as_key()?;
            Ok(Value::Bool(map.borrow().contains_key(&key)))
        }
        "remove" | "delete" => {
            expect_arity(method, args, &[1])?;
            let key = args[0].as_key()?;
            map.borrow_mut()
                .remove(&key)
                .ok_or_else(|| ScriptError::MissingAttribute {
                    owner: "dict".to_string(),
                    key,
                })
        }
        "update" => {
            expect_arity("update", args, &[1])?;
            match &args[0] {
                Value::Dict(other) => {
                    let extra = other.borrow().clone();
                    map.borrow_mut().extend(extra);
                    Ok(Value::Null)
                }
                other => Err(ScriptError::TypeError(format!(
                    "update() expects a dict, got {}",
                    other.type_name()
                ))),
            }
        }
        other => Err(ScriptError::AttributeError {
            type_name: "dict".to_string(),
            attr: other.to_string(),
        }),
    }
}

/// Dispatches a method call on a string.
pub fn call_str(s: &str, method: &str, args: &[Value]) -> Result<Value> {
    match method {
        "split" => {
            expect_arity("split", args, &[0, 1])?;
            let parts: Vec<Value> = match args.first() {
                Some(sep) => {
                    let sep = sep.expect_str("split")?;
                    s.split(sep.as_str())
                        .map(|p| Value::Str(p.to_string()))
                        .collect()
                }
                None => s
                    .split_whitespace()
                    .map(|p| Value::Str(p.to_string()))
                    .collect(),
            };
            Ok(Value::list(parts))
        }
        "startswith" | "starts_with" => {
            expect_arity(method, args, &[1])?;
            Ok(Value::Bool(s.starts_with(&args[0].expect_str(method)?)))
        }
        "endswith" | "ends_with" => {
            expect_arity(method, args, &[1])?;
            Ok(Value::Bool(s.ends_with(&args[0].expect_str(method)?)))
        }
        "contains" => {
            expect_arity("contains", args, &[1])?;
            Ok(Value::Bool(s.contains(&args[0].expect_str("contains")?)))
        }
        "upper" => {
            expect_arity("upper", args, &[0])?;
            Ok(Value::Str(s.to_uppercase()))
        }
        "lower" => {
            expect_arity("lower", args, &[0])?;
            Ok(Value::Str(s.to_lowercase()))
        }
        "strip" => {
            expect_arity("strip", args, &[0])?;
            Ok(Value::Str(s.trim().to_string()))
        }
        "replace" => {
            expect_arity("replace", args, &[2])?;
            let from = args[0].expect_str("replace")?;
            let to = args[1].expect_str("replace")?;
            Ok(Value::Str(s.replace(&from, &to)))
        }
        "join" => {
            expect_arity("join", args, &[1])?;
            match &args[0] {
                Value::List(items) => Ok(Value::Str(
                    items
                        .borrow()
                        .iter()
                        .map(Value::to_string)
                        .collect::<Vec<_>>()
                        .join(s),
                )),
                other => Err(ScriptError::TypeError(format!(
                    "join() expects a list, got {}",
                    other.type_name()
                ))),
            }
        }
        other => Err(ScriptError::AttributeError {
            type_name: "str".to_string(),
            attr: other.to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bindings::call_method;

    #[test]
    fn list_mutation_methods() {
        let list = Value::list(vec![Value::Int(2), Value::Int(1)]);
        call_method(&list, "append", &[Value::Int(3)]).unwrap();
        call_method(&list, "sort", &[]).unwrap();
        assert_eq!(list.to_string(), "[1, 2, 3]");
        call_method(&list, "reverse", &[]).unwrap();
        assert_eq!(list.to_string(), "[3, 2, 1]");
        assert_eq!(
            call_method(&list, "contains", &[Value::Int(2)])
                .unwrap()
                .to_string(),
            "true"
        );
        assert_eq!(
            call_method(&list, "index", &[Value::Int(2)])
                .unwrap()
                .to_string(),
            "1"
        );
        let popped = call_method(&list, "pop", &[]).unwrap();
        assert_eq!(popped.to_string(), "1");
        call_method(&list, "remove", &[Value::Int(3)]).unwrap();
        assert_eq!(list.to_string(), "[2]");
        assert!(call_method(&list, "remove", &[Value::Int(99)]).is_err());
    }

    #[test]
    fn dict_methods() {
        let d = Value::dict(BTreeMap::new());
        call_method(&d, "set", &[Value::Str("a".into()), Value::Int(1)]).unwrap();
        assert_eq!(
            call_method(&d, "get", &[Value::Str("a".into())])
                .unwrap()
                .to_string(),
            "1"
        );
        assert_eq!(
            call_method(&d, "get", &[Value::Str("zz".into()), Value::Int(0)])
                .unwrap()
                .to_string(),
            "0"
        );
        assert_eq!(
            call_method(&d, "contains", &[Value::Str("a".into())])
                .unwrap()
                .to_string(),
            "true"
        );
        assert_eq!(call_method(&d, "keys", &[]).unwrap().to_string(), "[a]");
        let err = call_method(&d, "remove", &[Value::Str("nope".into())]).unwrap_err();
        assert!(err.is_missing_attribute());
    }

    #[test]
    fn string_methods() {
        let s = Value::Str("10.76.3.9".into());
        assert_eq!(
            call_method(&s, "split", &[Value::Str(".".into())])
                .unwrap()
                .to_string(),
            "[10, 76, 3, 9]"
        );
        assert_eq!(
            call_method(&s, "startswith", &[Value::Str("10.76".into())])
                .unwrap()
                .to_string(),
            "true"
        );
        assert_eq!(
            call_method(
                &Value::Str("a-b".into()),
                "replace",
                &[Value::Str("-".into()), Value::Str(":".into())]
            )
            .unwrap()
            .to_string(),
            "a:b"
        );
        let sep = Value::Str(".".into());
        let list = Value::list(vec![Value::Str("10".into()), Value::Str("76".into())]);
        assert_eq!(
            call_method(&sep, "join", &[list]).unwrap().to_string(),
            "10.76"
        );
    }

    #[test]
    fn unknown_methods_are_attribute_errors() {
        let list = Value::list(vec![]);
        assert!(matches!(
            call_method(&list, "shuffle", &[]),
            Err(ScriptError::AttributeError { .. })
        ));
        assert!(matches!(
            call_method(&Value::Str("x".into()), "explode", &[]),
            Err(ScriptError::AttributeError { .. })
        ));
    }

    #[test]
    fn wrong_arity_is_argument_error() {
        let list = Value::list(vec![]);
        assert!(call_method(&list, "append", &[])
            .unwrap_err()
            .is_argument_error());
        let d = Value::dict(BTreeMap::new());
        assert!(call_method(&d, "set", &[Value::Int(1)])
            .unwrap_err()
            .is_argument_error());
    }
}
