//! Methods on graph values (the `G` global of the NetworkX backend).
//!
//! The method surface deliberately mirrors the subset of the NetworkX
//! `Graph`/`DiGraph` API that the benchmark's golden programs (and the
//! LLM-imitating fault injector) use. Errors map onto the script error
//! taxonomy: missing attributes become [`ScriptError::MissingAttribute`],
//! missing nodes/edges become [`ScriptError::Runtime`], unknown methods
//! become [`ScriptError::AttributeError`].

use crate::bindings::expect_arity;
use crate::error::{Result, ScriptError};
use crate::stdlib::graph_err;
use crate::value::Value;
use netgraph::Graph;
use std::cell::RefCell;
use std::rc::Rc;

/// Dispatches a method call on a graph.
pub fn call(g: &Rc<RefCell<Graph>>, method: &str, args: &[Value]) -> Result<Value> {
    match method {
        // ------------------------------------------------------- inspection
        "number_of_nodes" => {
            expect_arity(method, args, &[0])?;
            Ok(Value::Int(g.borrow().number_of_nodes() as i64))
        }
        "number_of_edges" => {
            expect_arity(method, args, &[0])?;
            Ok(Value::Int(g.borrow().number_of_edges() as i64))
        }
        "is_directed" => {
            expect_arity(method, args, &[0])?;
            Ok(Value::Bool(g.borrow().is_directed()))
        }
        "nodes" => {
            expect_arity(method, args, &[0])?;
            Ok(Value::list(
                g.borrow()
                    .node_ids()
                    .map(|n| Value::Str(n.to_string()))
                    .collect(),
            ))
        }
        "nodes_data" => {
            expect_arity(method, args, &[0])?;
            Ok(Value::list(
                g.borrow()
                    .nodes()
                    .map(|(id, attrs)| {
                        Value::list(vec![
                            Value::Str(id.to_string()),
                            Value::from_attr_map(attrs),
                        ])
                    })
                    .collect(),
            ))
        }
        "edges" => {
            expect_arity(method, args, &[0])?;
            Ok(Value::list(
                g.borrow()
                    .edges()
                    .map(|(u, v, _)| {
                        Value::list(vec![Value::Str(u.to_string()), Value::Str(v.to_string())])
                    })
                    .collect(),
            ))
        }
        "edges_data" => {
            expect_arity(method, args, &[0])?;
            Ok(Value::list(
                g.borrow()
                    .edges()
                    .map(|(u, v, attrs)| {
                        Value::list(vec![
                            Value::Str(u.to_string()),
                            Value::Str(v.to_string()),
                            Value::from_attr_map(attrs),
                        ])
                    })
                    .collect(),
            ))
        }
        "has_node" => {
            expect_arity(method, args, &[1])?;
            let id = args[0].expect_str(method)?;
            Ok(Value::Bool(g.borrow().has_node(&id)))
        }
        "has_edge" => {
            expect_arity(method, args, &[2])?;
            let u = args[0].expect_str(method)?;
            let v = args[1].expect_str(method)?;
            Ok(Value::Bool(g.borrow().has_edge(&u, &v)))
        }

        // -------------------------------------------------------- adjacency
        "neighbors" | "successors" | "predecessors" => {
            expect_arity(method, args, &[1])?;
            let id = args[0].expect_str(method)?;
            let graph = g.borrow();
            let list = match method {
                "neighbors" => graph.neighbors(&id),
                "successors" => graph.successors(&id),
                _ => graph.predecessors(&id),
            }
            .map_err(graph_err)?;
            Ok(Value::list(list.into_iter().map(Value::Str).collect()))
        }
        "degree" | "in_degree" | "out_degree" => {
            expect_arity(method, args, &[1])?;
            let id = args[0].expect_str(method)?;
            let graph = g.borrow();
            let d = match method {
                "degree" => graph.degree(&id),
                "in_degree" => graph.in_degree(&id),
                _ => graph.out_degree(&id),
            }
            .map_err(graph_err)?;
            Ok(Value::Int(d as i64))
        }

        // ------------------------------------------------------- attributes
        "node_attrs" => {
            expect_arity(method, args, &[1])?;
            let id = args[0].expect_str(method)?;
            let graph = g.borrow();
            let attrs = graph.node_attrs(&id).map_err(graph_err)?;
            Ok(Value::from_attr_map(attrs))
        }
        "edge_attrs" => {
            expect_arity(method, args, &[2])?;
            let u = args[0].expect_str(method)?;
            let v = args[1].expect_str(method)?;
            let graph = g.borrow();
            let attrs = graph.edge_attrs(&u, &v).map_err(graph_err)?;
            Ok(Value::from_attr_map(attrs))
        }
        "get_node_attr" => {
            expect_arity(method, args, &[2, 3])?;
            let id = args[0].expect_str(method)?;
            let key = args[1].expect_str(method)?;
            let graph = g.borrow();
            match graph.get_node_attr(&id, &key) {
                Ok(v) => Ok(Value::from_attr(v)),
                Err(netgraph::GraphError::AttrNotFound { .. }) if args.len() == 3 => {
                    Ok(args[2].clone())
                }
                Err(e) => Err(graph_err(e)),
            }
        }
        "get_edge_attr" => {
            expect_arity(method, args, &[3, 4])?;
            let u = args[0].expect_str(method)?;
            let v = args[1].expect_str(method)?;
            let key = args[2].expect_str(method)?;
            let graph = g.borrow();
            match graph.get_edge_attr(&u, &v, &key) {
                Ok(val) => Ok(Value::from_attr(val)),
                Err(netgraph::GraphError::AttrNotFound { .. }) if args.len() == 4 => {
                    Ok(args[3].clone())
                }
                Err(e) => Err(graph_err(e)),
            }
        }
        "set_node_attr" => {
            expect_arity(method, args, &[3])?;
            let id = args[0].expect_str(method)?;
            let key = args[1].expect_str(method)?;
            let value = args[2].to_attr()?;
            g.borrow_mut()
                .set_node_attr(&id, &key, value)
                .map_err(graph_err)?;
            Ok(Value::Null)
        }
        "set_edge_attr" => {
            expect_arity(method, args, &[4])?;
            let u = args[0].expect_str(method)?;
            let v = args[1].expect_str(method)?;
            let key = args[2].expect_str(method)?;
            let value = args[3].to_attr()?;
            g.borrow_mut()
                .set_edge_attr(&u, &v, &key, value)
                .map_err(graph_err)?;
            Ok(Value::Null)
        }
        "total_edge_attr" => {
            expect_arity(method, args, &[1])?;
            let key = args[0].expect_str(method)?;
            Ok(Value::Float(g.borrow().total_edge_attr(&key)))
        }

        // --------------------------------------------------------- mutation
        "add_node" => {
            expect_arity(method, args, &[1, 2])?;
            let id = args[0].expect_str(method)?;
            let attrs = match args.get(1) {
                Some(v) => v.to_attr_map()?,
                None => Default::default(),
            };
            g.borrow_mut().add_node(&id, attrs);
            Ok(Value::Null)
        }
        "add_edge" => {
            expect_arity(method, args, &[2, 3])?;
            let u = args[0].expect_str(method)?;
            let v = args[1].expect_str(method)?;
            let attrs = match args.get(2) {
                Some(a) => a.to_attr_map()?,
                None => Default::default(),
            };
            g.borrow_mut().add_edge(&u, &v, attrs);
            Ok(Value::Null)
        }
        "remove_node" => {
            expect_arity(method, args, &[1])?;
            let id = args[0].expect_str(method)?;
            g.borrow_mut().remove_node(&id).map_err(graph_err)?;
            Ok(Value::Null)
        }
        "remove_edge" => {
            expect_arity(method, args, &[2])?;
            let u = args[0].expect_str(method)?;
            let v = args[1].expect_str(method)?;
            g.borrow_mut().remove_edge(&u, &v).map_err(graph_err)?;
            Ok(Value::Null)
        }

        // ---------------------------------------------------------- derived
        "subgraph" => {
            expect_arity(method, args, &[1])?;
            let keep: Vec<String> = match &args[0] {
                Value::List(items) => items
                    .borrow()
                    .iter()
                    .map(|v| v.expect_str("subgraph"))
                    .collect::<Result<_>>()?,
                other => {
                    return Err(ScriptError::TypeError(format!(
                        "subgraph() expects a list of node ids, got {}",
                        other.type_name()
                    )))
                }
            };
            let sub = g.borrow().subgraph(keep.iter().map(String::as_str));
            Ok(Value::graph(sub))
        }
        "reverse" => {
            expect_arity(method, args, &[0])?;
            Ok(Value::graph(g.borrow().reverse()))
        }
        "to_undirected" => {
            expect_arity(method, args, &[0])?;
            Ok(Value::graph(g.borrow().to_undirected()))
        }
        "copy" => {
            expect_arity(method, args, &[0])?;
            Ok(Value::graph(g.borrow().clone()))
        }
        "nodes_with_attr" => {
            // nodes_with_attr(key, value): node ids whose attribute equals value.
            expect_arity(method, args, &[2])?;
            let key = args[0].expect_str(method)?;
            let want = args[1].to_attr()?;
            let graph = g.borrow();
            let ids =
                graph.nodes_where(|a| a.get(&key).map(|v| v.approx_eq(&want)).unwrap_or(false));
            Ok(Value::list(ids.into_iter().map(Value::Str).collect()))
        }
        "nodes_with_prefix" => {
            // nodes_with_prefix(prefix): node ids whose id starts with prefix.
            expect_arity(method, args, &[1])?;
            let prefix = args[0].expect_str(method)?;
            let graph = g.borrow();
            let ids: Vec<Value> = graph
                .node_ids()
                .filter(|n| n.starts_with(&prefix))
                .map(|n| Value::Str(n.to_string()))
                .collect();
            Ok(Value::list(ids))
        }
        other => Err(ScriptError::AttributeError {
            type_name: "graph".to_string(),
            attr: other.to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::attrs;

    fn sample() -> Value {
        let mut g = Graph::directed();
        g.add_edge("10.0.1.1", "10.0.2.2", attrs([("bytes", 100i64)]));
        g.add_edge("10.0.2.2", "10.1.3.3", attrs([("bytes", 250i64)]));
        g.set_node_attr("10.0.1.1", "role", "server").unwrap();
        Value::graph(g)
    }

    fn call_on(v: &Value, method: &str, args: &[Value]) -> Result<Value> {
        match v {
            Value::Graph(g) => call(g, method, args),
            _ => panic!("expected graph"),
        }
    }

    #[test]
    fn inspection_methods() {
        let g = sample();
        assert_eq!(
            call_on(&g, "number_of_nodes", &[]).unwrap().to_string(),
            "3"
        );
        assert_eq!(
            call_on(&g, "number_of_edges", &[]).unwrap().to_string(),
            "2"
        );
        assert_eq!(call_on(&g, "is_directed", &[]).unwrap().to_string(), "true");
        assert_eq!(
            call_on(&g, "nodes", &[]).unwrap().to_string(),
            "[10.0.1.1, 10.0.2.2, 10.1.3.3]"
        );
        assert_eq!(
            call_on(
                &g,
                "has_edge",
                &[Value::Str("10.0.1.1".into()), Value::Str("10.0.2.2".into())]
            )
            .unwrap()
            .to_string(),
            "true"
        );
    }

    #[test]
    fn attribute_access_and_defaults() {
        let g = sample();
        let bytes = call_on(
            &g,
            "get_edge_attr",
            &[
                Value::Str("10.0.1.1".into()),
                Value::Str("10.0.2.2".into()),
                Value::Str("bytes".into()),
            ],
        )
        .unwrap();
        assert_eq!(bytes.to_string(), "100");
        // Missing attribute without a default is the "imaginary attribute" error.
        let err = call_on(
            &g,
            "get_node_attr",
            &[Value::Str("10.0.2.2".into()), Value::Str("capacity".into())],
        )
        .unwrap_err();
        assert!(err.is_missing_attribute());
        // With a default it succeeds.
        let v = call_on(
            &g,
            "get_node_attr",
            &[
                Value::Str("10.0.2.2".into()),
                Value::Str("capacity".into()),
                Value::Int(0),
            ],
        )
        .unwrap();
        assert_eq!(v.to_string(), "0");
    }

    #[test]
    fn mutation_methods() {
        let g = sample();
        call_on(
            &g,
            "set_node_attr",
            &[
                Value::Str("10.0.1.1".into()),
                Value::Str("color".into()),
                Value::Str("red".into()),
            ],
        )
        .unwrap();
        call_on(
            &g,
            "add_edge",
            &[Value::Str("x".into()), Value::Str("y".into())],
        )
        .unwrap();
        assert_eq!(
            call_on(&g, "number_of_edges", &[]).unwrap().to_string(),
            "3"
        );
        call_on(&g, "remove_node", &[Value::Str("x".into())]).unwrap();
        assert_eq!(
            call_on(&g, "number_of_nodes", &[]).unwrap().to_string(),
            "4"
        );
        // Removing a node that does not exist is an operation error.
        let err = call_on(&g, "remove_node", &[Value::Str("zzz".into())]).unwrap_err();
        assert!(matches!(err, ScriptError::Runtime(_)));
    }

    #[test]
    fn derived_views() {
        let g = sample();
        let sub = call_on(
            &g,
            "subgraph",
            &[Value::list(vec![
                Value::Str("10.0.1.1".into()),
                Value::Str("10.0.2.2".into()),
            ])],
        )
        .unwrap();
        assert_eq!(
            call_on(&sub, "number_of_nodes", &[]).unwrap().to_string(),
            "2"
        );
        let undirected = call_on(&g, "to_undirected", &[]).unwrap();
        assert_eq!(
            call_on(&undirected, "is_directed", &[])
                .unwrap()
                .to_string(),
            "false"
        );
        let pref = call_on(&g, "nodes_with_prefix", &[Value::Str("10.0".into())]).unwrap();
        assert_eq!(pref.to_string(), "[10.0.1.1, 10.0.2.2]");
        let with_role = call_on(
            &g,
            "nodes_with_attr",
            &[Value::Str("role".into()), Value::Str("server".into())],
        )
        .unwrap();
        assert_eq!(with_role.to_string(), "[10.0.1.1]");
    }

    #[test]
    fn unknown_method_and_bad_arity() {
        let g = sample();
        let err = call_on(&g, "get_total_weight", &[]).unwrap_err();
        assert!(err.is_unknown_callable());
        let err = call_on(&g, "degree", &[]).unwrap_err();
        assert!(err.is_argument_error());
    }
}
