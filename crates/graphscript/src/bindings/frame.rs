//! Methods on dataframe values (the `nodes` / `edges` globals of the pandas
//! backend).
//!
//! The method surface mirrors the slice of the pandas API the benchmark's
//! golden programs use: filtering, sorting, group-by aggregation, column
//! arithmetic and cell access. Unknown column names raise
//! [`ScriptError::MissingAttribute`] (the "imaginary attribute" failure) and
//! unknown methods raise [`ScriptError::AttributeError`].

use crate::bindings::expect_arity;
use crate::error::{Result, ScriptError};
use crate::value::Value;
use dataframe::ops::{inner_join, AggFunc, CmpOp};
use dataframe::{Column, DataFrame, FrameError};
use std::cell::RefCell;
use std::rc::Rc;

/// Dispatches a method call on a dataframe.
pub fn call(df: &Rc<RefCell<DataFrame>>, method: &str, args: &[Value]) -> Result<Value> {
    match method {
        // ------------------------------------------------------- inspection
        "n_rows" | "len" => {
            expect_arity(method, args, &[0])?;
            Ok(Value::Int(df.borrow().n_rows() as i64))
        }
        "n_cols" => {
            expect_arity(method, args, &[0])?;
            Ok(Value::Int(df.borrow().n_cols() as i64))
        }
        "columns" => {
            expect_arity(method, args, &[0])?;
            Ok(Value::list(
                df.borrow()
                    .column_names()
                    .iter()
                    .map(|c| Value::Str(c.to_string()))
                    .collect(),
            ))
        }
        "has_column" => {
            expect_arity(method, args, &[1])?;
            let name = args[0].expect_str(method)?;
            Ok(Value::Bool(df.borrow().has_column(&name)))
        }
        "head" => {
            expect_arity(method, args, &[1])?;
            let n = args[0].expect_i64(method)?.max(0) as usize;
            Ok(Value::frame(df.borrow().head(n)))
        }
        "copy" => {
            expect_arity(method, args, &[0])?;
            Ok(Value::frame(df.borrow().clone()))
        }

        // ------------------------------------------------------ cell access
        "value" | "at" => {
            expect_arity(method, args, &[2])?;
            let row = args[0].expect_i64(method)?;
            let col = args[1].expect_str(method)?;
            let frame = df.borrow();
            if row < 0 || row as usize >= frame.n_rows() {
                return Err(ScriptError::Runtime(format!(
                    "row index {row} out of bounds for {} rows",
                    frame.n_rows()
                )));
            }
            let v = frame.value(row as usize, &col).map_err(frame_err)?;
            Ok(Value::from_attr(v))
        }
        "set_value" => {
            expect_arity(method, args, &[3])?;
            let row = args[0].expect_i64(method)?.max(0) as usize;
            let col = args[1].expect_str(method)?;
            let value = args[2].to_attr()?;
            df.borrow_mut()
                .set_value(row, &col, value)
                .map_err(frame_err)?;
            Ok(Value::Null)
        }
        "column" | "col" => {
            expect_arity(method, args, &[1])?;
            let name = args[0].expect_str(method)?;
            let frame = df.borrow();
            let col = frame.column(&name).map_err(frame_err)?;
            Ok(Value::list(col.iter().map(Value::from_attr).collect()))
        }
        "row" => {
            expect_arity(method, args, &[1])?;
            let i = args[0].expect_i64(method)?.max(0) as usize;
            let frame = df.borrow();
            let row = frame.row(i).map_err(frame_err)?;
            let dict: std::collections::BTreeMap<String, Value> = frame
                .column_names()
                .iter()
                .zip(&row)
                .map(|(name, v)| (name.to_string(), Value::from_attr(v)))
                .collect();
            Ok(Value::dict(dict))
        }
        "to_rows" => {
            expect_arity(method, args, &[0])?;
            let frame = df.borrow();
            let mut rows = Vec::with_capacity(frame.n_rows());
            for i in 0..frame.n_rows() {
                let row = frame.row(i).map_err(frame_err)?;
                let dict: std::collections::BTreeMap<String, Value> = frame
                    .column_names()
                    .iter()
                    .zip(&row)
                    .map(|(name, v)| (name.to_string(), Value::from_attr(v)))
                    .collect();
                rows.push(Value::dict(dict));
            }
            Ok(Value::list(rows))
        }

        // --------------------------------------------------------- querying
        "filter" => {
            // filter(column, op, value), e.g. filter("bytes", ">=", 100) or
            // filter("id", "startswith", "15.76").
            expect_arity(method, args, &[3])?;
            let col = args[0].expect_str(method)?;
            let op_text = args[1].expect_str(method)?;
            let op = CmpOp::parse(&op_text).ok_or_else(|| ScriptError::ArgumentError {
                function: "filter".to_string(),
                message: format!("unknown comparison operator '{op_text}'"),
            })?;
            let value = args[2].to_attr()?;
            let out = df.borrow().filter_by(&col, op, value).map_err(frame_err)?;
            Ok(Value::frame(out))
        }
        "sort_values" => {
            expect_arity(method, args, &[1, 2])?;
            let col = args[0].expect_str(method)?;
            let ascending = args.get(1).map(|v| v.is_truthy()).unwrap_or(true);
            let out = df
                .borrow()
                .sort_values(&[col.as_str()], ascending)
                .map_err(frame_err)?;
            Ok(Value::frame(out))
        }
        "unique" => {
            expect_arity(method, args, &[1])?;
            let col = args[0].expect_str(method)?;
            let values = df.borrow().unique(&col).map_err(frame_err)?;
            Ok(Value::list(values.iter().map(Value::from_attr).collect()))
        }
        "select" => {
            expect_arity(method, args, &[1])?;
            let cols: Vec<String> = match &args[0] {
                Value::List(items) => items
                    .borrow()
                    .iter()
                    .map(|v| v.expect_str("select"))
                    .collect::<Result<_>>()?,
                other => {
                    return Err(ScriptError::TypeError(format!(
                        "select() expects a list of column names, got {}",
                        other.type_name()
                    )))
                }
            };
            let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
            let out = df.borrow().select(&refs).map_err(frame_err)?;
            Ok(Value::frame(out))
        }
        "join" => {
            // join(other, left_on, right_on)
            expect_arity(method, args, &[3])?;
            let other = match &args[0] {
                Value::Frame(f) => f.borrow().clone(),
                other => {
                    return Err(ScriptError::TypeError(format!(
                        "join() expects a dataframe, got {}",
                        other.type_name()
                    )))
                }
            };
            let left_on = args[1].expect_str(method)?;
            let right_on = args[2].expect_str(method)?;
            let out = inner_join(&df.borrow(), &other, &left_on, &right_on, "_right")
                .map_err(frame_err)?;
            Ok(Value::frame(out))
        }

        // ------------------------------------------------------ aggregation
        "sum" | "mean" | "min" | "max" => {
            expect_arity(method, args, &[1])?;
            let col = args[0].expect_str(method)?;
            let frame = df.borrow();
            let column = frame.column(&col).map_err(frame_err)?;
            let result = match method {
                "sum" => column.sum(),
                "mean" => column.mean(),
                "min" => column.min(),
                _ => column.max(),
            }
            .map_err(frame_err)?;
            Ok(Value::Float(result))
        }
        "count" => {
            expect_arity(method, args, &[0, 1])?;
            let frame = df.borrow();
            match args.first() {
                Some(col) => {
                    let col = col.expect_str(method)?;
                    let column = frame.column(&col).map_err(frame_err)?;
                    Ok(Value::Int(column.count() as i64))
                }
                None => Ok(Value::Int(frame.n_rows() as i64)),
            }
        }
        "nunique" => {
            expect_arity(method, args, &[1])?;
            let col = args[0].expect_str(method)?;
            let frame = df.borrow();
            Ok(Value::Int(
                frame.column(&col).map_err(frame_err)?.nunique() as i64
            ))
        }
        "groupby_agg" => {
            // groupby_agg(key, value_column, func, out_name)
            expect_arity(method, args, &[4])?;
            let key = args[0].expect_str(method)?;
            let value_col = args[1].expect_str(method)?;
            let func_name = args[2].expect_str(method)?;
            let out_name = args[3].expect_str(method)?;
            let func = AggFunc::parse(&func_name).ok_or_else(|| ScriptError::ArgumentError {
                function: "groupby_agg".to_string(),
                message: format!("unknown aggregation '{func_name}'"),
            })?;
            let out = df
                .borrow()
                .group_agg(&key, &value_col, func, &out_name)
                .map_err(frame_err)?;
            Ok(Value::frame(out))
        }
        "groupby_count" => {
            expect_arity(method, args, &[1])?;
            let key = args[0].expect_str(method)?;
            let frame = df.borrow();
            let out = frame
                .groupby(&[key.as_str()])
                .map_err(frame_err)?
                .count()
                .map_err(frame_err)?;
            Ok(Value::frame(out))
        }

        // --------------------------------------------------------- mutation
        "add_column" | "set_column" => {
            expect_arity(method, args, &[2])?;
            let name = args[0].expect_str(method)?;
            let values: Vec<netgraph::AttrValue> = match &args[1] {
                Value::List(items) => items
                    .borrow()
                    .iter()
                    .map(Value::to_attr)
                    .collect::<Result<_>>()?,
                other => {
                    return Err(ScriptError::TypeError(format!(
                        "{method}() expects a list of values, got {}",
                        other.type_name()
                    )))
                }
            };
            let column: Column = values.into_iter().collect();
            let mut frame = df.borrow_mut();
            let result = if method == "add_column" {
                frame.add_column(&name, column)
            } else {
                frame.set_column(&name, column)
            };
            result.map_err(frame_err)?;
            Ok(Value::Null)
        }
        "drop_column" => {
            expect_arity(method, args, &[1])?;
            let name = args[0].expect_str(method)?;
            df.borrow_mut().drop_column(&name).map_err(frame_err)?;
            Ok(Value::Null)
        }
        "rename_column" => {
            expect_arity(method, args, &[2])?;
            let from = args[0].expect_str(method)?;
            let to = args[1].expect_str(method)?;
            df.borrow_mut()
                .rename_column(&from, &to)
                .map_err(frame_err)?;
            Ok(Value::Null)
        }
        "push_row" => {
            expect_arity(method, args, &[1])?;
            let row: Vec<netgraph::AttrValue> = match &args[0] {
                Value::List(items) => items
                    .borrow()
                    .iter()
                    .map(Value::to_attr)
                    .collect::<Result<_>>()?,
                other => {
                    return Err(ScriptError::TypeError(format!(
                        "push_row() expects a list, got {}",
                        other.type_name()
                    )))
                }
            };
            df.borrow_mut().push_row(row).map_err(frame_err)?;
            Ok(Value::Null)
        }
        "delete_rows" => {
            // delete_rows(column, op, value): drop matching rows.
            expect_arity(method, args, &[3])?;
            let col = args[0].expect_str(method)?;
            let op_text = args[1].expect_str(method)?;
            let op = CmpOp::parse(&op_text).ok_or_else(|| ScriptError::ArgumentError {
                function: "delete_rows".to_string(),
                message: format!("unknown comparison operator '{op_text}'"),
            })?;
            let value = args[2].to_attr()?;
            let mut frame = df.borrow_mut();
            frame.column(&col).map_err(frame_err)?;
            let kept = frame.filter_rows(|d, i| {
                d.value(i, &col)
                    .map(|cell| !op.eval(cell, &value))
                    .unwrap_or(true)
            });
            *frame = kept;
            Ok(Value::Null)
        }
        other => Err(ScriptError::AttributeError {
            type_name: "dataframe".to_string(),
            attr: other.to_string(),
        }),
    }
}

/// Maps frame-substrate errors onto script errors: a missing column is the
/// "imaginary attribute" category, everything else is a runtime failure.
fn frame_err(e: FrameError) -> ScriptError {
    match e {
        FrameError::ColumnNotFound(col) => ScriptError::MissingAttribute {
            owner: "dataframe".to_string(),
            key: col,
        },
        other => ScriptError::Runtime(other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges_frame() -> Value {
        Value::frame(
            DataFrame::from_columns(vec![
                (
                    "source".to_string(),
                    Column::from_values(["a", "a", "b", "c"]),
                ),
                (
                    "target".to_string(),
                    Column::from_values(["b", "c", "c", "a"]),
                ),
                (
                    "bytes".to_string(),
                    Column::from_values([100i64, 200, 300, 50]),
                ),
            ])
            .unwrap(),
        )
    }

    fn call_on(v: &Value, method: &str, args: &[Value]) -> Result<Value> {
        match v {
            Value::Frame(df) => call(df, method, args),
            _ => panic!("expected frame"),
        }
    }

    #[test]
    fn inspection_and_cell_access() {
        let df = edges_frame();
        assert_eq!(call_on(&df, "n_rows", &[]).unwrap().to_string(), "4");
        assert_eq!(
            call_on(&df, "columns", &[]).unwrap().to_string(),
            "[source, target, bytes]"
        );
        assert_eq!(
            call_on(&df, "value", &[Value::Int(2), Value::Str("bytes".into())])
                .unwrap()
                .to_string(),
            "300"
        );
        assert!(call_on(&df, "value", &[Value::Int(99), Value::Str("bytes".into())]).is_err());
    }

    #[test]
    fn filter_sort_groupby() {
        let df = edges_frame();
        let heavy = call_on(
            &df,
            "filter",
            &[
                Value::Str("bytes".into()),
                Value::Str(">=".into()),
                Value::Int(200),
            ],
        )
        .unwrap();
        assert_eq!(call_on(&heavy, "n_rows", &[]).unwrap().to_string(), "2");

        let sorted = call_on(
            &df,
            "sort_values",
            &[Value::Str("bytes".into()), Value::Bool(false)],
        )
        .unwrap();
        assert_eq!(
            call_on(
                &sorted,
                "value",
                &[Value::Int(0), Value::Str("source".into())]
            )
            .unwrap()
            .to_string(),
            "b"
        );

        let grouped = call_on(
            &df,
            "groupby_agg",
            &[
                Value::Str("source".into()),
                Value::Str("bytes".into()),
                Value::Str("sum".into()),
                Value::Str("total".into()),
            ],
        )
        .unwrap();
        assert_eq!(call_on(&grouped, "n_rows", &[]).unwrap().to_string(), "3");
        assert_eq!(
            call_on(
                &grouped,
                "value",
                &[Value::Int(0), Value::Str("total".into())]
            )
            .unwrap()
            .to_string(),
            "300.0"
        );
    }

    #[test]
    fn aggregation_shortcuts() {
        let df = edges_frame();
        assert_eq!(
            call_on(&df, "sum", &[Value::Str("bytes".into())])
                .unwrap()
                .to_string(),
            "650.0"
        );
        assert_eq!(
            call_on(&df, "max", &[Value::Str("bytes".into())])
                .unwrap()
                .to_string(),
            "300.0"
        );
        assert_eq!(call_on(&df, "count", &[]).unwrap().to_string(), "4");
        assert_eq!(
            call_on(&df, "nunique", &[Value::Str("source".into())])
                .unwrap()
                .to_string(),
            "3"
        );
    }

    #[test]
    fn mutation_methods() {
        let df = edges_frame();
        call_on(
            &df,
            "set_column",
            &[
                Value::Str("label".into()),
                Value::list(vec![
                    Value::Str("x".into()),
                    Value::Str("x".into()),
                    Value::Str("y".into()),
                    Value::Str("y".into()),
                ]),
            ],
        )
        .unwrap();
        assert_eq!(call_on(&df, "n_cols", &[]).unwrap().to_string(), "4");
        call_on(
            &df,
            "set_value",
            &[Value::Int(0), Value::Str("bytes".into()), Value::Int(999)],
        )
        .unwrap();
        assert_eq!(
            call_on(&df, "value", &[Value::Int(0), Value::Str("bytes".into())])
                .unwrap()
                .to_string(),
            "999"
        );
        call_on(
            &df,
            "delete_rows",
            &[
                Value::Str("bytes".into()),
                Value::Str("<".into()),
                Value::Int(100),
            ],
        )
        .unwrap();
        assert_eq!(call_on(&df, "n_rows", &[]).unwrap().to_string(), "3");
        call_on(
            &df,
            "push_row",
            &[Value::list(vec![
                Value::Str("d".into()),
                Value::Str("a".into()),
                Value::Int(10),
                Value::Str("z".into()),
            ])],
        )
        .unwrap();
        assert_eq!(call_on(&df, "n_rows", &[]).unwrap().to_string(), "4");
    }

    #[test]
    fn join_frames() {
        let edges = edges_frame();
        let nodes = Value::frame(
            DataFrame::from_columns(vec![
                ("id".to_string(), Column::from_values(["a", "b", "c"])),
                ("role".to_string(), Column::from_values(["s", "c", "c"])),
            ])
            .unwrap(),
        );
        let joined = call_on(
            &edges,
            "join",
            &[nodes, Value::Str("source".into()), Value::Str("id".into())],
        )
        .unwrap();
        assert_eq!(call_on(&joined, "n_rows", &[]).unwrap().to_string(), "4");
        assert!(call_on(&joined, "has_column", &[Value::Str("role".into())])
            .unwrap()
            .is_truthy());
    }

    #[test]
    fn errors_map_to_paper_categories() {
        let df = edges_frame();
        // Imaginary column.
        let err = call_on(&df, "sum", &[Value::Str("latency".into())]).unwrap_err();
        assert!(err.is_missing_attribute());
        // Imaginary method.
        let err = call_on(&df, "pivot_table", &[]).unwrap_err();
        assert!(err.is_unknown_callable());
        // Argument error.
        let err = call_on(&df, "filter", &[Value::Str("bytes".into())]).unwrap_err();
        assert!(err.is_argument_error());
        // Bad operator.
        let err = call_on(
            &df,
            "filter",
            &[
                Value::Str("bytes".into()),
                Value::Str("~~".into()),
                Value::Int(1),
            ],
        )
        .unwrap_err();
        assert!(err.is_argument_error());
    }
}
