//! Method dispatch for the built-in object types.
//!
//! A GraphScript method call `receiver.name(args)` is routed here based on
//! the receiver's type. Unknown method names raise
//! [`ScriptError::AttributeError`], which is exactly the "imaginary
//! function" failure the paper's Table 5 catalogues (an LLM inventing a
//! NetworkX/pandas API that does not exist).

mod collections;
mod frame;
mod graph;

use crate::error::{Result, ScriptError};
use crate::value::Value;

/// Calls `receiver.method(args)`.
pub fn call_method(receiver: &Value, method: &str, args: &[Value]) -> Result<Value> {
    match receiver {
        Value::Graph(g) => graph::call(g, method, args),
        Value::Frame(df) => frame::call(df, method, args),
        Value::List(items) => collections::call_list(items, method, args),
        Value::Dict(map) => collections::call_dict(map, method, args),
        Value::Str(s) => collections::call_str(s, method, args),
        other => Err(ScriptError::AttributeError {
            type_name: other.type_name().to_string(),
            attr: method.to_string(),
        }),
    }
}

/// Checks an exact argument count, producing the argument-error category the
/// error classifier recognizes.
pub(crate) fn expect_arity(method: &str, args: &[Value], valid: &[usize]) -> Result<()> {
    if valid.contains(&args.len()) {
        Ok(())
    } else {
        let expected = valid
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(" or ");
        Err(ScriptError::ArgumentError {
            function: method.to_string(),
            message: format!("expected {expected} argument(s), got {}", args.len()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_on_unsupported_receiver_is_attribute_error() {
        let err = call_method(&Value::Int(5), "split", &[]).unwrap_err();
        assert!(matches!(err, ScriptError::AttributeError { .. }));
    }

    #[test]
    fn arity_helper() {
        assert!(expect_arity("m", &[Value::Null], &[1]).is_ok());
        let err = expect_arity("m", &[], &[1, 2]).unwrap_err();
        assert!(err.is_argument_error());
        assert!(err.to_string().contains("1 or 2"));
    }
}
