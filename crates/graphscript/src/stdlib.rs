//! Global built-in functions available to every GraphScript program.
//!
//! Two groups are provided: general-purpose helpers the generated code
//! expects from a Python-like language (`len`, `sum`, `sorted`, `range`,
//! `print`, ...) and network-analysis helpers mirroring the NetworkX
//! module-level functions the paper's golden programs rely on
//! (`shortest_path`, `connected_components`, `node_weight_totals`,
//! `kmeans_groups`, ...).

use crate::error::{Result, ScriptError};
use crate::value::Value;
use netgraph::algo::{coloring, components, degree, grouping, shortest_path as sp, traversal};
use std::collections::BTreeMap;

/// Calls a built-in function by name. Returns `Ok(None)` when the name is
/// not a built-in (the interpreter then tries user-defined functions).
/// `output` collects `print` lines.
pub fn call_builtin(name: &str, args: &[Value], output: &mut Vec<String>) -> Result<Option<Value>> {
    let arity = |expected: &str, ok: bool| -> Result<()> {
        if ok {
            Ok(())
        } else {
            Err(ScriptError::ArgumentError {
                function: name.to_string(),
                message: format!("expected {expected} argument(s), got {}", args.len()),
            })
        }
    };

    let value = match name {
        // ------------------------------------------------- general helpers
        "print" => {
            let line = args
                .iter()
                .map(Value::to_string)
                .collect::<Vec<_>>()
                .join(" ");
            output.push(line);
            Value::Null
        }
        "len" => {
            arity("1", args.len() == 1)?;
            match &args[0] {
                Value::Str(s) => Value::Int(s.chars().count() as i64),
                Value::List(items) => Value::Int(items.borrow().len() as i64),
                Value::Dict(map) => Value::Int(map.borrow().len() as i64),
                Value::Graph(g) => Value::Int(g.borrow().number_of_nodes() as i64),
                Value::Frame(df) => Value::Int(df.borrow().n_rows() as i64),
                other => {
                    return Err(ScriptError::TypeError(format!(
                        "len() does not support {}",
                        other.type_name()
                    )))
                }
            }
        }
        "range" => {
            arity("1 or 2", args.len() == 1 || args.len() == 2)?;
            let (start, end) = if args.len() == 1 {
                (0, args[0].expect_i64("range")?)
            } else {
                (args[0].expect_i64("range")?, args[1].expect_i64("range")?)
            };
            Value::list((start..end).map(Value::Int).collect())
        }
        "sum" => {
            arity("1", args.len() == 1)?;
            let items = expect_list(name, &args[0])?;
            let mut total = 0.0;
            let mut all_int = true;
            for v in &items {
                match v {
                    Value::Int(i) => total += *i as f64,
                    Value::Float(f) => {
                        all_int = false;
                        total += *f;
                    }
                    Value::Null => {}
                    other => {
                        return Err(ScriptError::TypeError(format!(
                            "sum() over non-numeric value of type {}",
                            other.type_name()
                        )))
                    }
                }
            }
            if all_int && total.fract() == 0.0 {
                Value::Int(total as i64)
            } else {
                Value::Float(total)
            }
        }
        "min" | "max" => {
            arity("at least 1", !args.is_empty())?;
            let items = if args.len() == 1 {
                expect_list(name, &args[0])?
            } else {
                args.to_vec()
            };
            if items.is_empty() {
                return Err(ScriptError::Runtime(format!(
                    "{name}() of an empty sequence"
                )));
            }
            let mut best = items[0].clone();
            for v in &items[1..] {
                let ord = v.partial_cmp_value(&best).ok_or_else(|| {
                    ScriptError::TypeError(format!(
                        "{name}() cannot compare {} and {}",
                        v.type_name(),
                        best.type_name()
                    ))
                })?;
                let replace = if name == "min" {
                    ord == std::cmp::Ordering::Less
                } else {
                    ord == std::cmp::Ordering::Greater
                };
                if replace {
                    best = v.clone();
                }
            }
            best
        }
        "sorted" => {
            arity("1 or 2", args.len() == 1 || args.len() == 2)?;
            let mut items = expect_list(name, &args[0])?;
            let descending = args.get(1).map(|v| v.is_truthy()).unwrap_or(false);
            sort_values(&mut items, name)?;
            if descending {
                items.reverse();
            }
            Value::list(items)
        }
        "reversed" => {
            arity("1", args.len() == 1)?;
            let mut items = expect_list(name, &args[0])?;
            items.reverse();
            Value::list(items)
        }
        "abs" => {
            arity("1", args.len() == 1)?;
            match &args[0] {
                Value::Int(i) => Value::Int(i.abs()),
                Value::Float(f) => Value::Float(f.abs()),
                other => {
                    return Err(ScriptError::TypeError(format!(
                        "abs() expects a number, got {}",
                        other.type_name()
                    )))
                }
            }
        }
        "round" => {
            arity("1 or 2", args.len() == 1 || args.len() == 2)?;
            let v = args[0].expect_f64("round")?;
            let digits = args
                .get(1)
                .map(|d| d.expect_i64("round"))
                .transpose()?
                .unwrap_or(0);
            let factor = 10f64.powi(digits as i32);
            Value::Float((v * factor).round() / factor)
        }
        "str" => {
            arity("1", args.len() == 1)?;
            Value::Str(args[0].to_string())
        }
        "int" => {
            arity("1", args.len() == 1)?;
            match &args[0] {
                Value::Int(i) => Value::Int(*i),
                Value::Float(f) => Value::Int(*f as i64),
                Value::Bool(b) => Value::Int(if *b { 1 } else { 0 }),
                Value::Str(s) => Value::Int(s.trim().parse::<i64>().map_err(|_| {
                    ScriptError::TypeError(format!("cannot convert '{s}' to an integer"))
                })?),
                other => {
                    return Err(ScriptError::TypeError(format!(
                        "int() does not support {}",
                        other.type_name()
                    )))
                }
            }
        }
        "float" => {
            arity("1", args.len() == 1)?;
            match &args[0] {
                Value::Int(i) => Value::Float(*i as f64),
                Value::Float(f) => Value::Float(*f),
                Value::Str(s) => Value::Float(s.trim().parse::<f64>().map_err(|_| {
                    ScriptError::TypeError(format!("cannot convert '{s}' to a float"))
                })?),
                other => {
                    return Err(ScriptError::TypeError(format!(
                        "float() does not support {}",
                        other.type_name()
                    )))
                }
            }
        }
        "type" => {
            arity("1", args.len() == 1)?;
            Value::Str(args[0].type_name().to_string())
        }
        "keys" => {
            arity("1", args.len() == 1)?;
            let map = expect_dict(name, &args[0])?;
            Value::list(map.keys().map(|k| Value::Str(k.clone())).collect())
        }
        "values" => {
            arity("1", args.len() == 1)?;
            let map = expect_dict(name, &args[0])?;
            Value::list(map.values().cloned().collect())
        }
        "items" => {
            arity("1", args.len() == 1)?;
            let map = expect_dict(name, &args[0])?;
            Value::list(
                map.iter()
                    .map(|(k, v)| Value::list(vec![Value::Str(k.clone()), v.clone()]))
                    .collect(),
            )
        }
        "enumerate" => {
            arity("1", args.len() == 1)?;
            let items = expect_list(name, &args[0])?;
            Value::list(
                items
                    .into_iter()
                    .enumerate()
                    .map(|(i, v)| Value::list(vec![Value::Int(i as i64), v]))
                    .collect(),
            )
        }
        "zip" => {
            arity("2", args.len() == 2)?;
            let a = expect_list(name, &args[0])?;
            let b = expect_list(name, &args[1])?;
            Value::list(
                a.into_iter()
                    .zip(b)
                    .map(|(x, y)| Value::list(vec![x, y]))
                    .collect(),
            )
        }
        "join" => {
            arity("2", args.len() == 2)?;
            let sep = args[0].expect_str("join")?;
            let items = expect_list(name, &args[1])?;
            Value::Str(
                items
                    .iter()
                    .map(Value::to_string)
                    .collect::<Vec<_>>()
                    .join(&sep),
            )
        }

        // ------------------------------------------ network-analysis helpers
        "ip_prefix" => {
            arity("2", args.len() == 2)?;
            let addr = args[0].expect_str("ip_prefix")?;
            let octets = args[1].expect_i64("ip_prefix")?.clamp(1, 4) as usize;
            let parts: Vec<&str> = addr.split('.').take(octets).collect();
            Value::Str(parts.join("."))
        }
        "palette_color" => {
            arity("1", args.len() == 1)?;
            let i = args[0].expect_i64("palette_color")?.max(0) as usize;
            Value::Str(coloring::palette_color(i))
        }
        "shortest_path" => {
            arity("3", args.len() == 3)?;
            let g = expect_graph(name, &args[0])?;
            let source = args[1].expect_str("shortest_path")?;
            let target = args[2].expect_str("shortest_path")?;
            let path = sp::shortest_path(&g.borrow(), &source, &target).map_err(graph_err)?;
            Value::list(path.into_iter().map(Value::Str).collect())
        }
        "shortest_path_length" => {
            arity("3", args.len() == 3)?;
            let g = expect_graph(name, &args[0])?;
            let source = args[1].expect_str(name)?;
            let target = args[2].expect_str(name)?;
            let hops =
                sp::shortest_path_length(&g.borrow(), &source, &target).map_err(graph_err)?;
            Value::Int(hops as i64)
        }
        "has_path" => {
            arity("3", args.len() == 3)?;
            let g = expect_graph(name, &args[0])?;
            let source = args[1].expect_str(name)?;
            let target = args[2].expect_str(name)?;
            Value::Bool(traversal::has_path(&g.borrow(), &source, &target).map_err(graph_err)?)
        }
        "connected_components" => {
            arity("1", args.len() == 1)?;
            let g = expect_graph(name, &args[0])?;
            let comps = components::connected_components(&g.borrow());
            Value::list(
                comps
                    .into_iter()
                    .map(|set| Value::list(set.into_iter().map(Value::Str).collect()))
                    .collect(),
            )
        }
        "number_connected_components" => {
            arity("1", args.len() == 1)?;
            let g = expect_graph(name, &args[0])?;
            Value::Int(components::number_connected_components(&g.borrow()) as i64)
        }
        "degree_map" => {
            arity("1", args.len() == 1)?;
            let g = expect_graph(name, &args[0])?;
            let map = degree::degree_map(&g.borrow());
            Value::dict(
                map.into_iter()
                    .map(|(k, v)| (k, Value::Int(v as i64)))
                    .collect(),
            )
        }
        "degree_centrality" => {
            arity("1", args.len() == 1)?;
            let g = expect_graph(name, &args[0])?;
            let map = degree::degree_centrality(&g.borrow());
            Value::dict(map.into_iter().map(|(k, v)| (k, Value::Float(v))).collect())
        }
        "node_weight_totals" => {
            arity("2", args.len() == 2)?;
            let g = expect_graph(name, &args[0])?;
            let attr = args[1].expect_str(name)?;
            let totals = degree::node_weight_totals(&g.borrow(), &attr).map_err(graph_err)?;
            Value::dict(
                totals
                    .into_iter()
                    .map(|(k, v)| (k, Value::Float(v)))
                    .collect(),
            )
        }
        "top_k" => {
            arity("2", args.len() == 2)?;
            let map = expect_dict(name, &args[0])?;
            let k = args[1].expect_i64(name)?.max(0) as usize;
            let scores: BTreeMap<String, f64> = map
                .iter()
                .map(|(key, v)| (key.clone(), v.as_f64().unwrap_or(0.0)))
                .collect();
            let top = degree::top_k_by_score(&scores, k);
            Value::list(
                top.into_iter()
                    .map(|(key, score)| Value::list(vec![Value::Str(key), Value::Float(score)]))
                    .collect(),
            )
        }
        "kmeans_groups" | "quantile_groups" => {
            arity("2", args.len() == 2)?;
            let map = expect_dict(name, &args[0])?;
            let k = args[1].expect_i64(name)?;
            if k <= 0 {
                return Err(ScriptError::ArgumentError {
                    function: name.to_string(),
                    message: "group count must be positive".to_string(),
                });
            }
            let scores: BTreeMap<String, f64> = map
                .iter()
                .map(|(key, v)| (key.clone(), v.as_f64().unwrap_or(0.0)))
                .collect();
            let groups = if name == "kmeans_groups" {
                grouping::kmeans_1d_groups(&scores, k as usize, 100).map_err(graph_err)?
            } else {
                grouping::quantile_groups(&scores, k as usize).map_err(graph_err)?
            };
            Value::dict(
                groups
                    .into_iter()
                    .map(|(key, g)| (key, Value::Int(g as i64)))
                    .collect(),
            )
        }
        _ => return Ok(None),
    };
    Ok(Some(value))
}

fn sort_values(items: &mut [Value], context: &str) -> Result<()> {
    let mut error = None;
    items.sort_by(|a, b| match a.partial_cmp_value(b) {
        Some(ord) => ord,
        None => {
            error = Some(ScriptError::TypeError(format!(
                "{context}() cannot compare {} and {}",
                a.type_name(),
                b.type_name()
            )));
            std::cmp::Ordering::Equal
        }
    });
    match error {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

fn expect_list(context: &str, v: &Value) -> Result<Vec<Value>> {
    match v {
        Value::List(items) => Ok(items.borrow().clone()),
        other => Err(ScriptError::TypeError(format!(
            "{context}() expects a list, got {}",
            other.type_name()
        ))),
    }
}

fn expect_dict(context: &str, v: &Value) -> Result<BTreeMap<String, Value>> {
    match v {
        Value::Dict(map) => Ok(map.borrow().clone()),
        other => Err(ScriptError::TypeError(format!(
            "{context}() expects a dict, got {}",
            other.type_name()
        ))),
    }
}

fn expect_graph<'a>(
    context: &str,
    v: &'a Value,
) -> Result<&'a std::rc::Rc<std::cell::RefCell<netgraph::Graph>>> {
    match v {
        Value::Graph(g) => Ok(g),
        other => Err(ScriptError::TypeError(format!(
            "{context}() expects a graph, got {}",
            other.type_name()
        ))),
    }
}

/// Maps graph-substrate errors onto script errors so the error classifier
/// sees the right category (missing attribute vs. generic runtime failure).
pub(crate) fn graph_err(e: netgraph::GraphError) -> ScriptError {
    match e {
        netgraph::GraphError::AttrNotFound { kind, entity, attr } => {
            ScriptError::MissingAttribute {
                owner: format!("{kind} {entity}"),
                key: attr,
            }
        }
        other => ScriptError::Runtime(other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{attrs, Graph};

    fn call(name: &str, args: &[Value]) -> Result<Value> {
        let mut out = Vec::new();
        call_builtin(name, args, &mut out)?.ok_or(ScriptError::UnknownFunction(name.to_string()))
    }

    #[test]
    fn len_sum_sorted() {
        let list = Value::list(vec![Value::Int(3), Value::Int(1), Value::Int(2)]);
        assert!(matches!(
            call("len", std::slice::from_ref(&list)).unwrap(),
            Value::Int(3)
        ));
        assert!(matches!(
            call("sum", std::slice::from_ref(&list)).unwrap(),
            Value::Int(6)
        ));
        let sorted = call("sorted", &[list]).unwrap();
        assert_eq!(sorted.to_string(), "[1, 2, 3]");
    }

    #[test]
    fn min_max_range() {
        let list = Value::list(vec![Value::Int(3), Value::Float(1.5), Value::Int(2)]);
        assert_eq!(
            call("min", std::slice::from_ref(&list))
                .unwrap()
                .to_string(),
            "1.5"
        );
        assert_eq!(call("max", &[list]).unwrap().to_string(), "3");
        assert_eq!(
            call("range", &[Value::Int(3)]).unwrap().to_string(),
            "[0, 1, 2]"
        );
        assert_eq!(
            call("range", &[Value::Int(2), Value::Int(5)])
                .unwrap()
                .to_string(),
            "[2, 3, 4]"
        );
        assert!(call("min", &[Value::list(vec![])]).is_err());
    }

    #[test]
    fn conversions_and_type() {
        assert!(matches!(
            call("int", &[Value::Str("42".into())]).unwrap(),
            Value::Int(42)
        ));
        assert!(call("int", &[Value::Str("4x".into())]).is_err());
        assert!(matches!(
            call("float", &[Value::Int(2)]).unwrap(),
            Value::Float(_)
        ));
        assert_eq!(call("str", &[Value::Int(5)]).unwrap().to_string(), "5");
        assert_eq!(call("type", &[Value::Null]).unwrap().to_string(), "null");
    }

    #[test]
    fn dict_helpers() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), Value::Int(1));
        m.insert("b".to_string(), Value::Int(2));
        let d = Value::dict(m);
        assert_eq!(
            call("keys", std::slice::from_ref(&d)).unwrap().to_string(),
            "[a, b]"
        );
        assert_eq!(
            call("values", std::slice::from_ref(&d))
                .unwrap()
                .to_string(),
            "[1, 2]"
        );
        assert_eq!(call("items", &[d]).unwrap().to_string(), "[[a, 1], [b, 2]]");
    }

    #[test]
    fn print_captures_output() {
        let mut out = Vec::new();
        call_builtin(
            "print",
            &[Value::Str("hello".into()), Value::Int(3)],
            &mut out,
        )
        .unwrap();
        assert_eq!(out, vec!["hello 3".to_string()]);
    }

    #[test]
    fn unknown_builtin_returns_none() {
        let mut out = Vec::new();
        assert!(call_builtin("frobnicate", &[], &mut out).unwrap().is_none());
    }

    #[test]
    fn network_helpers() {
        assert_eq!(
            call(
                "ip_prefix",
                &[Value::Str("10.76.3.9".into()), Value::Int(2)]
            )
            .unwrap()
            .to_string(),
            "10.76"
        );
        let mut g = Graph::directed();
        g.add_edge("a", "b", attrs([("bytes", 10i64)]));
        g.add_edge("b", "c", attrs([("bytes", 5i64)]));
        let gv = Value::graph(g);
        let path = call(
            "shortest_path",
            &[gv.clone(), Value::Str("a".into()), Value::Str("c".into())],
        )
        .unwrap();
        assert_eq!(path.to_string(), "[a, b, c]");
        let hops = call(
            "shortest_path_length",
            &[gv.clone(), Value::Str("a".into()), Value::Str("c".into())],
        )
        .unwrap();
        assert!(matches!(hops, Value::Int(2)));
        let totals = call(
            "node_weight_totals",
            &[gv.clone(), Value::Str("bytes".into())],
        )
        .unwrap();
        if let Value::Dict(map) = &totals {
            assert_eq!(map.borrow()["b"].as_f64(), Some(15.0));
        } else {
            panic!("expected dict");
        }
        let comps = call("connected_components", std::slice::from_ref(&gv)).unwrap();
        assert_eq!(call("len", &[comps]).unwrap().to_string(), "1");
        let groups = call("kmeans_groups", &[totals, Value::Int(2)]).unwrap();
        assert!(matches!(groups, Value::Dict(_)));
    }

    #[test]
    fn argument_errors_are_classified() {
        let err = call("len", &[]).unwrap_err();
        assert!(err.is_argument_error());
        let err = call(
            "shortest_path",
            &[Value::Int(1), Value::Int(2), Value::Int(3)],
        )
        .unwrap_err();
        assert!(matches!(err, ScriptError::TypeError(_)));
    }

    #[test]
    fn missing_node_in_path_query_is_a_runtime_error() {
        let mut g = Graph::directed();
        g.add_edge("a", "b", attrs([("bytes", 10i64)]));
        let gv = Value::graph(g);
        let err = call(
            "shortest_path",
            &[gv, Value::Str("a".into()), Value::Str("zzz".into())],
        )
        .unwrap_err();
        assert!(
            matches!(err, ScriptError::Runtime(_)),
            "unexpected error {err:?}"
        );
    }
}
