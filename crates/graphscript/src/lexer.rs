//! Converts GraphScript source text into a token stream.
//!
//! Statements are newline-terminated (a `;` also works); newlines inside
//! parentheses, brackets and braces are ignored so expressions can span
//! lines, and a comment runs from `#` to the end of the line.

use crate::error::{Result, ScriptError};
use crate::token::{Keyword, Token, TokenKind};

/// Tokenizes a program. The stream always ends with [`TokenKind::Eof`].
pub fn tokenize(source: &str) -> Result<Vec<Token>> {
    let chars: Vec<char> = source.chars().collect();
    let mut tokens: Vec<Token> = Vec::new();
    let mut i = 0;
    let mut line = 1;
    // Nesting depth of (), [] and {} used to suppress newline terminators
    // inside multi-line expressions. Braces open statement blocks too, so
    // they do not suppress terminators.
    let mut paren_depth: i32 = 0;

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                if paren_depth == 0 {
                    push_terminator(&mut tokens, line);
                }
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '#' => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '"' | '\'' => {
                let (s, next, newlines) = lex_string(&chars, i, c, line)?;
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    line,
                });
                line += newlines;
                i = next;
            }
            c if c.is_ascii_digit() => {
                let (kind, next) = lex_number(&chars, i, line)?;
                tokens.push(Token { kind, line });
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                let kind = match Keyword::parse(&word) {
                    Some(k) => TokenKind::Keyword(k),
                    None => TokenKind::Ident(word),
                };
                tokens.push(Token { kind, line });
            }
            _ => {
                let (kind, width) = lex_symbol(&chars, i, line)?;
                match &kind {
                    TokenKind::LParen | TokenKind::LBracket => paren_depth += 1,
                    TokenKind::RParen | TokenKind::RBracket => paren_depth -= 1,
                    _ => {}
                }
                tokens.push(Token { kind, line });
                i += width;
            }
        }
    }
    push_terminator(&mut tokens, line);
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(tokens)
}

/// Avoids emitting consecutive terminators (blank lines) and a terminator as
/// the very first token.
fn push_terminator(tokens: &mut Vec<Token>, line: usize) {
    match tokens.last().map(|t| &t.kind) {
        None | Some(TokenKind::Terminator) | Some(TokenKind::LBrace) => {}
        _ => tokens.push(Token {
            kind: TokenKind::Terminator,
            line,
        }),
    }
}

fn lex_string(
    chars: &[char],
    start: usize,
    quote: char,
    line: usize,
) -> Result<(String, usize, usize)> {
    let mut out = String::new();
    let mut i = start + 1;
    let mut newlines = 0;
    while i < chars.len() {
        match chars[i] {
            c if c == quote => return Ok((out, i + 1, newlines)),
            '\\' => {
                let escaped = chars.get(i + 1).copied().unwrap_or('\\');
                out.push(match escaped {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                });
                i += 2;
            }
            '\n' => {
                newlines += 1;
                out.push('\n');
                i += 1;
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    Err(ScriptError::Syntax {
        line,
        message: "unterminated string literal".to_string(),
    })
}

fn lex_number(chars: &[char], start: usize, line: usize) -> Result<(TokenKind, usize)> {
    let mut i = start;
    let mut saw_dot = false;
    while i < chars.len() {
        match chars[i] {
            '0'..='9' => i += 1,
            // A dot is part of the number only if a digit follows; this
            // keeps `5.method()` lexing as Int(5) Dot Ident(method).
            '.' if !saw_dot
                && chars
                    .get(i + 1)
                    .map(|c| c.is_ascii_digit())
                    .unwrap_or(false) =>
            {
                saw_dot = true;
                i += 1;
            }
            _ => break,
        }
    }
    let text: String = chars[start..i].iter().collect();
    let kind = if saw_dot {
        TokenKind::Float(text.parse::<f64>().map_err(|_| ScriptError::Syntax {
            line,
            message: format!("invalid float literal '{text}'"),
        })?)
    } else {
        TokenKind::Int(text.parse::<i64>().map_err(|_| ScriptError::Syntax {
            line,
            message: format!("invalid integer literal '{text}'"),
        })?)
    };
    Ok((kind, i))
}

fn lex_symbol(chars: &[char], i: usize, line: usize) -> Result<(TokenKind, usize)> {
    let two = |a: char, b: char| chars[i] == a && chars.get(i + 1) == Some(&b);
    if two('=', '=') {
        return Ok((TokenKind::EqEq, 2));
    }
    if two('!', '=') {
        return Ok((TokenKind::NotEq, 2));
    }
    if two('<', '=') {
        return Ok((TokenKind::LtEq, 2));
    }
    if two('>', '=') {
        return Ok((TokenKind::GtEq, 2));
    }
    if two('+', '=') {
        return Ok((TokenKind::PlusAssign, 2));
    }
    if two('-', '=') {
        return Ok((TokenKind::MinusAssign, 2));
    }
    if two('*', '=') {
        return Ok((TokenKind::StarAssign, 2));
    }
    if two('/', '=') {
        return Ok((TokenKind::SlashAssign, 2));
    }
    if two('*', '*') {
        return Ok((TokenKind::StarStar, 2));
    }
    if two('&', '&') {
        return Ok((TokenKind::Keyword(Keyword::And), 2));
    }
    if two('|', '|') {
        return Ok((TokenKind::Keyword(Keyword::Or), 2));
    }
    let kind = match chars[i] {
        '(' => TokenKind::LParen,
        ')' => TokenKind::RParen,
        '[' => TokenKind::LBracket,
        ']' => TokenKind::RBracket,
        '{' => TokenKind::LBrace,
        '}' => TokenKind::RBrace,
        ',' => TokenKind::Comma,
        ':' => TokenKind::Colon,
        '.' => TokenKind::Dot,
        ';' => TokenKind::Terminator,
        '=' => TokenKind::Assign,
        '+' => TokenKind::Plus,
        '-' => TokenKind::Minus,
        '*' => TokenKind::Star,
        '/' => TokenKind::Slash,
        '%' => TokenKind::Percent,
        '<' => TokenKind::Lt,
        '>' => TokenKind::Gt,
        '!' => TokenKind::Bang,
        other => {
            return Err(ScriptError::Syntax {
                line,
                message: format!("unexpected character '{other}'"),
            })
        }
    };
    Ok((kind, 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_assignment_and_call() {
        let k = kinds("total = G.number_of_nodes()");
        assert_eq!(k[0], TokenKind::Ident("total".into()));
        assert_eq!(k[1], TokenKind::Assign);
        assert_eq!(k[2], TokenKind::Ident("G".into()));
        assert_eq!(k[3], TokenKind::Dot);
        assert_eq!(k[4], TokenKind::Ident("number_of_nodes".into()));
        assert_eq!(k[5], TokenKind::LParen);
        assert_eq!(k[6], TokenKind::RParen);
        assert_eq!(k[7], TokenKind::Terminator);
    }

    #[test]
    fn newlines_terminate_statements_but_not_inside_parens() {
        let k = kinds("x = foo(1,\n 2)\ny = 3");
        let terminators = k.iter().filter(|t| **t == TokenKind::Terminator).count();
        assert_eq!(terminators, 2);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let k = kinds("# setup\n\nx = 1  # trailing\n");
        assert_eq!(k[0], TokenKind::Ident("x".into()));
        let terminators = k.iter().filter(|t| **t == TokenKind::Terminator).count();
        assert_eq!(terminators, 1);
    }

    #[test]
    fn numbers_ints_floats_and_method_on_int() {
        let k = kinds("a = 42\nb = 3.25\nc = 10 / 4");
        assert!(k.contains(&TokenKind::Int(42)));
        assert!(k.contains(&TokenKind::Float(3.25)));
        assert!(k.contains(&TokenKind::Slash));
    }

    #[test]
    fn string_escapes_and_both_quote_styles() {
        let k = kinds(r#"a = "line\n" + 'single'"#);
        assert!(k.contains(&TokenKind::Str("line\n".into())));
        assert!(k.contains(&TokenKind::Str("single".into())));
    }

    #[test]
    fn python_keywords_map_to_graphscript() {
        let k = kinds("def f(x) { return None }");
        assert_eq!(k[0], TokenKind::Keyword(Keyword::Fn));
        assert!(k.contains(&TokenKind::Keyword(Keyword::Null)));
    }

    #[test]
    fn compound_operators() {
        let k = kinds("x += 1; y **= 0");
        assert!(k.contains(&TokenKind::PlusAssign));
        // `**=` is not an operator; it lexes as `**` then `=`.
        assert!(k.contains(&TokenKind::StarStar));
        let k = kinds("a && b || !c");
        assert!(k.contains(&TokenKind::Keyword(Keyword::And)));
        assert!(k.contains(&TokenKind::Keyword(Keyword::Or)));
        assert!(k.contains(&TokenKind::Bang));
    }

    #[test]
    fn unterminated_string_reports_line() {
        let err = tokenize("x = 1\ny = \"oops").unwrap_err();
        match err {
            ScriptError::Syntax { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unexpected_character_is_syntax_error() {
        assert!(tokenize("x = 1 @ 2").unwrap_err().is_syntax());
    }
}
