//! The tree-walking interpreter.

use crate::ast::*;
use crate::bindings;
use crate::env::Env;
use crate::error::{Result, ScriptError};
use crate::parser::parse_program;
use crate::stdlib;
use crate::value::{FunctionDef, Value};
use std::collections::BTreeMap;
use std::rc::Rc;

/// Default execution-step budget; generous for benchmark-sized programs but
/// small enough to stop a runaway `while true` loop quickly.
pub const DEFAULT_STEP_LIMIT: u64 = 5_000_000;

/// The result of running a program.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The program's result value: the global named `result` if the program
    /// defined one, otherwise the value of the last top-level expression
    /// statement, otherwise `null`.
    pub value: Value,
    /// Everything the program printed, one entry per `print()` call.
    pub output: Vec<String>,
}

/// A GraphScript interpreter instance.
///
/// Globals (the graph `G`, the `nodes`/`edges` frames, scenario parameters)
/// are injected before [`Interpreter::run`]; they are shared references, so
/// mutations made by the program are visible to the caller afterwards —
/// exactly what the execution sandbox needs in order to diff the network
/// state against the golden answer.
///
/// ```
/// use graphscript::{Interpreter, Value};
/// use netgraph::{Graph, attrs};
///
/// let mut g = Graph::directed();
/// g.add_edge("a", "b", attrs([("bytes", 10i64)]));
/// let mut interp = Interpreter::new();
/// interp.set_global("G", Value::graph(g));
/// let outcome = interp.run("result = G.number_of_nodes()").unwrap();
/// assert_eq!(outcome.value.to_string(), "2");
/// ```
#[derive(Debug)]
pub struct Interpreter {
    env: Env,
    functions: BTreeMap<String, Rc<FunctionDef>>,
    output: Vec<String>,
    steps: u64,
    step_limit: u64,
}

/// Control flow escaping from a statement.
enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

impl Default for Interpreter {
    fn default() -> Self {
        Interpreter::new()
    }
}

impl Interpreter {
    /// Creates an interpreter with the default step limit and no globals.
    pub fn new() -> Self {
        Interpreter {
            env: Env::new(),
            functions: BTreeMap::new(),
            output: Vec::new(),
            steps: 0,
            step_limit: DEFAULT_STEP_LIMIT,
        }
    }

    /// Overrides the execution-step budget (used by tests and by the
    /// sandbox's runaway-loop guard).
    pub fn with_step_limit(mut self, limit: u64) -> Self {
        self.step_limit = limit;
        self
    }

    /// Injects a global binding before running.
    pub fn set_global(&mut self, name: &str, value: Value) {
        self.env.set_global(name, value);
    }

    /// Reads a global binding after running.
    pub fn global(&self, name: &str) -> Option<Value> {
        self.env.global(name).cloned()
    }

    /// All global bindings, used by the execution sandbox to collect the
    /// final network state after a program has run.
    pub fn globals(&self) -> &BTreeMap<String, Value> {
        self.env.globals()
    }

    /// Parses and runs a program.
    pub fn run(&mut self, source: &str) -> Result<RunOutcome> {
        let program = parse_program(source)?;
        self.run_program(&program)
    }

    /// Runs an already-parsed program.
    pub fn run_program(&mut self, program: &Program) -> Result<RunOutcome> {
        let mut last_value = Value::Null;
        for stmt in &program.statements {
            match self.exec_stmt(stmt, &mut last_value)? {
                Flow::Normal => {}
                Flow::Return(v) => {
                    last_value = v;
                    break;
                }
                Flow::Break | Flow::Continue => {
                    return Err(ScriptError::Runtime(
                        "break/continue outside of a loop".to_string(),
                    ))
                }
            }
        }
        let value = match self.env.global("result") {
            Some(v) => v.clone(),
            None => last_value,
        };
        Ok(RunOutcome {
            value,
            output: std::mem::take(&mut self.output),
        })
    }

    fn tick(&mut self) -> Result<()> {
        self.steps += 1;
        if self.steps > self.step_limit {
            Err(ScriptError::StepLimit(self.step_limit))
        } else {
            Ok(())
        }
    }

    // ---------------------------------------------------------- statements

    fn exec_block(&mut self, body: &[Stmt], last_value: &mut Value) -> Result<Flow> {
        for stmt in body {
            match self.exec_stmt(stmt, last_value)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, stmt: &Stmt, last_value: &mut Value) -> Result<Flow> {
        self.tick()?;
        match stmt {
            Stmt::Expr(expr) => {
                let v = self.eval(expr)?;
                // Only top-level expression statements contribute to the
                // implicit program result; inside functions/loops the value
                // is still recorded, which is harmless.
                *last_value = v;
                Ok(Flow::Normal)
            }
            Stmt::Assign { target, value } => {
                let v = self.eval(value)?;
                match target {
                    AssignTarget::Name(name) => self.env.assign(name, v),
                    AssignTarget::Index { object, index } => {
                        let container = self.eval(object)?;
                        let key = self.eval(index)?;
                        self.assign_index(&container, &key, v)?;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::AugAssign { name, op, value } => {
                let current = self.env.lookup(name)?;
                let rhs = self.eval(value)?;
                let updated = self.binary(&current, *op, &rhs)?;
                self.env.assign(name, updated);
                Ok(Flow::Normal)
            }
            Stmt::If {
                branches,
                otherwise,
            } => {
                for (cond, body) in branches {
                    if self.eval(cond)?.is_truthy() {
                        return self.exec_block(body, last_value);
                    }
                }
                if let Some(body) = otherwise {
                    return self.exec_block(body, last_value);
                }
                Ok(Flow::Normal)
            }
            Stmt::For {
                vars,
                iterable,
                body,
            } => {
                let items = self.iterable_items(iterable)?;
                for item in items {
                    self.tick()?;
                    self.bind_loop_vars(vars, &item)?;
                    match self.exec_block(body, last_value)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::While { cond, body } => {
                while self.eval(cond)?.is_truthy() {
                    self.tick()?;
                    match self.exec_block(body, last_value)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::FnDef { name, params, body } => {
                self.functions.insert(
                    name.clone(),
                    Rc::new(FunctionDef {
                        name: name.clone(),
                        params: params.clone(),
                        body: body.clone(),
                    }),
                );
                Ok(Flow::Normal)
            }
            Stmt::Return(expr) => {
                let v = match expr {
                    Some(e) => self.eval(e)?,
                    None => Value::Null,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
        }
    }

    fn bind_loop_vars(&mut self, vars: &[String], item: &Value) -> Result<()> {
        if vars.len() == 1 {
            self.env.assign(&vars[0], item.clone());
            return Ok(());
        }
        // Destructuring: the item must be a list of at least vars.len() values.
        match item {
            Value::List(items) => {
                let items = items.borrow();
                if items.len() < vars.len() {
                    return Err(ScriptError::Runtime(format!(
                        "cannot unpack {} values into {} loop variables",
                        items.len(),
                        vars.len()
                    )));
                }
                for (var, value) in vars.iter().zip(items.iter()) {
                    self.env.assign(var, value.clone());
                }
                Ok(())
            }
            other => Err(ScriptError::TypeError(format!(
                "cannot unpack a {} into {} loop variables",
                other.type_name(),
                vars.len()
            ))),
        }
    }

    fn iterable_items(&mut self, iterable: &Expr) -> Result<Vec<Value>> {
        let value = self.eval(iterable)?;
        match &value {
            Value::List(items) => Ok(items.borrow().clone()),
            Value::Dict(map) => Ok(map.borrow().keys().map(|k| Value::Str(k.clone())).collect()),
            Value::Str(s) => Ok(s.chars().map(|c| Value::Str(c.to_string())).collect()),
            Value::Graph(g) => Ok(g
                .borrow()
                .node_ids()
                .map(|n| Value::Str(n.to_string()))
                .collect()),
            other => Err(ScriptError::TypeError(format!(
                "cannot iterate over a {}",
                other.type_name()
            ))),
        }
    }

    fn assign_index(&mut self, container: &Value, key: &Value, value: Value) -> Result<()> {
        match container {
            Value::List(items) => {
                let idx = key.expect_i64("list index")?;
                let mut borrowed = items.borrow_mut();
                let len = borrowed.len() as i64;
                let idx = if idx < 0 { len + idx } else { idx };
                if idx < 0 || idx >= len {
                    return Err(ScriptError::Runtime(format!(
                        "list index {idx} out of range for length {len}"
                    )));
                }
                borrowed[idx as usize] = value;
                Ok(())
            }
            Value::Dict(map) => {
                let key = key.as_key()?;
                map.borrow_mut().insert(key, value);
                Ok(())
            }
            other => Err(ScriptError::TypeError(format!(
                "cannot assign into a {}",
                other.type_name()
            ))),
        }
    }

    // --------------------------------------------------------- expressions

    fn eval(&mut self, expr: &Expr) -> Result<Value> {
        self.tick()?;
        match expr {
            Expr::Null => Ok(Value::Null),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Int(i) => Ok(Value::Int(*i)),
            Expr::Float(x) => Ok(Value::Float(*x)),
            Expr::Str(s) => Ok(Value::Str(s.clone())),
            Expr::Name(name) => self.env.lookup(name),
            Expr::List(items) => {
                let values: Vec<Value> =
                    items.iter().map(|e| self.eval(e)).collect::<Result<_>>()?;
                Ok(Value::list(values))
            }
            Expr::Dict(pairs) => {
                let mut map = BTreeMap::new();
                for (k, v) in pairs {
                    let key = self.eval(k)?.as_key()?;
                    let value = self.eval(v)?;
                    map.insert(key, value);
                }
                Ok(Value::dict(map))
            }
            Expr::Neg(inner) => {
                let v = self.eval(inner)?;
                match v {
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    other => Err(ScriptError::TypeError(format!(
                        "cannot negate a {}",
                        other.type_name()
                    ))),
                }
            }
            Expr::Not(inner) => Ok(Value::Bool(!self.eval(inner)?.is_truthy())),
            Expr::Binary { left, op, right } => {
                // Short-circuit logical operators.
                if *op == BinaryOp::And {
                    let l = self.eval(left)?;
                    if !l.is_truthy() {
                        return Ok(Value::Bool(false));
                    }
                    return Ok(Value::Bool(self.eval(right)?.is_truthy()));
                }
                if *op == BinaryOp::Or {
                    let l = self.eval(left)?;
                    if l.is_truthy() {
                        return Ok(Value::Bool(true));
                    }
                    return Ok(Value::Bool(self.eval(right)?.is_truthy()));
                }
                let l = self.eval(left)?;
                let r = self.eval(right)?;
                self.binary(&l, *op, &r)
            }
            Expr::Call { name, args } => {
                let values: Vec<Value> =
                    args.iter().map(|a| self.eval(a)).collect::<Result<_>>()?;
                self.call_function(name, &values)
            }
            Expr::MethodCall { object, name, args } => {
                let receiver = self.eval(object)?;
                let values: Vec<Value> =
                    args.iter().map(|a| self.eval(a)).collect::<Result<_>>()?;
                bindings::call_method(&receiver, name, &values)
            }
            Expr::Index { object, index } => {
                let container = self.eval(object)?;
                let key = self.eval(index)?;
                self.index(&container, &key)
            }
            Expr::Attr { object, name } => {
                let receiver = self.eval(object)?;
                match &receiver {
                    // Dict field access sugar: d.key reads the key.
                    Value::Dict(map) => map.borrow().get(name).cloned().ok_or_else(|| {
                        ScriptError::MissingAttribute {
                            owner: "dict".to_string(),
                            key: name.clone(),
                        }
                    }),
                    other => Err(ScriptError::AttributeError {
                        type_name: other.type_name().to_string(),
                        attr: name.clone(),
                    }),
                }
            }
        }
    }

    fn index(&mut self, container: &Value, key: &Value) -> Result<Value> {
        match container {
            Value::List(items) => {
                let idx = key.expect_i64("list index")?;
                let borrowed = items.borrow();
                let len = borrowed.len() as i64;
                let idx = if idx < 0 { len + idx } else { idx };
                borrowed
                    .get(idx.max(0) as usize)
                    .cloned()
                    .filter(|_| idx >= 0)
                    .ok_or_else(|| {
                        ScriptError::Runtime(format!(
                            "list index {key} out of range for length {len}"
                        ))
                    })
            }
            Value::Dict(map) => {
                let key = key.as_key()?;
                map.borrow()
                    .get(&key)
                    .cloned()
                    .ok_or_else(|| ScriptError::MissingAttribute {
                        owner: "dict".to_string(),
                        key,
                    })
            }
            Value::Str(s) => {
                let idx = key.expect_i64("string index")?;
                let chars: Vec<char> = s.chars().collect();
                let len = chars.len() as i64;
                let idx = if idx < 0 { len + idx } else { idx };
                if idx < 0 || idx >= len {
                    return Err(ScriptError::Runtime(format!(
                        "string index {idx} out of range for length {len}"
                    )));
                }
                Ok(Value::Str(chars[idx as usize].to_string()))
            }
            other => Err(ScriptError::TypeError(format!(
                "a {} cannot be indexed",
                other.type_name()
            ))),
        }
    }

    fn call_function(&mut self, name: &str, args: &[Value]) -> Result<Value> {
        // Built-ins first.
        if let Some(value) = stdlib::call_builtin(name, args, &mut self.output)? {
            return Ok(value);
        }
        // Then user-defined functions.
        let func = match self.functions.get(name) {
            Some(f) => f.clone(),
            None => {
                // A variable holding a function value can also be called.
                match self.env.lookup(name) {
                    Ok(Value::Function(f)) => f,
                    _ => return Err(ScriptError::UnknownFunction(name.to_string())),
                }
            }
        };
        if args.len() != func.params.len() {
            return Err(ScriptError::ArgumentError {
                function: name.to_string(),
                message: format!(
                    "expected {} argument(s), got {}",
                    func.params.len(),
                    args.len()
                ),
            });
        }
        let bindings: BTreeMap<String, Value> = func
            .params
            .iter()
            .cloned()
            .zip(args.iter().cloned())
            .collect();
        self.env.push_frame(bindings);
        let mut last = Value::Null;
        let result = self.exec_block(&func.body, &mut last);
        self.env.pop_frame();
        match result? {
            Flow::Return(v) => Ok(v),
            Flow::Normal => Ok(Value::Null),
            Flow::Break | Flow::Continue => Err(ScriptError::Runtime(
                "break/continue outside of a loop".to_string(),
            )),
        }
    }

    fn binary(&self, l: &Value, op: BinaryOp, r: &Value) -> Result<Value> {
        use BinaryOp::*;
        match op {
            Eq => return Ok(Value::Bool(l.approx_eq(r))),
            NotEq => return Ok(Value::Bool(!l.approx_eq(r))),
            Lt | LtEq | Gt | GtEq => {
                let ord = l.partial_cmp_value(r).ok_or_else(|| {
                    ScriptError::TypeError(format!(
                        "cannot compare {} and {}",
                        l.type_name(),
                        r.type_name()
                    ))
                })?;
                let result = match op {
                    Lt => ord == std::cmp::Ordering::Less,
                    LtEq => ord != std::cmp::Ordering::Greater,
                    Gt => ord == std::cmp::Ordering::Greater,
                    GtEq => ord != std::cmp::Ordering::Less,
                    _ => unreachable!(),
                };
                return Ok(Value::Bool(result));
            }
            In | NotIn => {
                let contained = match r {
                    Value::List(items) => items.borrow().iter().any(|v| v.approx_eq(l)),
                    Value::Dict(map) => {
                        let key = l.as_key()?;
                        map.borrow().contains_key(&key)
                    }
                    Value::Str(s) => {
                        let needle = l.expect_str("in")?;
                        s.contains(&needle)
                    }
                    Value::Graph(g) => {
                        let id = l.expect_str("in")?;
                        g.borrow().has_node(&id)
                    }
                    other => {
                        return Err(ScriptError::TypeError(format!(
                            "'in' is not supported for {}",
                            other.type_name()
                        )))
                    }
                };
                return Ok(Value::Bool(contained == (op == In)));
            }
            And | Or => unreachable!("short-circuited in eval"),
            _ => {}
        }

        // String / list concatenation and repetition.
        if op == Add {
            if let (Value::Str(a), Value::Str(b)) = (l, r) {
                return Ok(Value::Str(format!("{a}{b}")));
            }
            if let (Value::Str(a), b) = (l, r) {
                if b.as_f64().is_some() {
                    return Ok(Value::Str(format!("{a}{b}")));
                }
            }
            if let (Value::List(a), Value::List(b)) = (l, r) {
                let mut out = a.borrow().clone();
                out.extend(b.borrow().clone());
                return Ok(Value::list(out));
            }
        }
        if op == Mul {
            if let (Value::Str(s), Value::Int(n)) = (l, r) {
                return Ok(Value::Str(s.repeat((*n).max(0) as usize)));
            }
        }

        let (a, b) = match (l.as_f64(), r.as_f64()) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(ScriptError::TypeError(format!(
                    "unsupported operand types for arithmetic: {} and {}",
                    l.type_name(),
                    r.type_name()
                )))
            }
        };
        let result = match op {
            Add => a + b,
            Sub => a - b,
            Mul => a * b,
            Div => {
                if b == 0.0 {
                    return Err(ScriptError::Runtime("division by zero".to_string()));
                }
                a / b
            }
            Mod => {
                if b == 0.0 {
                    return Err(ScriptError::Runtime("modulo by zero".to_string()));
                }
                a % b
            }
            Pow => a.powf(b),
            _ => unreachable!(),
        };
        let both_int = matches!((l, r), (Value::Int(_), Value::Int(_)));
        if both_int && result.fract() == 0.0 && matches!(op, Add | Sub | Mul | Mod | Pow) {
            Ok(Value::Int(result as i64))
        } else {
            Ok(Value::Float(result))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{attrs, Graph};

    fn run(src: &str) -> Value {
        Interpreter::new().run(src).unwrap().value
    }

    fn run_err(src: &str) -> ScriptError {
        Interpreter::new().run(src).unwrap_err()
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(run("1 + 2 * 3").to_string(), "7");
        assert_eq!(run("(1 + 2) * 3").to_string(), "9");
        assert_eq!(run("10 / 4").to_string(), "2.5");
        assert_eq!(run("2 ** 10").to_string(), "1024");
        assert_eq!(run("7 % 3").to_string(), "1");
        assert_eq!(run("-3 + 1").to_string(), "-2");
        assert_eq!(run("\"a\" + \"b\"").to_string(), "ab");
        assert_eq!(run("\"ab\" * 3").to_string(), "ababab");
    }

    #[test]
    fn variables_and_augmented_assignment() {
        assert_eq!(run("x = 5\nx += 2\nx * 10").to_string(), "70");
        assert_eq!(run("x = 1\nx -= 3\nx").to_string(), "-2");
    }

    #[test]
    fn result_variable_wins_over_last_expression() {
        assert_eq!(run("result = 42\n1 + 1").to_string(), "42");
        assert_eq!(run("1 + 1").to_string(), "2");
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(run("1 < 2 and 3 >= 3").to_string(), "true");
        assert_eq!(run("1 > 2 or not false").to_string(), "true");
        assert_eq!(run("\"a\" in \"cat\"").to_string(), "true");
        assert_eq!(run("2 in [1, 2, 3]").to_string(), "true");
        assert_eq!(run("5 not in [1, 2, 3]").to_string(), "true");
    }

    #[test]
    fn if_elif_else() {
        let src =
            "x = 7\nif x > 10 { r = \"big\" } elif x > 5 { r = \"mid\" } else { r = \"small\" }\nr";
        assert_eq!(run(src).to_string(), "mid");
    }

    #[test]
    fn for_loops_with_accumulator_and_break_continue() {
        let src = "total = 0\nfor i in range(10) {\n  if i % 2 == 0 { continue }\n  if i > 7 { break }\n  total += i\n}\ntotal";
        // 1 + 3 + 5 + 7 = 16
        assert_eq!(run(src).to_string(), "16");
    }

    #[test]
    fn while_loop_and_step_limit() {
        assert_eq!(run("n = 0\nwhile n < 5 { n += 1 }\nn").to_string(), "5");
        let err = Interpreter::new()
            .with_step_limit(1000)
            .run("while true { x = 1 }")
            .unwrap_err();
        assert!(matches!(err, ScriptError::StepLimit(_)));
    }

    #[test]
    fn functions_recursion_and_scoping() {
        let src =
            "fn fib(n) {\n  if n < 2 { return n }\n  return fib(n - 1) + fib(n - 2)\n}\nfib(10)";
        assert_eq!(run(src).to_string(), "55");
        // Local variables do not leak.
        let err = run_err("fn f() { local = 1 }\nf()\nlocal");
        assert!(matches!(err, ScriptError::NameError(_)));
    }

    #[test]
    fn lists_dicts_indexing_and_mutation() {
        assert_eq!(
            run("xs = [1, 2, 3]\nxs[1] = 9\nxs[1] + xs[-1]").to_string(),
            "12"
        );
        assert_eq!(
            run("d = {\"a\": 1}\nd[\"b\"] = 2\nd[\"a\"] + d[\"b\"]").to_string(),
            "3"
        );
        assert_eq!(run("d = {\"k\": 5}\nd.k").to_string(), "5");
        let err = run_err("d = {}\nd[\"missing\"]");
        assert!(err.is_missing_attribute());
        let err = run_err("xs = [1]\nxs[5]");
        assert!(matches!(err, ScriptError::Runtime(_)));
    }

    #[test]
    fn loop_destructuring_over_dict_items() {
        let src = "d = {\"a\": 1, \"b\": 2}\ntotal = 0\nfor k, v in items(d) { total += v }\ntotal";
        assert_eq!(run(src).to_string(), "3");
    }

    #[test]
    fn print_is_captured() {
        let outcome = Interpreter::new()
            .run("print(\"hello\", 1 + 1)\n3")
            .unwrap();
        assert_eq!(outcome.output, vec!["hello 2".to_string()]);
        assert_eq!(outcome.value.to_string(), "3");
    }

    #[test]
    fn error_taxonomy_from_programs() {
        assert!(run_err("undefined_variable + 1")
            .to_string()
            .contains("not defined"));
        assert!(matches!(
            run_err("frobnicate(1)"),
            ScriptError::UnknownFunction(_)
        ));
        assert!(run_err("fn f(a, b) { return a }\nf(1)").is_argument_error());
        assert!(matches!(run_err("1 / 0"), ScriptError::Runtime(_)));
        assert!(matches!(run_err("\"a\" - 1"), ScriptError::TypeError(_)));
        assert!(run_err("x = (1 + ").is_syntax());
    }

    #[test]
    fn graph_globals_are_shared_and_mutable() {
        let mut g = Graph::directed();
        g.add_edge("a", "b", attrs([("bytes", 5i64)]));
        let gv = Value::graph(g);
        let mut interp = Interpreter::new();
        interp.set_global("G", gv.clone());
        let outcome = interp
            .run("G.set_node_attr(\"a\", \"color\", \"red\")\nresult = G.get_node_attr(\"a\", \"color\")")
            .unwrap();
        assert_eq!(outcome.value.to_string(), "red");
        // The caller's graph reflects the mutation.
        if let Value::Graph(g) = &gv {
            assert_eq!(
                g.borrow().get_node_attr("a", "color").unwrap().as_str(),
                Some("red")
            );
        }
    }

    #[test]
    fn end_to_end_traffic_style_program() {
        // "Assign a unique color for each /16 IP address prefix."
        let mut g = Graph::directed();
        g.add_edge("10.0.1.1", "10.0.2.2", attrs([("bytes", 10i64)]));
        g.add_edge("10.1.3.3", "10.0.1.1", attrs([("bytes", 20i64)]));
        let gv = Value::graph(g);
        let mut interp = Interpreter::new();
        interp.set_global("G", gv.clone());
        let src = r#"
prefixes = []
for n in G.nodes() {
    p = ip_prefix(n, 2)
    if p not in prefixes {
        prefixes.append(p)
    }
}
prefixes.sort()
mapping = {}
i = 0
for p in prefixes {
    mapping[p] = palette_color(i)
    i += 1
}
for n in G.nodes() {
    G.set_node_attr(n, "color", mapping[ip_prefix(n, 2)])
}
result = mapping
"#;
        let outcome = interp.run(src).unwrap();
        assert!(outcome.value.to_string().contains("10.0"));
        if let Value::Graph(g) = &gv {
            let g = g.borrow();
            let c1 = g.get_node_attr("10.0.1.1", "color").unwrap().clone();
            let c2 = g.get_node_attr("10.0.2.2", "color").unwrap().clone();
            let c3 = g.get_node_attr("10.1.3.3", "color").unwrap().clone();
            assert_eq!(c1, c2);
            assert_ne!(c1, c3);
        }
    }
}
