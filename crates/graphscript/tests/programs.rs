//! Integration tests: realistic NeMoEval-style programs run end to end
//! against graph and dataframe globals, plus property tests on the
//! interpreter's arithmetic.

use dataframe::{Column, DataFrame};
use graphscript::{Interpreter, ScriptError, Value};
use netgraph::{attrs, Graph};
use proptest::prelude::*;

fn comm_graph() -> Graph {
    let mut g = Graph::directed();
    g.add_edge(
        "15.76.0.1",
        "10.2.0.1",
        attrs([("bytes", 1200i64), ("packets", 12i64)]),
    );
    g.add_edge(
        "15.76.0.2",
        "10.2.0.2",
        attrs([("bytes", 900i64), ("packets", 9i64)]),
    );
    g.add_edge(
        "15.76.1.9",
        "10.3.7.7",
        attrs([("bytes", 450i64), ("packets", 4i64)]),
    );
    g.add_edge(
        "10.2.0.1",
        "10.3.7.7",
        attrs([("bytes", 600i64), ("packets", 6i64)]),
    );
    g
}

fn edge_frame() -> DataFrame {
    DataFrame::from_columns(vec![
        (
            "source".to_string(),
            Column::from_values(["15.76.0.1", "15.76.0.2", "15.76.1.9", "10.2.0.1"]),
        ),
        (
            "target".to_string(),
            Column::from_values(["10.2.0.1", "10.2.0.2", "10.3.7.7", "10.3.7.7"]),
        ),
        (
            "bytes".to_string(),
            Column::from_values([1200i64, 900, 450, 600]),
        ),
    ])
    .unwrap()
}

#[test]
fn networkx_style_label_by_prefix() {
    // "Add a label app:production to nodes with address prefix 15.76".
    let gv = Value::graph(comm_graph());
    let mut interp = Interpreter::new();
    interp.set_global("G", gv.clone());
    let program = r#"
count = 0
for n in G.nodes() {
    if n.startswith("15.76") {
        G.set_node_attr(n, "label", "app:production")
        count += 1
    }
}
result = count
"#;
    let outcome = interp.run(program).unwrap();
    assert_eq!(outcome.value.to_string(), "3");
    if let Value::Graph(g) = &gv {
        let g = g.borrow();
        assert_eq!(
            g.get_node_attr("15.76.0.1", "label").unwrap().as_str(),
            Some("app:production")
        );
        assert!(g.get_node_attr_opt("10.2.0.1", "label").is_none());
    }
}

#[test]
fn networkx_style_cluster_by_byte_weight() {
    // "Calculate total byte weight on each node, cluster them into 2 groups".
    let gv = Value::graph(comm_graph());
    let mut interp = Interpreter::new();
    interp.set_global("G", gv);
    let program = r#"
totals = node_weight_totals(G, "bytes")
groups = kmeans_groups(totals, 2)
for n in keys(groups) {
    G.set_node_attr(n, "group", groups[n])
}
result = groups
"#;
    let outcome = interp.run(program).unwrap();
    if let Value::Dict(map) = &outcome.value {
        assert_eq!(map.borrow().len(), 6);
    } else {
        panic!("expected dict result");
    }
}

#[test]
fn pandas_style_top_talker() {
    let dfv = Value::frame(edge_frame());
    let mut interp = Interpreter::new();
    interp.set_global("edges", dfv);
    let program = r#"
per_source = edges.groupby_agg("source", "bytes", "sum", "total")
ranked = per_source.sort_values("total", false)
result = ranked.value(0, "source")
"#;
    let outcome = interp.run(program).unwrap();
    assert_eq!(outcome.value.to_string(), "15.76.0.1");
}

#[test]
fn pandas_style_filter_and_count() {
    let dfv = Value::frame(edge_frame());
    let mut interp = Interpreter::new();
    interp.set_global("edges", dfv.clone());
    let program = r#"
heavy = edges.filter("bytes", ">=", 600)
result = heavy.n_rows()
"#;
    assert_eq!(interp.run(program).unwrap().value.to_string(), "3");
    // The original frame is untouched by the filter.
    if let Value::Frame(df) = &dfv {
        assert_eq!(df.borrow().n_rows(), 4);
    }
}

#[test]
fn imaginary_attribute_reproduces_paper_failure_mode() {
    let gv = Value::graph(comm_graph());
    let mut interp = Interpreter::new();
    interp.set_global("G", gv);
    // The LLM hallucinating an attribute name ("capacity" does not exist).
    let program = r#"
total = 0
for n in G.nodes() {
    total += G.get_node_attr(n, "capacity")
}
result = total
"#;
    let err = interp.run(program).unwrap_err();
    assert!(err.is_missing_attribute());
}

#[test]
fn imaginary_method_reproduces_paper_failure_mode() {
    let gv = Value::graph(comm_graph());
    let mut interp = Interpreter::new();
    interp.set_global("G", gv);
    let err = interp.run("result = G.get_total_traffic()").unwrap_err();
    assert!(err.is_unknown_callable());
}

#[test]
fn removed_node_is_visible_to_caller() {
    let gv = Value::graph(comm_graph());
    let mut interp = Interpreter::new();
    interp.set_global("G", gv.clone());
    interp.run("G.remove_node(\"10.3.7.7\")").unwrap();
    if let Value::Graph(g) = &gv {
        assert!(!g.borrow().has_node("10.3.7.7"));
        assert_eq!(g.borrow().number_of_edges(), 2);
    }
}

#[test]
fn syntax_error_is_reported_not_panicked() {
    let mut interp = Interpreter::new();
    let err = interp.run("for n in G.nodes( {\n  x = 1\n}").unwrap_err();
    assert!(err.is_syntax() || matches!(err, ScriptError::NameError(_)));
}

proptest! {
    /// Integer arithmetic in GraphScript agrees with Rust's own arithmetic.
    #[test]
    fn interpreter_arithmetic_matches_rust(a in -10_000i64..10_000, b in -10_000i64..10_000) {
        let mut interp = Interpreter::new();
        let value = interp.run(&format!("result = {a} * 3 + {b} - 7")).unwrap().value;
        prop_assert_eq!(value.to_string(), (a * 3 + b - 7).to_string());
    }

    /// Summing a literal list agrees with the native sum.
    #[test]
    fn sum_of_list_matches_native(xs in prop::collection::vec(-1000i64..1000, 0..30)) {
        let literal = xs.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(", ");
        let mut interp = Interpreter::new();
        let value = interp.run(&format!("result = sum([{literal}])")).unwrap().value;
        prop_assert_eq!(value.to_string(), xs.iter().sum::<i64>().to_string());
    }

    /// A counting loop always terminates with the right count.
    #[test]
    fn counting_loop(n in 0i64..200) {
        let mut interp = Interpreter::new();
        let program = format!("c = 0\nfor i in range({n}) {{ c += 1 }}\nresult = c");
        let value = interp.run(&program).unwrap().value;
        prop_assert_eq!(value.to_string(), n.to_string());
    }
}
