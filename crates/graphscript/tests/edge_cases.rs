//! Interpreter edge cases the benchmark programs never hit on the default
//! workloads: empty graphs, single-node graphs and self-loops, plus
//! property tests over randomly built tiny graphs (self-loops included).

use graphscript::{Interpreter, Value};
use netgraph::{attrs, Graph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn run_on(graph: Graph, program: &str) -> Value {
    let mut interp = Interpreter::new().with_step_limit(1_000_000);
    interp.set_global("G", Value::graph(graph));
    interp
        .run(program)
        .unwrap_or_else(|e| panic!("program failed: {e}\n{program}"))
        .value
}

fn int_of(value: &Value) -> i64 {
    value
        .as_i64()
        .unwrap_or_else(|| panic!("not an int: {value}"))
}

#[test]
fn empty_graph_counts_iterations_and_aggregates() {
    let program = r#"
visited = 0
for n in G.nodes() {
    visited += 1
}
for e in G.edges_data() {
    visited += 1
}
result = [G.number_of_nodes(), G.number_of_edges(), visited, G.total_edge_attr("bytes")]
"#;
    // total_edge_attr returns a float; the empty sum must render as 0.0
    // (not -0.0, the float Sum identity).
    let value = run_on(Graph::directed(), program);
    assert_eq!(value.to_string(), "[0, 0, 0, 0.0]");
}

#[test]
fn empty_graph_subgraph_and_membership() {
    let program = r#"
sub = G.subgraph([])
result = [sub.number_of_nodes(), G.has_node("ghost"), G.nodes_with_prefix("10.")]
"#;
    let value = run_on(Graph::directed(), program);
    assert_eq!(value.to_string(), "[0, false, []]");
}

#[test]
fn single_node_graph_degrees_and_removal() {
    let mut g = Graph::directed();
    g.add_node("10.0.0.1", attrs([("prefix16", "10.0")]));
    let program = r#"
degrees = [G.degree("10.0.0.1"), G.in_degree("10.0.0.1"), G.out_degree("10.0.0.1")]
G.remove_node("10.0.0.1")
result = [degrees, G.number_of_nodes()]
"#;
    let value = run_on(g, program);
    assert_eq!(value.to_string(), "[[0, 0, 0], 0]");
}

#[test]
fn self_loop_edges_are_counted_and_traversed_once() {
    let mut g = Graph::directed();
    g.add_edge("a", "a", attrs([("bytes", 7i64)]));
    let program = r#"
seen = []
for e in G.edges_data() {
    seen.append([e[0], e[1], e[2]["bytes"]])
}
result = [G.number_of_nodes(), G.number_of_edges(), seen, G.total_edge_attr("bytes")]
"#;
    let value = run_on(g, program);
    assert_eq!(value.to_string(), "[1, 1, [[a, a, 7]], 7.0]");
}

#[test]
fn removing_a_self_loop_node_removes_its_loop_edge() {
    let mut g = Graph::directed();
    g.add_edge("a", "a", attrs([("bytes", 1i64)]));
    g.add_edge("a", "b", attrs([("bytes", 2i64)]));
    let program = r#"
before = G.number_of_edges()
G.remove_node("a")
result = [before, G.number_of_nodes(), G.number_of_edges()]
"#;
    let value = run_on(g, program);
    assert_eq!(value.to_string(), "[2, 1, 0]");
}

#[test]
fn subgraph_keeps_self_loops_of_member_nodes() {
    let mut g = Graph::directed();
    g.add_edge("a", "a", attrs([("bytes", 1i64)]));
    g.add_edge("a", "b", attrs([("bytes", 2i64)]));
    g.add_edge("b", "c", attrs([("bytes", 3i64)]));
    let program = r#"
sub = G.subgraph(["a", "b"])
result = [sub.number_of_nodes(), sub.number_of_edges()]
"#;
    let value = run_on(g, program);
    // Members a and b keep the loop a->a and the edge a->b; b->c is cut.
    assert_eq!(value.to_string(), "[2, 2]");
}

/// Builds a random directed graph of up to 6 nodes whose edge set may
/// include self-loops, duplicate writes and isolated nodes.
fn arb_graph(seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::directed();
    let n_nodes = rng.gen_range(0..6usize);
    for i in 0..n_nodes {
        g.add_node(&format!("n{i}"), attrs([("weight", i as i64)]));
    }
    if n_nodes > 0 {
        for _ in 0..rng.gen_range(0..10usize) {
            let u = rng.gen_range(0..n_nodes);
            // Biased towards self-loops so they appear often.
            let v = if rng.gen_range(0..3u32) == 0 {
                u
            } else {
                rng.gen_range(0..n_nodes)
            };
            let bytes = rng.gen_range(1..100i64);
            g.add_edge(
                &format!("n{u}"),
                &format!("n{v}"),
                attrs([("bytes", bytes)]),
            );
        }
    }
    g
}

proptest! {
    /// Interpreter-visible counts agree with the substrate's own counts,
    /// for any tiny graph (including empty / single-node / self-loops).
    #[test]
    fn counts_agree_with_substrate(seed in 0u64..u64::MAX) {
        let g = arb_graph(seed);
        let (nodes, edges) = (g.number_of_nodes() as i64, g.number_of_edges() as i64);
        let value = run_on(g, r#"
ns = 0
for n in G.nodes() {
    ns += 1
}
es = 0
for e in G.edges_data() {
    es += 1
}
result = [G.number_of_nodes(), G.number_of_edges(), ns, es]
"#);
        prop_assert_eq!(value.to_string(), format!("[{nodes}, {edges}, {nodes}, {edges}]"));
    }

    /// The sum of all out-degrees equals the edge count, self-loops
    /// included, and subgraph(all nodes) is the identity.
    #[test]
    fn degree_sum_and_identity_subgraph(seed in 0u64..u64::MAX) {
        let g = arb_graph(seed);
        let edges = g.number_of_edges() as i64;
        let nodes = g.number_of_nodes() as i64;
        let value = run_on(g, r#"
total = 0
members = []
for n in G.nodes() {
    total += G.out_degree(n)
    members.append(n)
}
sub = G.subgraph(members)
result = [total, sub.number_of_nodes(), sub.number_of_edges()]
"#);
        let list = match &value {
            Value::List(items) => items.borrow().clone(),
            other => panic!("expected list, got {other}"),
        };
        prop_assert_eq!(int_of(&list[0]), edges);
        prop_assert_eq!(int_of(&list[1]), nodes);
        prop_assert_eq!(int_of(&list[2]), edges);
    }

    /// Removing every node one by one always ends on the empty graph, and
    /// never errors — even when loops and isolated nodes are mixed.
    #[test]
    fn draining_nodes_empties_the_graph(seed in 0u64..u64::MAX) {
        let g = arb_graph(seed);
        let value = run_on(g, r#"
names = []
for n in G.nodes() {
    names.append(n)
}
for n in names {
    G.remove_node(n)
}
result = [G.number_of_nodes(), G.number_of_edges()]
"#);
        prop_assert_eq!(value.to_string(), "[0, 0]");
    }
}
