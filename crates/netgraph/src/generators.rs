//! Deterministic graph generators used by tests and benchmarks.

use crate::attr::AttrMap;
use crate::graph::Graph;

/// A path graph `0 - 1 - ... - (n-1)` with string node ids.
pub fn path_graph(n: usize, directed: bool) -> Graph {
    let mut g = if directed {
        Graph::directed()
    } else {
        Graph::undirected()
    };
    for i in 0..n {
        g.add_node(&i.to_string(), AttrMap::new());
    }
    for i in 1..n {
        g.add_edge(&(i - 1).to_string(), &i.to_string(), AttrMap::new());
    }
    g
}

/// A star graph with `center` connected to `leaves` leaf nodes.
pub fn star_graph(leaves: usize) -> Graph {
    let mut g = Graph::undirected();
    g.add_node("center", AttrMap::new());
    for i in 0..leaves {
        g.add_edge("center", &format!("leaf{i}"), AttrMap::new());
    }
    g
}

/// A complete undirected graph on `n` nodes.
pub fn complete_graph(n: usize) -> Graph {
    let mut g = Graph::undirected();
    for i in 0..n {
        g.add_node(&i.to_string(), AttrMap::new());
    }
    for i in 0..n {
        for j in (i + 1)..n {
            g.add_edge(&i.to_string(), &j.to_string(), AttrMap::new());
        }
    }
    g
}

/// A cycle graph `0 -> 1 -> ... -> n-1 -> 0`.
pub fn cycle_graph(n: usize, directed: bool) -> Graph {
    let mut g = path_graph(n, directed);
    if n > 1 {
        g.add_edge(&(n - 1).to_string(), "0", AttrMap::new());
    }
    g
}

/// A balanced binary tree of the given depth (depth 0 is a single root),
/// edges directed parent -> child.
pub fn binary_tree(depth: usize) -> Graph {
    let mut g = Graph::directed();
    g.add_node("n1", AttrMap::new());
    let total = (1usize << (depth + 1)) - 1;
    for i in 2..=total {
        g.add_edge(&format!("n{}", i / 2), &format!("n{i}"), AttrMap::new());
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::components::is_connected;
    use crate::algo::shortest_path::shortest_path_length;

    #[test]
    fn path_graph_shape() {
        let g = path_graph(5, false);
        assert_eq!(g.number_of_nodes(), 5);
        assert_eq!(g.number_of_edges(), 4);
        assert_eq!(shortest_path_length(&g, "0", "4").unwrap(), 4);
        assert!(is_connected(&g));
    }

    #[test]
    fn star_graph_center_degree() {
        let g = star_graph(7);
        assert_eq!(g.degree("center").unwrap(), 7);
        assert_eq!(g.number_of_nodes(), 8);
    }

    #[test]
    fn complete_graph_edge_count() {
        let g = complete_graph(6);
        assert_eq!(g.number_of_edges(), 15);
    }

    #[test]
    fn cycle_graph_returns_to_start() {
        let g = cycle_graph(4, true);
        assert_eq!(g.number_of_edges(), 4);
        assert_eq!(shortest_path_length(&g, "1", "0").unwrap(), 3);
    }

    #[test]
    fn binary_tree_node_count() {
        let g = binary_tree(3);
        assert_eq!(g.number_of_nodes(), 15);
        assert_eq!(g.number_of_edges(), 14);
        assert_eq!(g.out_degree("n1").unwrap(), 2);
    }
}
