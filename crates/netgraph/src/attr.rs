//! Attribute maps attached to nodes, edges and the graph itself.

use crate::value::AttrValue;
use std::collections::BTreeMap;

/// An ordered map from attribute name to [`AttrValue`].
///
/// Node and edge metadata is stored in an `AttrMap`. A `BTreeMap` keeps the
/// iteration order deterministic, which matters for reproducible JSON export
/// and result comparison.
pub type AttrMap = BTreeMap<String, AttrValue>;

/// Convenience constructors and comparison helpers for attribute maps.
pub trait AttrMapExt {
    /// Inserts `key` with a value convertible into [`AttrValue`].
    fn set(&mut self, key: &str, value: impl Into<AttrValue>);
    /// Returns the numeric value of `key` if present and numeric.
    fn get_f64(&self, key: &str) -> Option<f64>;
    /// Returns the integer value of `key` if present and integral.
    fn get_i64(&self, key: &str) -> Option<i64>;
    /// Returns the string value of `key` if present and a string.
    fn get_str(&self, key: &str) -> Option<&str>;
    /// True when both maps contain the same keys and approximately equal
    /// values (numeric tolerance per [`AttrValue::approx_eq`]).
    fn approx_eq(&self, other: &Self) -> bool;
}

impl AttrMapExt for AttrMap {
    fn set(&mut self, key: &str, value: impl Into<AttrValue>) {
        self.insert(key.to_string(), value.into());
    }

    fn get_f64(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(AttrValue::as_f64)
    }

    fn get_i64(&self, key: &str) -> Option<i64> {
        self.get(key).and_then(AttrValue::as_i64)
    }

    fn get_str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(AttrValue::as_str)
    }

    fn approx_eq(&self, other: &Self) -> bool {
        self.len() == other.len()
            && self
                .iter()
                .all(|(k, v)| other.get(k).map(|o| v.approx_eq(o)).unwrap_or(false))
    }
}

/// Builds an [`AttrMap`] from `(name, value)` pairs.
///
/// ```
/// use netgraph::{attrs, AttrValue};
/// let a = attrs([("bytes", AttrValue::Int(100)), ("proto", "tcp".into())]);
/// assert_eq!(a.len(), 2);
/// ```
pub fn attrs<I, V>(pairs: I) -> AttrMap
where
    I: IntoIterator<Item = (&'static str, V)>,
    V: Into<AttrValue>,
{
    pairs
        .into_iter()
        .map(|(k, v)| (k.to_string(), v.into()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_typed_getters() {
        let mut m = AttrMap::new();
        m.set("bytes", 1500i64);
        m.set("ratio", 0.5);
        m.set("proto", "udp");
        assert_eq!(m.get_i64("bytes"), Some(1500));
        assert_eq!(m.get_f64("ratio"), Some(0.5));
        assert_eq!(m.get_str("proto"), Some("udp"));
        assert_eq!(m.get_i64("missing"), None);
    }

    #[test]
    fn approx_eq_requires_same_keys() {
        let a = attrs([("x", AttrValue::Int(1))]);
        let mut b = a.clone();
        assert!(a.approx_eq(&b));
        b.set("y", 2i64);
        assert!(!a.approx_eq(&b));
    }

    #[test]
    fn approx_eq_tolerates_int_float_mismatch() {
        let a = attrs([("x", AttrValue::Int(3))]);
        let b = attrs([("x", AttrValue::Float(3.0))]);
        assert!(a.approx_eq(&b));
    }

    #[test]
    fn attrs_builder_orders_keys() {
        let m = attrs([("z", 1i64), ("a", 2i64)]);
        let keys: Vec<_> = m.keys().cloned().collect();
        assert_eq!(keys, vec!["a".to_string(), "z".to_string()]);
    }
}
