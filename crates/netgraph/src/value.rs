//! Dynamically-typed attribute values stored on graph nodes and edges.
//!
//! The networks the benchmark manipulates carry heterogeneous metadata:
//! IP-address strings, byte counters, colors, lists of labels, and so on.
//! [`AttrValue`] is the single dynamic value type shared by the graph
//! substrate ([`crate::Graph`]), the dataframe substrate and the GraphScript
//! interpreter, so values can flow between the three without conversion
//! losses.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A dynamically-typed attribute value.
///
/// Numeric comparisons treat `Int` and `Float` as interchangeable (an `Int`
/// compares equal to a `Float` with the same numeric value), mirroring the
/// loose typing of the Python libraries the paper's generated code targets.
///
/// Strings are stored as shared `Arc<str>` allocations: the data plane
/// copies values constantly (row materialization, attribute reads, result
/// rendering), and with shared storage each copy is a reference-count bump
/// instead of a heap allocation. Workload loaders can additionally dedupe
/// repeated strings through [`crate::intern::Interner::intern_shared`], so
/// every occurrence of an endpoint address shares one allocation.
#[derive(Debug, Clone)]
pub enum AttrValue {
    /// Absence of a value (`None` in the generated code).
    Null,
    /// Boolean flag.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Float(f64),
    /// UTF-8 string (shared allocation; clones are O(1)).
    Str(Arc<str>),
    /// Ordered list of values.
    List(Vec<AttrValue>),
}

impl AttrValue {
    /// Returns a short lowercase name for the value's type, used in error
    /// messages produced by the execution sandbox.
    pub fn type_name(&self) -> &'static str {
        match self {
            AttrValue::Null => "null",
            AttrValue::Bool(_) => "bool",
            AttrValue::Int(_) => "int",
            AttrValue::Float(_) => "float",
            AttrValue::Str(_) => "str",
            AttrValue::List(_) => "list",
        }
    }

    /// True if the value is [`AttrValue::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, AttrValue::Null)
    }

    /// Returns the numeric value as `f64` if this is an `Int` or `Float`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AttrValue::Int(i) => Some(*i as f64),
            AttrValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Returns the value as `i64` if it is an `Int`, or a `Float` with an
    /// exact integer value.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            AttrValue::Int(i) => Some(*i),
            AttrValue::Float(f) if f.fract() == 0.0 && f.is_finite() => Some(*f as i64),
            _ => None,
        }
    }

    /// Returns the string slice if the value is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s.as_ref()),
            _ => None,
        }
    }

    /// Returns the shared string allocation if the value is a `Str` (an
    /// O(1) owned copy).
    pub fn as_shared_str(&self) -> Option<Arc<str>> {
        match self {
            AttrValue::Str(s) => Some(Arc::clone(s)),
            _ => None,
        }
    }

    /// Builds a `Str` value from anything convertible into a shared string.
    pub fn str(value: impl Into<Arc<str>>) -> AttrValue {
        AttrValue::Str(value.into())
    }

    /// Returns the boolean if the value is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            AttrValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the list elements if the value is a `List`.
    pub fn as_list(&self) -> Option<&[AttrValue]> {
        match self {
            AttrValue::List(v) => Some(v),
            _ => None,
        }
    }

    /// Truthiness following Python conventions: `Null`, `false`, `0`, `0.0`,
    /// empty string and empty list are falsy; everything else is truthy.
    pub fn is_truthy(&self) -> bool {
        match self {
            AttrValue::Null => false,
            AttrValue::Bool(b) => *b,
            AttrValue::Int(i) => *i != 0,
            AttrValue::Float(f) => *f != 0.0,
            AttrValue::Str(s) => !s.is_empty(),
            AttrValue::List(v) => !v.is_empty(),
        }
    }

    /// Whether the value is numeric (`Int` or `Float`).
    pub fn is_numeric(&self) -> bool {
        matches!(self, AttrValue::Int(_) | AttrValue::Float(_))
    }

    /// Compares two values for ordering.
    ///
    /// Numbers order numerically across `Int`/`Float`, strings
    /// lexicographically, booleans as `false < true`, lists element-wise.
    /// Values of incomparable types return `None`.
    pub fn partial_cmp_value(&self, other: &AttrValue) -> Option<Ordering> {
        use AttrValue::*;
        match (self, other) {
            (Null, Null) => Some(Ordering::Equal),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (List(a), List(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    match x.partial_cmp_value(y) {
                        Some(Ordering::Equal) => continue,
                        other => return other,
                    }
                }
                Some(a.len().cmp(&b.len()))
            }
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                a.partial_cmp(&b)
            }
        }
    }

    /// Structural equality with numeric coercion and float tolerance.
    ///
    /// Two numeric values are equal if they differ by less than `1e-9`
    /// (absolute) or `1e-9` relative, which is the comparison the results
    /// evaluator uses when matching LLM output against golden answers.
    pub fn approx_eq(&self, other: &AttrValue) -> bool {
        use AttrValue::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (List(a), List(b)) => {
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.approx_eq(y))
            }
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => {
                    let diff = (a - b).abs();
                    diff <= 1e-9 || diff <= 1e-9 * a.abs().max(b.abs())
                }
                _ => false,
            },
        }
    }
}

impl PartialEq for AttrValue {
    fn eq(&self, other: &Self) -> bool {
        use AttrValue::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (List(a), List(b)) => a == b,
            (Int(a), Int(b)) => a == b,
            (Float(a), Float(b)) => a == b,
            (Int(a), Float(b)) | (Float(b), Int(a)) => (*a as f64) == *b,
            _ => false,
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Null => write!(f, "null"),
            AttrValue::Bool(b) => write!(f, "{b}"),
            AttrValue::Int(i) => write!(f, "{i}"),
            AttrValue::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    write!(f, "{:.1}", v)
                } else {
                    write!(f, "{v}")
                }
            }
            AttrValue::Str(s) => write!(f, "{s}"),
            AttrValue::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}
impl From<i32> for AttrValue {
    fn from(v: i32) -> Self {
        AttrValue::Int(v as i64)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::Int(v as i64)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(Arc::from(v))
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(Arc::from(v))
    }
}
impl From<Arc<str>> for AttrValue {
    fn from(v: Arc<str>) -> Self {
        AttrValue::Str(v)
    }
}
impl From<Vec<AttrValue>> for AttrValue {
    fn from(v: Vec<AttrValue>) -> Self {
        AttrValue::List(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_names() {
        assert_eq!(AttrValue::Null.type_name(), "null");
        assert_eq!(AttrValue::Bool(true).type_name(), "bool");
        assert_eq!(AttrValue::Int(1).type_name(), "int");
        assert_eq!(AttrValue::Float(1.0).type_name(), "float");
        assert_eq!(AttrValue::from("x").type_name(), "str");
        assert_eq!(AttrValue::List(vec![]).type_name(), "list");
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(AttrValue::Int(3), AttrValue::Float(3.0));
        assert_ne!(AttrValue::Int(3), AttrValue::Float(3.5));
        assert_ne!(AttrValue::Int(3), AttrValue::from("3"));
    }

    #[test]
    fn truthiness_follows_python() {
        assert!(!AttrValue::Null.is_truthy());
        assert!(!AttrValue::Int(0).is_truthy());
        assert!(!AttrValue::Float(0.0).is_truthy());
        assert!(!AttrValue::from("").is_truthy());
        assert!(!AttrValue::List(vec![]).is_truthy());
        assert!(AttrValue::Int(7).is_truthy());
        assert!(AttrValue::from("x").is_truthy());
        assert!(AttrValue::List(vec![AttrValue::Null]).is_truthy());
    }

    #[test]
    fn ordering_across_numeric_types() {
        assert_eq!(
            AttrValue::Int(2).partial_cmp_value(&AttrValue::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            AttrValue::from("abc").partial_cmp_value(&AttrValue::from("abd")),
            Some(Ordering::Less)
        );
        assert_eq!(
            AttrValue::from("abc").partial_cmp_value(&AttrValue::Int(1)),
            None
        );
    }

    #[test]
    fn list_ordering_is_elementwise_then_length() {
        let a = AttrValue::List(vec![AttrValue::Int(1), AttrValue::Int(2)]);
        let b = AttrValue::List(vec![AttrValue::Int(1), AttrValue::Int(3)]);
        let c = AttrValue::List(vec![AttrValue::Int(1)]);
        assert_eq!(a.partial_cmp_value(&b), Some(Ordering::Less));
        assert_eq!(a.partial_cmp_value(&c), Some(Ordering::Greater));
    }

    #[test]
    fn approx_eq_tolerates_float_noise() {
        assert!(AttrValue::Float(0.1 + 0.2).approx_eq(&AttrValue::Float(0.3)));
        assert!(AttrValue::Int(5).approx_eq(&AttrValue::Float(5.0)));
        assert!(!AttrValue::Float(5.001).approx_eq(&AttrValue::Float(5.0)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(AttrValue::Int(5).to_string(), "5");
        assert_eq!(AttrValue::Float(2.0).to_string(), "2.0");
        assert_eq!(AttrValue::from("hi").to_string(), "hi");
        assert_eq!(
            AttrValue::List(vec![AttrValue::Int(1), AttrValue::from("a")]).to_string(),
            "[1, a]"
        );
    }

    #[test]
    fn as_i64_accepts_integral_floats() {
        assert_eq!(AttrValue::Float(4.0).as_i64(), Some(4));
        assert_eq!(AttrValue::Float(4.5).as_i64(), None);
        assert_eq!(AttrValue::Int(-2).as_i64(), Some(-2));
    }
}
