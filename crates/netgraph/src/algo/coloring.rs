//! Node coloring helpers.
//!
//! Supports the paper's running example query ("Assign a unique color for
//! each /16 IP address prefix") and greedy proper colorings for topology
//! visualisation.

use crate::error::Result;
use crate::graph::Graph;
use std::collections::{BTreeMap, BTreeSet};

/// A palette of named colors; category `i` receives `PALETTE[i % len]` with a
/// numeric suffix appended once the palette wraps, so every category still
/// gets a *unique* color string.
pub const PALETTE: &[&str] = &[
    "red", "blue", "green", "orange", "purple", "cyan", "magenta", "yellow", "brown", "pink",
    "olive", "teal", "navy", "maroon", "gold", "salmon",
];

/// Returns the color string for category index `i`.
pub fn palette_color(i: usize) -> String {
    let base = PALETTE[i % PALETTE.len()];
    if i < PALETTE.len() {
        base.to_string()
    } else {
        format!("{}-{}", base, i / PALETTE.len())
    }
}

/// Assigns one unique color per distinct category, where the category of a
/// node is computed by `category_fn`. Categories are colored in sorted order
/// so the mapping is deterministic. The chosen color is written to the node
/// attribute `attr` and the category→color map is returned.
pub fn color_by_category<F: Fn(&str) -> String>(
    g: &mut Graph,
    attr: &str,
    category_fn: F,
) -> Result<BTreeMap<String, String>> {
    let categories: BTreeSet<String> = g.node_ids().map(&category_fn).collect();
    let mapping: BTreeMap<String, String> = categories
        .into_iter()
        .enumerate()
        .map(|(i, c)| (c, palette_color(i)))
        .collect();
    let nodes: Vec<String> = g.node_ids().map(|s| s.to_string()).collect();
    for n in nodes {
        let cat = category_fn(&n);
        let color = mapping[&cat].clone();
        g.set_node_attr(&n, attr, color)?;
    }
    Ok(mapping)
}

/// Greedy proper coloring: each node (in sorted order) receives the smallest
/// color index not used by an already-colored neighbor. Returns a map from
/// node id to color index.
pub fn greedy_coloring(g: &Graph) -> BTreeMap<String, usize> {
    let mut colors: BTreeMap<String, usize> = BTreeMap::new();
    for node in g.node_ids() {
        let used: BTreeSet<usize> = g
            .neighbors(node)
            .unwrap_or_default()
            .iter()
            .filter_map(|n| colors.get(n))
            .copied()
            .collect();
        let mut c = 0;
        while used.contains(&c) {
            c += 1;
        }
        colors.insert(node.to_string(), c);
    }
    colors
}

/// Number of distinct colors used by a coloring.
pub fn color_count(colors: &BTreeMap<String, usize>) -> usize {
    colors.values().collect::<BTreeSet<_>>().len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::{AttrMap, AttrMapExt};

    #[test]
    fn palette_colors_are_unique_past_wraparound() {
        let mut seen = BTreeSet::new();
        for i in 0..64 {
            assert!(seen.insert(palette_color(i)), "color {i} repeated");
        }
    }

    #[test]
    fn color_by_category_assigns_one_color_per_prefix() {
        let mut g = Graph::undirected();
        for ip in ["10.1.0.1", "10.1.0.2", "10.2.0.1", "10.3.0.1"] {
            g.add_node(ip, AttrMap::new());
        }
        let mapping = color_by_category(&mut g, "color", |ip| {
            ip.split('.').take(2).collect::<Vec<_>>().join(".")
        })
        .unwrap();
        assert_eq!(mapping.len(), 3);
        let c1 = g
            .node_attrs("10.1.0.1")
            .unwrap()
            .get_str("color")
            .unwrap()
            .to_string();
        let c2 = g
            .node_attrs("10.1.0.2")
            .unwrap()
            .get_str("color")
            .unwrap()
            .to_string();
        let c3 = g
            .node_attrs("10.2.0.1")
            .unwrap()
            .get_str("color")
            .unwrap()
            .to_string();
        assert_eq!(c1, c2);
        assert_ne!(c1, c3);
    }

    #[test]
    fn greedy_coloring_is_proper() {
        let mut g = Graph::undirected();
        // Triangle requires 3 colors; extra pendant requires no more.
        g.add_edge("a", "b", AttrMap::new());
        g.add_edge("b", "c", AttrMap::new());
        g.add_edge("c", "a", AttrMap::new());
        g.add_edge("c", "d", AttrMap::new());
        let colors = greedy_coloring(&g);
        for (u, v, _) in g.edges() {
            assert_ne!(colors[u], colors[v], "edge ({u},{v}) shares a color");
        }
        assert_eq!(color_count(&colors), 3);
    }

    #[test]
    fn greedy_coloring_empty_graph() {
        let g = Graph::undirected();
        assert!(greedy_coloring(&g).is_empty());
    }
}
