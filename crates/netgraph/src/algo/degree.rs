//! Degree- and weight-based node statistics.
//!
//! Traffic-analysis queries frequently ask for the "top talkers", the total
//! byte weight on each node, or degree centrality; these helpers compute the
//! aggregates the generated code calls into.

use crate::attr::AttrMapExt;
use crate::error::Result;
use crate::graph::Graph;
use std::collections::BTreeMap;

/// Degree of every node (in + out for directed graphs).
pub fn degree_map(g: &Graph) -> BTreeMap<String, usize> {
    g.node_ids()
        .map(|n| (n.to_string(), g.degree(n).expect("node exists")))
        .collect()
}

/// Degree centrality: degree divided by `n - 1`, NetworkX convention.
/// Returns an empty map for graphs with fewer than two nodes.
pub fn degree_centrality(g: &Graph) -> BTreeMap<String, f64> {
    let n = g.number_of_nodes();
    if n < 2 {
        return g.node_ids().map(|id| (id.to_string(), 0.0)).collect();
    }
    let denom = (n - 1) as f64;
    degree_map(g)
        .into_iter()
        .map(|(k, d)| (k, d as f64 / denom))
        .collect()
}

/// Sum of a numeric edge attribute over all edges incident to each node.
/// For directed graphs both incoming and outgoing edges contribute, which is
/// what "total byte weight on each node" means in the benchmark queries.
pub fn node_weight_totals(g: &Graph, attr: &str) -> Result<BTreeMap<String, f64>> {
    let mut totals: BTreeMap<String, f64> = g.node_ids().map(|n| (n.to_string(), 0.0)).collect();
    for (u, v, attrs) in g.edges() {
        let w = attrs.get_f64(attr).unwrap_or(0.0);
        *totals.get_mut(u).expect("endpoint exists") += w;
        if u != v {
            *totals.get_mut(v).expect("endpoint exists") += w;
        }
    }
    Ok(totals)
}

/// Nodes sorted descending by a numeric score map, ties broken by node id,
/// truncated to `k` entries.
pub fn top_k_by_score(scores: &BTreeMap<String, f64>, k: usize) -> Vec<(String, f64)> {
    let mut pairs: Vec<(String, f64)> = scores.iter().map(|(n, s)| (n.clone(), *s)).collect();
    pairs.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    pairs.truncate(k);
    pairs
}

/// The node with the maximum degree (ties broken by id); `None` on an empty
/// graph.
pub fn max_degree_node(g: &Graph) -> Option<(String, usize)> {
    degree_map(g)
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
}

/// Average degree over all nodes; 0.0 on an empty graph.
pub fn average_degree(g: &Graph) -> f64 {
    let n = g.number_of_nodes();
    if n == 0 {
        return 0.0;
    }
    degree_map(g).values().sum::<usize>() as f64 / n as f64
}

/// Density as defined by NetworkX: `m / (n * (n - 1))` for directed graphs,
/// `2m / (n * (n - 1))` for undirected graphs. Returns 0.0 for graphs with
/// fewer than two nodes.
pub fn density(g: &Graph) -> f64 {
    let n = g.number_of_nodes() as f64;
    let m = g.number_of_edges() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let possible = n * (n - 1.0);
    if g.is_directed() {
        m / possible
    } else {
        2.0 * m / possible
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::attrs;

    fn traffic() -> Graph {
        let mut g = Graph::directed();
        g.add_edge("h1", "h2", attrs([("bytes", 100i64)]));
        g.add_edge("h2", "h3", attrs([("bytes", 50i64)]));
        g.add_edge("h1", "h3", attrs([("bytes", 25i64)]));
        g
    }

    #[test]
    fn degree_map_counts_both_directions() {
        let g = traffic();
        let d = degree_map(&g);
        assert_eq!(d["h1"], 2);
        assert_eq!(d["h2"], 2);
        assert_eq!(d["h3"], 2);
    }

    #[test]
    fn degree_centrality_normalizes() {
        let g = traffic();
        let c = degree_centrality(&g);
        assert!((c["h1"] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn node_weight_totals_sum_incident_edges() {
        let g = traffic();
        let t = node_weight_totals(&g, "bytes").unwrap();
        assert_eq!(t["h1"], 125.0);
        assert_eq!(t["h2"], 150.0);
        assert_eq!(t["h3"], 75.0);
    }

    #[test]
    fn self_loop_counted_once_in_totals() {
        let mut g = Graph::directed();
        g.add_edge("x", "x", attrs([("bytes", 10i64)]));
        let t = node_weight_totals(&g, "bytes").unwrap();
        assert_eq!(t["x"], 10.0);
    }

    #[test]
    fn top_k_orders_descending_with_id_ties() {
        let mut scores = BTreeMap::new();
        scores.insert("a".to_string(), 5.0);
        scores.insert("b".to_string(), 9.0);
        scores.insert("c".to_string(), 5.0);
        let top = top_k_by_score(&scores, 2);
        assert_eq!(top[0].0, "b");
        assert_eq!(top[1].0, "a");
    }

    #[test]
    fn max_degree_and_average() {
        let g = traffic();
        let (_, d) = max_degree_node(&g).unwrap();
        assert_eq!(d, 2);
        assert!((average_degree(&g) - 2.0).abs() < 1e-12);
        assert_eq!(max_degree_node(&Graph::directed()), None);
    }

    #[test]
    fn density_directed_and_undirected() {
        let g = traffic();
        assert!((density(&g) - 0.5).abs() < 1e-12);
        let u = g.to_undirected();
        assert!((density(&u) - 1.0).abs() < 1e-12);
        assert_eq!(density(&Graph::directed()), 0.0);
    }
}
