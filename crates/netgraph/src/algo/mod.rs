//! Graph algorithms used by the generated programs.

pub mod coloring;
pub mod components;
pub mod degree;
pub mod grouping;
pub mod shortest_path;
pub mod traversal;
