//! Breadth-first and depth-first traversal.

use crate::error::{GraphError, Result};
use crate::graph::Graph;
use std::collections::{BTreeSet, VecDeque};

/// Nodes reachable from `source` (including `source`) following edge
/// direction, in breadth-first discovery order.
pub fn bfs_order(g: &Graph, source: &str) -> Result<Vec<String>> {
    if !g.has_node(source) {
        return Err(GraphError::NodeNotFound(source.to_string()));
    }
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    seen.insert(source.to_string());
    queue.push_back(source.to_string());
    while let Some(u) = queue.pop_front() {
        order.push(u.clone());
        for v in g.successors(&u)? {
            if seen.insert(v.clone()) {
                queue.push_back(v);
            }
        }
    }
    Ok(order)
}

/// Nodes reachable from `source` (including `source`) in depth-first
/// preorder. Neighbors are visited in sorted order so the result is
/// deterministic.
pub fn dfs_order(g: &Graph, source: &str) -> Result<Vec<String>> {
    if !g.has_node(source) {
        return Err(GraphError::NodeNotFound(source.to_string()));
    }
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut order = Vec::new();
    let mut stack = vec![source.to_string()];
    while let Some(u) = stack.pop() {
        if !seen.insert(u.clone()) {
            continue;
        }
        order.push(u.clone());
        let mut next = g.successors(&u)?;
        // Reverse so the lexicographically smallest neighbor is popped first.
        next.reverse();
        for v in next {
            if !seen.contains(&v) {
                stack.push(v);
            }
        }
    }
    Ok(order)
}

/// All nodes reachable from `source`, excluding `source` itself
/// (NetworkX `descendants`).
pub fn descendants(g: &Graph, source: &str) -> Result<BTreeSet<String>> {
    let mut set: BTreeSet<String> = bfs_order(g, source)?.into_iter().collect();
    set.remove(source);
    Ok(set)
}

/// All nodes that can reach `target`, excluding `target` itself
/// (NetworkX `ancestors`).
pub fn ancestors(g: &Graph, target: &str) -> Result<BTreeSet<String>> {
    let rev = g.reverse();
    let mut set: BTreeSet<String> = bfs_order(&rev, target)?.into_iter().collect();
    set.remove(target);
    Ok(set)
}

/// True when `target` is reachable from `source` following edge direction.
pub fn has_path(g: &Graph, source: &str, target: &str) -> Result<bool> {
    if !g.has_node(target) {
        return Err(GraphError::NodeNotFound(target.to_string()));
    }
    Ok(bfs_order(g, source)?.iter().any(|n| n == target))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrMap;

    fn chain() -> Graph {
        // a -> b -> c -> d, plus isolated e
        let mut g = Graph::directed();
        for (u, v) in [("a", "b"), ("b", "c"), ("c", "d")] {
            g.add_edge(u, v, AttrMap::new());
        }
        g.add_node("e", AttrMap::new());
        g
    }

    #[test]
    fn bfs_visits_reachable_in_order() {
        let g = chain();
        assert_eq!(bfs_order(&g, "a").unwrap(), vec!["a", "b", "c", "d"]);
        assert_eq!(bfs_order(&g, "c").unwrap(), vec!["c", "d"]);
        assert!(bfs_order(&g, "zzz").is_err());
    }

    #[test]
    fn dfs_preorder_deterministic() {
        let mut g = Graph::directed();
        for (u, v) in [("r", "b"), ("r", "a"), ("a", "x"), ("b", "y")] {
            g.add_edge(u, v, AttrMap::new());
        }
        assert_eq!(dfs_order(&g, "r").unwrap(), vec!["r", "a", "x", "b", "y"]);
    }

    #[test]
    fn descendants_and_ancestors() {
        let g = chain();
        let d: Vec<_> = descendants(&g, "b").unwrap().into_iter().collect();
        assert_eq!(d, vec!["c", "d"]);
        let a: Vec<_> = ancestors(&g, "c").unwrap().into_iter().collect();
        assert_eq!(a, vec!["a", "b"]);
    }

    #[test]
    fn has_path_respects_direction() {
        let g = chain();
        assert!(has_path(&g, "a", "d").unwrap());
        assert!(!has_path(&g, "d", "a").unwrap());
        assert!(!has_path(&g, "a", "e").unwrap());
    }

    #[test]
    fn undirected_traversal_ignores_direction() {
        let mut g = Graph::undirected();
        g.add_edge("a", "b", AttrMap::new());
        g.add_edge("c", "b", AttrMap::new());
        assert_eq!(bfs_order(&g, "c").unwrap(), vec!["c", "b", "a"]);
    }
}
