//! Breadth-first and depth-first traversal.
//!
//! The kernels walk interned [`NodeId`] adjacency slices with `Vec<bool>`
//! visited sets; the public string API converts at the boundary only, so
//! output order is byte-identical to the historical string-set
//! implementation (adjacency slices are sorted by neighbor name, exactly
//! the order `Graph::successors` used to yield).

use crate::error::{GraphError, Result};
use crate::graph::{Graph, NodeId};
use std::collections::{BTreeSet, VecDeque};

fn require_node(g: &Graph, id: &str) -> Result<NodeId> {
    g.node_id(id)
        .ok_or_else(|| GraphError::NodeNotFound(id.to_string()))
}

/// Id-level BFS kernel: nodes reachable from `source` (including `source`)
/// following edge direction, in breadth-first discovery order.
pub fn bfs_order_ids(g: &Graph, source: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; g.id_bound()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    seen[source.index()] = true;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &v in g.successor_ids(u) {
            if !seen[v.index()] {
                seen[v.index()] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

/// Nodes reachable from `source` (including `source`) following edge
/// direction, in breadth-first discovery order.
pub fn bfs_order(g: &Graph, source: &str) -> Result<Vec<String>> {
    let src = require_node(g, source)?;
    Ok(bfs_order_ids(g, src)
        .into_iter()
        .map(|id| g.node_name(id).to_string())
        .collect())
}

/// Nodes reachable from `source` (including `source`) in depth-first
/// preorder. Neighbors are visited in sorted order so the result is
/// deterministic.
pub fn dfs_order(g: &Graph, source: &str) -> Result<Vec<String>> {
    let src = require_node(g, source)?;
    let mut seen = vec![false; g.id_bound()];
    let mut order = Vec::new();
    let mut stack = vec![src];
    while let Some(u) = stack.pop() {
        if seen[u.index()] {
            continue;
        }
        seen[u.index()] = true;
        order.push(g.node_name(u).to_string());
        // Reverse so the lexicographically smallest neighbor is popped
        // first (successor slices are sorted by name).
        for &v in g.successor_ids(u).iter().rev() {
            if !seen[v.index()] {
                stack.push(v);
            }
        }
    }
    Ok(order)
}

/// All nodes reachable from `source`, excluding `source` itself
/// (NetworkX `descendants`).
pub fn descendants(g: &Graph, source: &str) -> Result<BTreeSet<String>> {
    let mut set: BTreeSet<String> = bfs_order(g, source)?.into_iter().collect();
    set.remove(source);
    Ok(set)
}

/// All nodes that can reach `target`, excluding `target` itself
/// (NetworkX `ancestors`). Walks predecessor slices directly instead of
/// materializing a reversed copy of the graph.
pub fn ancestors(g: &Graph, target: &str) -> Result<BTreeSet<String>> {
    let tgt = require_node(g, target)?;
    let mut seen = vec![false; g.id_bound()];
    let mut queue = VecDeque::new();
    let mut set = BTreeSet::new();
    seen[tgt.index()] = true;
    queue.push_back(tgt);
    while let Some(u) = queue.pop_front() {
        for &v in g.predecessor_ids(u) {
            if !seen[v.index()] {
                seen[v.index()] = true;
                set.insert(g.node_name(v).to_string());
                queue.push_back(v);
            }
        }
    }
    Ok(set)
}

/// True when `target` is reachable from `source` following edge direction.
pub fn has_path(g: &Graph, source: &str, target: &str) -> Result<bool> {
    let tgt = require_node(g, target)?;
    let src = require_node(g, source)?;
    if src == tgt {
        return Ok(true);
    }
    let mut seen = vec![false; g.id_bound()];
    let mut queue = VecDeque::new();
    seen[src.index()] = true;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        for &v in g.successor_ids(u) {
            if v == tgt {
                return Ok(true);
            }
            if !seen[v.index()] {
                seen[v.index()] = true;
                queue.push_back(v);
            }
        }
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrMap;

    fn chain() -> Graph {
        // a -> b -> c -> d, plus isolated e
        let mut g = Graph::directed();
        for (u, v) in [("a", "b"), ("b", "c"), ("c", "d")] {
            g.add_edge(u, v, AttrMap::new());
        }
        g.add_node("e", AttrMap::new());
        g
    }

    #[test]
    fn bfs_visits_reachable_in_order() {
        let g = chain();
        assert_eq!(bfs_order(&g, "a").unwrap(), vec!["a", "b", "c", "d"]);
        assert_eq!(bfs_order(&g, "c").unwrap(), vec!["c", "d"]);
        assert!(bfs_order(&g, "zzz").is_err());
    }

    #[test]
    fn dfs_preorder_deterministic() {
        let mut g = Graph::directed();
        for (u, v) in [("r", "b"), ("r", "a"), ("a", "x"), ("b", "y")] {
            g.add_edge(u, v, AttrMap::new());
        }
        assert_eq!(dfs_order(&g, "r").unwrap(), vec!["r", "a", "x", "b", "y"]);
    }

    #[test]
    fn descendants_and_ancestors() {
        let g = chain();
        let d: Vec<_> = descendants(&g, "b").unwrap().into_iter().collect();
        assert_eq!(d, vec!["c", "d"]);
        let a: Vec<_> = ancestors(&g, "c").unwrap().into_iter().collect();
        assert_eq!(a, vec!["a", "b"]);
    }

    #[test]
    fn has_path_respects_direction() {
        let g = chain();
        assert!(has_path(&g, "a", "d").unwrap());
        assert!(!has_path(&g, "d", "a").unwrap());
        assert!(!has_path(&g, "a", "e").unwrap());
        assert!(has_path(&g, "e", "e").unwrap());
    }

    #[test]
    fn undirected_traversal_ignores_direction() {
        let mut g = Graph::undirected();
        g.add_edge("a", "b", AttrMap::new());
        g.add_edge("c", "b", AttrMap::new());
        assert_eq!(bfs_order(&g, "c").unwrap(), vec!["c", "b", "a"]);
    }

    #[test]
    fn id_kernel_matches_string_api_after_removals() {
        let mut g = chain();
        g.remove_node("c").unwrap();
        g.add_edge("b", "d", AttrMap::new());
        let names = bfs_order(&g, "a").unwrap();
        assert_eq!(names, vec!["a", "b", "d"]);
        let ids: Vec<&str> = bfs_order_ids(&g, g.node_id("a").unwrap())
            .into_iter()
            .map(|id| g.node_name(id))
            .collect();
        assert_eq!(ids, names);
    }
}
