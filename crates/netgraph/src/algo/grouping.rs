//! Grouping and clustering of nodes by numeric scores.
//!
//! The hard traffic-analysis queries ("calculate total byte weight on each
//! node, cluster them into 5 groups") need a deterministic 1-D clustering
//! primitive. Two are provided: equal-frequency (quantile) binning and 1-D
//! k-means with deterministic initialization.

use crate::error::{GraphError, Result};
use std::collections::BTreeMap;

/// Assigns each key to one of `k` groups by equal-frequency (quantile)
/// binning of its score. Group ids are `0..k`, ordered by ascending score.
/// Keys with equal scores may fall in different groups if a bin boundary
/// splits them, but the assignment is deterministic (ties broken by key).
pub fn quantile_groups(
    scores: &BTreeMap<String, f64>,
    k: usize,
) -> Result<BTreeMap<String, usize>> {
    if k == 0 {
        return Err(GraphError::InvalidArgument(
            "group count must be >= 1".into(),
        ));
    }
    let mut items: Vec<(&String, f64)> = scores.iter().map(|(n, s)| (n, *s)).collect();
    items.sort_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(b.0))
    });
    let n = items.len();
    let mut out = BTreeMap::new();
    for (i, (name, _)) in items.into_iter().enumerate() {
        let group = if n == 0 { 0 } else { (i * k) / n.max(1) };
        out.insert(name.clone(), group.min(k - 1));
    }
    Ok(out)
}

/// 1-D k-means clustering with deterministic initialization (centroids start
/// at evenly spaced quantiles of the sorted scores). Returns a map from key
/// to cluster id, where clusters are renumbered `0..k` by ascending centroid.
///
/// Converges in at most `max_iter` Lloyd iterations (default callers use
/// 100); with 1-D data and quantile seeding this is ample.
pub fn kmeans_1d_groups(
    scores: &BTreeMap<String, f64>,
    k: usize,
    max_iter: usize,
) -> Result<BTreeMap<String, usize>> {
    if k == 0 {
        return Err(GraphError::InvalidArgument(
            "group count must be >= 1".into(),
        ));
    }
    if scores.is_empty() {
        return Ok(BTreeMap::new());
    }
    let keys: Vec<&String> = scores.keys().collect();
    let values: Vec<f64> = keys.iter().map(|k| scores[*k]).collect();
    let k = k.min(values.len());

    // Deterministic init: evenly spaced order statistics.
    let mut sorted = values.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mut centroids: Vec<f64> = (0..k)
        .map(|i| sorted[(i * (sorted.len() - 1)) / k.max(1).saturating_sub(1).max(1)])
        .collect();
    if k == 1 {
        centroids = vec![sorted[sorted.len() / 2]];
    }

    let mut assignment = vec![0usize; values.len()];
    for _ in 0..max_iter {
        let mut changed = false;
        for (i, v) in values.iter().enumerate() {
            let best = centroids
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    (*v - **a)
                        .abs()
                        .partial_cmp(&(*v - **b).abs())
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(idx, _)| idx)
                .unwrap_or(0);
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        for (c, centroid) in centroids.iter_mut().enumerate() {
            let members: Vec<f64> = values
                .iter()
                .zip(&assignment)
                .filter(|(_, a)| **a == c)
                .map(|(v, _)| *v)
                .collect();
            if !members.is_empty() {
                *centroid = members.iter().sum::<f64>() / members.len() as f64;
            }
        }
        if !changed {
            break;
        }
    }

    // Renumber clusters by ascending centroid so group ids are stable.
    let mut order: Vec<usize> = (0..centroids.len()).collect();
    order.sort_by(|a, b| {
        centroids[*a]
            .partial_cmp(&centroids[*b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let rank: BTreeMap<usize, usize> = order.iter().enumerate().map(|(r, c)| (*c, r)).collect();

    Ok(keys
        .into_iter()
        .zip(assignment)
        .map(|(k, a)| (k.clone(), rank[&a]))
        .collect())
}

/// Groups keys by the string produced from each key by `key_fn`
/// (e.g. the /16 prefix of an IP address). Groups are returned in sorted
/// order of their group key.
pub fn group_by_key<F: Fn(&str) -> String>(
    keys: impl IntoIterator<Item = String>,
    key_fn: F,
) -> BTreeMap<String, Vec<String>> {
    let mut out: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for k in keys {
        out.entry(key_fn(&k)).or_default().push(k);
    }
    for v in out.values_mut() {
        v.sort();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scores(vals: &[(&str, f64)]) -> BTreeMap<String, f64> {
        vals.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn quantile_groups_balanced_sizes() {
        let s = scores(&[
            ("a", 1.0),
            ("b", 2.0),
            ("c", 3.0),
            ("d", 4.0),
            ("e", 5.0),
            ("f", 6.0),
        ]);
        let g = quantile_groups(&s, 3).unwrap();
        let mut counts = vec![0usize; 3];
        for v in g.values() {
            counts[*v] += 1;
        }
        assert_eq!(counts, vec![2, 2, 2]);
        assert_eq!(g["a"], 0);
        assert_eq!(g["f"], 2);
    }

    #[test]
    fn quantile_groups_rejects_zero_k() {
        assert!(quantile_groups(&scores(&[("a", 1.0)]), 0).is_err());
    }

    #[test]
    fn kmeans_separates_obvious_clusters() {
        let s = scores(&[
            ("a", 1.0),
            ("b", 1.1),
            ("c", 0.9),
            ("x", 100.0),
            ("y", 101.0),
            ("z", 99.5),
        ]);
        let g = kmeans_1d_groups(&s, 2, 100).unwrap();
        assert_eq!(g["a"], g["b"]);
        assert_eq!(g["b"], g["c"]);
        assert_eq!(g["x"], g["y"]);
        assert_ne!(g["a"], g["x"]);
        // Lower values get the lower group id.
        assert_eq!(g["a"], 0);
        assert_eq!(g["x"], 1);
    }

    #[test]
    fn kmeans_with_k_greater_than_items() {
        let s = scores(&[("a", 1.0), ("b", 5.0)]);
        let g = kmeans_1d_groups(&s, 5, 50).unwrap();
        assert_eq!(g.len(), 2);
        assert_ne!(g["a"], g["b"]);
    }

    #[test]
    fn kmeans_single_group() {
        let s = scores(&[("a", 1.0), ("b", 5.0), ("c", 9.0)]);
        let g = kmeans_1d_groups(&s, 1, 50).unwrap();
        assert!(g.values().all(|v| *v == 0));
    }

    #[test]
    fn kmeans_empty_input() {
        let g = kmeans_1d_groups(&BTreeMap::new(), 3, 10).unwrap();
        assert!(g.is_empty());
    }

    #[test]
    fn group_by_key_prefixes() {
        let groups = group_by_key(
            vec![
                "10.1.0.1".to_string(),
                "10.1.0.2".to_string(),
                "10.2.0.1".to_string(),
            ],
            |ip| ip.split('.').take(2).collect::<Vec<_>>().join("."),
        );
        assert_eq!(groups.len(), 2);
        assert_eq!(groups["10.1"].len(), 2);
        assert_eq!(groups["10.2"], vec!["10.2.0.1".to_string()]);
    }
}
