//! Connected-component algorithms.

use crate::error::{GraphError, Result};
use crate::graph::Graph;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Connected components of an undirected graph (or the weakly connected
/// components if the graph is directed), each returned as a sorted node set.
/// Components are ordered by their smallest member so output is
/// deterministic.
pub fn connected_components(g: &Graph) -> Vec<BTreeSet<String>> {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut components = Vec::new();
    for start in g.node_ids() {
        if seen.contains(start) {
            continue;
        }
        let mut comp = BTreeSet::new();
        let mut queue = VecDeque::new();
        queue.push_back(start.to_string());
        comp.insert(start.to_string());
        while let Some(u) = queue.pop_front() {
            for v in g.neighbors(&u).unwrap_or_default() {
                if comp.insert(v.clone()) {
                    queue.push_back(v);
                }
            }
        }
        seen.extend(comp.iter().cloned());
        components.push(comp);
    }
    components
}

/// Number of connected (or weakly connected) components.
pub fn number_connected_components(g: &Graph) -> usize {
    connected_components(g).len()
}

/// The component containing `node`.
pub fn node_component(g: &Graph, node: &str) -> Result<BTreeSet<String>> {
    if !g.has_node(node) {
        return Err(GraphError::NodeNotFound(node.to_string()));
    }
    Ok(connected_components(g)
        .into_iter()
        .find(|c| c.contains(node))
        .expect("every node belongs to a component"))
}

/// True when the graph has exactly one connected component and at least one
/// node.
pub fn is_connected(g: &Graph) -> bool {
    g.number_of_nodes() > 0 && number_connected_components(g) == 1
}

/// Strongly connected components of a directed graph, computed with an
/// iterative Tarjan algorithm. For undirected graphs this equals
/// [`connected_components`].
pub fn strongly_connected_components(g: &Graph) -> Vec<BTreeSet<String>> {
    if !g.is_directed() {
        return connected_components(g);
    }
    // Iterative Tarjan to avoid recursion limits on the 5k-node MALT model.
    let ids: Vec<String> = g.node_ids().map(|s| s.to_string()).collect();
    let index_of: BTreeMap<&str, usize> = ids
        .iter()
        .enumerate()
        .map(|(i, s)| (s.as_str(), i))
        .collect();
    let n = ids.len();
    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![usize::MAX; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut result: Vec<BTreeSet<String>> = Vec::new();

    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        // Each frame: (node, iterator position over successors).
        let mut call_stack: Vec<(usize, Vec<usize>, usize)> = Vec::new();
        let succ_ids = |v: usize| -> Vec<usize> {
            g.successors(&ids[v])
                .unwrap_or_default()
                .iter()
                .map(|s| index_of[s.as_str()])
                .collect()
        };
        index[start] = next_index;
        lowlink[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;
        call_stack.push((start, succ_ids(start), 0));

        while let Some((v, succs, mut pos)) = call_stack.pop() {
            let mut descended = false;
            while pos < succs.len() {
                let w = succs[pos];
                pos += 1;
                if index[w] == usize::MAX {
                    // Descend into w.
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call_stack.push((v, succs.clone(), pos));
                    call_stack.push((w, succ_ids(w), 0));
                    descended = true;
                    break;
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            }
            if descended {
                continue;
            }
            // v is finished.
            if lowlink[v] == index[v] {
                let mut comp = BTreeSet::new();
                while let Some(w) = stack.pop() {
                    on_stack[w] = false;
                    comp.insert(ids[w].clone());
                    if w == v {
                        break;
                    }
                }
                result.push(comp);
            }
            if let Some((parent, _, _)) = call_stack.last() {
                let p = *parent;
                lowlink[p] = lowlink[p].min(lowlink[v]);
            }
        }
    }
    result.sort_by(|a, b| a.iter().next().cmp(&b.iter().next()));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrMap;

    fn two_islands() -> Graph {
        let mut g = Graph::undirected();
        g.add_edge("a", "b", AttrMap::new());
        g.add_edge("b", "c", AttrMap::new());
        g.add_edge("x", "y", AttrMap::new());
        g.add_node("lonely", AttrMap::new());
        g
    }

    #[test]
    fn connected_components_partition_nodes() {
        let g = two_islands();
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 3);
        let sizes: Vec<usize> = comps.iter().map(|c| c.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), g.number_of_nodes());
        assert!(comps.iter().any(|c| c.contains("a") && c.contains("c")));
    }

    #[test]
    fn node_component_and_is_connected() {
        let g = two_islands();
        assert!(!is_connected(&g));
        let c = node_component(&g, "y").unwrap();
        assert_eq!(c.len(), 2);
        assert!(node_component(&g, "nope").is_err());
        let mut h = Graph::undirected();
        h.add_edge("1", "2", AttrMap::new());
        assert!(is_connected(&h));
    }

    #[test]
    fn weak_components_for_directed_graph() {
        let mut g = Graph::directed();
        g.add_edge("a", "b", AttrMap::new());
        g.add_edge("c", "b", AttrMap::new());
        assert_eq!(number_connected_components(&g), 1);
    }

    #[test]
    fn scc_finds_cycles() {
        let mut g = Graph::directed();
        // cycle a->b->c->a plus tail c->d
        g.add_edge("a", "b", AttrMap::new());
        g.add_edge("b", "c", AttrMap::new());
        g.add_edge("c", "a", AttrMap::new());
        g.add_edge("c", "d", AttrMap::new());
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 2);
        let big = sccs.iter().find(|c| c.len() == 3).unwrap();
        assert!(big.contains("a") && big.contains("b") && big.contains("c"));
    }

    #[test]
    fn scc_of_dag_is_singletons() {
        let mut g = Graph::directed();
        g.add_edge("a", "b", AttrMap::new());
        g.add_edge("b", "c", AttrMap::new());
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 3);
        assert!(sccs.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn empty_graph_has_no_components() {
        let g = Graph::undirected();
        assert_eq!(number_connected_components(&g), 0);
        assert!(!is_connected(&g));
    }
}
