//! Connected-component algorithms.
//!
//! Like the traversal kernels, these walk interned [`NodeId`] adjacency
//! slices with `Vec<bool>` visited sets and only convert to names at the
//! public boundary; component contents and ordering are byte-identical to
//! the historical string-set implementation.

use crate::error::{GraphError, Result};
use crate::graph::{Graph, NodeId};
use std::collections::{BTreeSet, VecDeque};

/// Id-level kernel: the component of `start` under undirected reachability,
/// marking everything it finds in `seen`.
fn flood_component(g: &Graph, start: NodeId, seen: &mut [bool]) -> Vec<NodeId> {
    let mut comp = Vec::new();
    let mut queue = VecDeque::new();
    seen[start.index()] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        comp.push(u);
        for v in g.neighbor_ids(u) {
            if !seen[v.index()] {
                seen[v.index()] = true;
                queue.push_back(v);
            }
        }
    }
    comp
}

fn names_of(g: &Graph, ids: &[NodeId]) -> BTreeSet<String> {
    ids.iter().map(|&id| g.node_name(id).to_string()).collect()
}

/// Connected components of an undirected graph (or the weakly connected
/// components if the graph is directed), each returned as a sorted node set.
/// Components are ordered by their smallest member so output is
/// deterministic.
pub fn connected_components(g: &Graph) -> Vec<BTreeSet<String>> {
    let mut seen = vec![false; g.id_bound()];
    let mut components = Vec::new();
    for &start in g.node_id_list() {
        if seen[start.index()] {
            continue;
        }
        let comp = flood_component(g, start, &mut seen);
        components.push(names_of(g, &comp));
    }
    components
}

/// Number of connected (or weakly connected) components.
pub fn number_connected_components(g: &Graph) -> usize {
    // Count without materializing name sets.
    let mut seen = vec![false; g.id_bound()];
    let mut count = 0;
    for &start in g.node_id_list() {
        if seen[start.index()] {
            continue;
        }
        flood_component(g, start, &mut seen);
        count += 1;
    }
    count
}

/// The component containing `node`.
pub fn node_component(g: &Graph, node: &str) -> Result<BTreeSet<String>> {
    let id = g
        .node_id(node)
        .ok_or_else(|| GraphError::NodeNotFound(node.to_string()))?;
    let mut seen = vec![false; g.id_bound()];
    let comp = flood_component(g, id, &mut seen);
    Ok(names_of(g, &comp))
}

/// True when the graph has exactly one connected component and at least one
/// node.
pub fn is_connected(g: &Graph) -> bool {
    g.number_of_nodes() > 0 && number_connected_components(g) == 1
}

/// Strongly connected components of a directed graph, computed with an
/// iterative Tarjan algorithm. For undirected graphs this equals
/// [`connected_components`].
pub fn strongly_connected_components(g: &Graph) -> Vec<BTreeSet<String>> {
    if !g.is_directed() {
        return connected_components(g);
    }
    // Iterative Tarjan to avoid recursion limits on the 5k-node MALT model.
    // Nodes are addressed by their dense position in the sorted id list;
    // `pos_of` maps an interned id back to that position.
    let ids: Vec<NodeId> = g.node_id_list().to_vec();
    let mut pos_of = vec![usize::MAX; g.id_bound()];
    for (pos, id) in ids.iter().enumerate() {
        pos_of[id.index()] = pos;
    }
    let n = ids.len();
    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![usize::MAX; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut result: Vec<BTreeSet<String>> = Vec::new();

    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        // Each frame: (node, its successor positions, iterator position).
        let mut call_stack: Vec<(usize, Vec<usize>, usize)> = Vec::new();
        let succ_positions = |v: usize| -> Vec<usize> {
            g.successor_ids(ids[v])
                .iter()
                .map(|s| pos_of[s.index()])
                .collect()
        };
        index[start] = next_index;
        lowlink[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;
        call_stack.push((start, succ_positions(start), 0));

        while let Some((v, succs, mut pos)) = call_stack.pop() {
            let mut descended = false;
            while pos < succs.len() {
                let w = succs[pos];
                pos += 1;
                if index[w] == usize::MAX {
                    // Descend into w.
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call_stack.push((v, succs.clone(), pos));
                    call_stack.push((w, succ_positions(w), 0));
                    descended = true;
                    break;
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            }
            if descended {
                continue;
            }
            // v is finished.
            if lowlink[v] == index[v] {
                let mut comp = BTreeSet::new();
                while let Some(w) = stack.pop() {
                    on_stack[w] = false;
                    comp.insert(g.node_name(ids[w]).to_string());
                    if w == v {
                        break;
                    }
                }
                result.push(comp);
            }
            if let Some((parent, _, _)) = call_stack.last() {
                let p = *parent;
                lowlink[p] = lowlink[p].min(lowlink[v]);
            }
        }
    }
    result.sort_by(|a, b| a.iter().next().cmp(&b.iter().next()));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrMap;

    fn two_islands() -> Graph {
        let mut g = Graph::undirected();
        g.add_edge("a", "b", AttrMap::new());
        g.add_edge("b", "c", AttrMap::new());
        g.add_edge("x", "y", AttrMap::new());
        g.add_node("lonely", AttrMap::new());
        g
    }

    #[test]
    fn connected_components_partition_nodes() {
        let g = two_islands();
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 3);
        let sizes: Vec<usize> = comps.iter().map(|c| c.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), g.number_of_nodes());
        assert!(comps.iter().any(|c| c.contains("a") && c.contains("c")));
    }

    #[test]
    fn node_component_and_is_connected() {
        let g = two_islands();
        assert!(!is_connected(&g));
        let c = node_component(&g, "y").unwrap();
        assert_eq!(c.len(), 2);
        assert!(node_component(&g, "nope").is_err());
        let mut h = Graph::undirected();
        h.add_edge("1", "2", AttrMap::new());
        assert!(is_connected(&h));
    }

    #[test]
    fn weak_components_for_directed_graph() {
        let mut g = Graph::directed();
        g.add_edge("a", "b", AttrMap::new());
        g.add_edge("c", "b", AttrMap::new());
        assert_eq!(number_connected_components(&g), 1);
    }

    #[test]
    fn scc_finds_cycles() {
        let mut g = Graph::directed();
        // cycle a->b->c->a plus tail c->d
        g.add_edge("a", "b", AttrMap::new());
        g.add_edge("b", "c", AttrMap::new());
        g.add_edge("c", "a", AttrMap::new());
        g.add_edge("c", "d", AttrMap::new());
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 2);
        let big = sccs.iter().find(|c| c.len() == 3).unwrap();
        assert!(big.contains("a") && big.contains("b") && big.contains("c"));
    }

    #[test]
    fn scc_of_dag_is_singletons() {
        let mut g = Graph::directed();
        g.add_edge("a", "b", AttrMap::new());
        g.add_edge("b", "c", AttrMap::new());
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 3);
        assert!(sccs.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn empty_graph_has_no_components() {
        let g = Graph::undirected();
        assert_eq!(number_connected_components(&g), 0);
        assert!(!is_connected(&g));
    }

    #[test]
    fn components_survive_node_removal() {
        // Removed ids leave holes in the id space; the Vec<bool> kernels
        // must size by id_bound, not node count.
        let mut g = two_islands();
        g.remove_node("b").unwrap();
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 4); // {a}, {c}, {lonely}, {x, y}
        assert!(comps.iter().any(|c| c.contains("x") && c.contains("y")));
        assert_eq!(node_component(&g, "a").unwrap().len(), 1);
    }
}
