//! Unweighted (BFS) and weighted (Dijkstra) shortest paths.
//!
//! These back the benchmark's diagnostic queries such as "What is the
//! required number of hops for data transmission between these two nodes?".
//!
//! The kernels walk interned [`NodeId`] adjacency slices with dense
//! `Vec`-indexed distance/predecessor tables; the public string API
//! converts at the boundary only. Adjacency slices are sorted by neighbor
//! name — exactly the order `Graph::successors` yields — and Dijkstra
//! breaks cost ties by the node's position in the name-sorted id list, so
//! every path and every length is byte-identical to the historical
//! string-keyed implementation.

use crate::error::{GraphError, Result};
use crate::graph::{Graph, NodeId};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

/// Id-level BFS shortest-path kernel: the hop-minimal path from `source`
/// to `target` (inclusive), or `None` when unreachable. Among equal-length
/// paths the lexicographically-first by neighbor name is returned (the
/// order adjacency slices are sorted in).
pub fn shortest_path_ids(g: &Graph, source: NodeId, target: NodeId) -> Option<Vec<NodeId>> {
    if source == target {
        return Some(vec![source]);
    }
    let mut prev: Vec<Option<NodeId>> = vec![None; g.id_bound()];
    let mut queue = VecDeque::new();
    prev[source.index()] = Some(source);
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &v in g.successor_ids(u) {
            if prev[v.index()].is_none() {
                prev[v.index()] = Some(u);
                if v == target {
                    return Some(rebuild_path_ids(&prev, source, target));
                }
                queue.push_back(v);
            }
        }
    }
    None
}

/// Shortest path by hop count from `source` to `target`, as the list of
/// nodes on the path (inclusive of both endpoints).
pub fn shortest_path(g: &Graph, source: &str, target: &str) -> Result<Vec<String>> {
    let (src, tgt) = check_endpoints(g, source, target)?;
    match shortest_path_ids(g, src, tgt) {
        Some(path) => Ok(path
            .into_iter()
            .map(|id| g.node_name(id).to_string())
            .collect()),
        None => Err(GraphError::Algorithm(format!(
            "no path between '{source}' and '{target}'"
        ))),
    }
}

/// Number of hops (edges) on the shortest path from `source` to `target`.
pub fn shortest_path_length(g: &Graph, source: &str, target: &str) -> Result<usize> {
    Ok(shortest_path(g, source, target)?.len() - 1)
}

/// Id-level single-source kernel: hop distance from `source` to every id,
/// as a dense table indexed by [`NodeId::index`] (`None` = unreachable).
pub fn single_source_lengths_ids(g: &Graph, source: NodeId) -> Vec<Option<usize>> {
    let mut dist: Vec<Option<usize>> = vec![None; g.id_bound()];
    let mut queue = VecDeque::new();
    dist[source.index()] = Some(0);
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].expect("queued nodes have distances");
        for &v in g.successor_ids(u) {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Hop distance from `source` to every reachable node (NetworkX
/// `single_source_shortest_path_length`).
pub fn single_source_lengths(g: &Graph, source: &str) -> Result<BTreeMap<String, usize>> {
    let src = g
        .node_id(source)
        .ok_or_else(|| GraphError::NodeNotFound(source.to_string()))?;
    let dist = single_source_lengths_ids(g, src);
    Ok(g.node_id_list()
        .iter()
        .filter_map(|&id| dist[id.index()].map(|d| (g.node_name(id).to_string(), d)))
        .collect())
}

/// Weighted shortest path using Dijkstra's algorithm. `weight_attr` names
/// the numeric edge attribute used as the edge cost; missing attributes
/// default to 1.0. Negative weights are rejected.
pub fn dijkstra_path(
    g: &Graph,
    source: &str,
    target: &str,
    weight_attr: &str,
) -> Result<(Vec<String>, f64)> {
    let (src, tgt) = check_endpoints(g, source, target)?;

    // Cost ties are broken by position in the name-sorted id list, which
    // is the same ordering the historical string-keyed heap used.
    let mut rank: Vec<usize> = vec![usize::MAX; g.id_bound()];
    for (i, &id) in g.node_id_list().iter().enumerate() {
        rank[id.index()] = i;
    }

    #[derive(PartialEq)]
    struct Entry {
        cost: f64,
        rank: usize,
        node: NodeId,
    }
    impl Eq for Entry {}
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            // Reverse so the BinaryHeap acts as a min-heap; ties broken by
            // name rank to stay deterministic.
            other
                .cost
                .partial_cmp(&self.cost)
                .unwrap_or(Ordering::Equal)
                .then_with(|| other.rank.cmp(&self.rank))
        }
    }
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut dist: Vec<f64> = vec![f64::INFINITY; g.id_bound()];
    let mut prev: Vec<Option<NodeId>> = vec![None; g.id_bound()];
    let mut heap = BinaryHeap::new();
    dist[src.index()] = 0.0;
    heap.push(Entry {
        cost: 0.0,
        rank: rank[src.index()],
        node: src,
    });
    while let Some(Entry { cost, node, .. }) = heap.pop() {
        if cost > dist[node.index()] {
            continue;
        }
        if node == tgt {
            let mut path_prev = prev;
            path_prev[src.index()] = Some(src);
            let path = rebuild_path_ids(&path_prev, src, tgt);
            let names = path
                .into_iter()
                .map(|id| g.node_name(id).to_string())
                .collect();
            return Ok((names, cost));
        }
        for &v in g.successor_ids(node) {
            let w = g
                .edge_attrs_by_id(node, v)
                .and_then(|attrs| attrs.get(weight_attr))
                .and_then(|a| a.as_f64())
                .unwrap_or(1.0);
            if w < 0.0 {
                return Err(GraphError::InvalidArgument(format!(
                    "negative weight on edge ('{}', '{}')",
                    g.node_name(node),
                    g.node_name(v)
                )));
            }
            let next = cost + w;
            if next < dist[v.index()] {
                dist[v.index()] = next;
                prev[v.index()] = Some(node);
                heap.push(Entry {
                    cost: next,
                    rank: rank[v.index()],
                    node: v,
                });
            }
        }
    }
    Err(GraphError::Algorithm(format!(
        "no path between '{source}' and '{target}'"
    )))
}

/// Weighted shortest-path cost only.
pub fn dijkstra_length(g: &Graph, source: &str, target: &str, weight_attr: &str) -> Result<f64> {
    Ok(dijkstra_path(g, source, target, weight_attr)?.1)
}

/// Eccentricity-free diameter approximation: the maximum over all ordered
/// pairs of the hop distance, ignoring unreachable pairs. Returns 0 for
/// graphs with fewer than two nodes.
pub fn hop_diameter(g: &Graph) -> Result<usize> {
    let mut best = 0;
    for &source in g.node_id_list() {
        for d in single_source_lengths_ids(g, source).into_iter().flatten() {
            best = best.max(d);
        }
    }
    Ok(best)
}

fn check_endpoints(g: &Graph, source: &str, target: &str) -> Result<(NodeId, NodeId)> {
    let src = g
        .node_id(source)
        .ok_or_else(|| GraphError::NodeNotFound(source.to_string()))?;
    let tgt = g
        .node_id(target)
        .ok_or_else(|| GraphError::NodeNotFound(target.to_string()))?;
    Ok((src, tgt))
}

/// Walks the predecessor table back from `target` to `source`. `prev` must
/// map `source` to itself (the BFS/Dijkstra loop guarantees every entry on
/// the path is set).
fn rebuild_path_ids(prev: &[Option<NodeId>], source: NodeId, target: NodeId) -> Vec<NodeId> {
    let mut path = vec![target];
    let mut cur = target;
    while cur != source {
        match prev[cur.index()] {
            Some(p) => {
                cur = p;
                path.push(cur);
            }
            None => break,
        }
    }
    path.reverse();
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::{attrs, AttrMap};

    fn weighted() -> Graph {
        // a -1- b -1- d ; a -5- d ; c isolated
        let mut g = Graph::undirected();
        g.add_edge("a", "b", attrs([("w", 1i64)]));
        g.add_edge("b", "d", attrs([("w", 1i64)]));
        g.add_edge("a", "d", attrs([("w", 5i64)]));
        g.add_node("c", AttrMap::new());
        g
    }

    #[test]
    fn bfs_shortest_path_and_length() {
        let g = weighted();
        assert_eq!(shortest_path(&g, "a", "d").unwrap(), vec!["a", "d"]);
        assert_eq!(shortest_path_length(&g, "a", "d").unwrap(), 1);
        assert_eq!(shortest_path(&g, "a", "a").unwrap(), vec!["a"]);
    }

    #[test]
    fn bfs_no_path_is_an_error() {
        let g = weighted();
        assert!(matches!(
            shortest_path(&g, "a", "c"),
            Err(GraphError::Algorithm(_))
        ));
        assert!(matches!(
            shortest_path(&g, "a", "zzz"),
            Err(GraphError::NodeNotFound(_))
        ));
    }

    #[test]
    fn dijkstra_prefers_cheaper_multi_hop_route() {
        let g = weighted();
        let (path, cost) = dijkstra_path(&g, "a", "d", "w").unwrap();
        assert_eq!(path, vec!["a", "b", "d"]);
        assert_eq!(cost, 2.0);
    }

    #[test]
    fn dijkstra_defaults_missing_weight_to_one() {
        let mut g = Graph::directed();
        g.add_edge("a", "b", AttrMap::new());
        g.add_edge("b", "c", AttrMap::new());
        assert_eq!(dijkstra_length(&g, "a", "c", "w").unwrap(), 2.0);
    }

    #[test]
    fn dijkstra_rejects_negative_weights() {
        let mut g = Graph::directed();
        g.add_edge("a", "b", attrs([("w", -3i64)]));
        assert!(matches!(
            dijkstra_path(&g, "a", "b", "w"),
            Err(GraphError::InvalidArgument(_))
        ));
    }

    #[test]
    fn dijkstra_source_equals_target() {
        let g = weighted();
        let (path, cost) = dijkstra_path(&g, "b", "b", "w").unwrap();
        assert_eq!(path, vec!["b"]);
        assert_eq!(cost, 0.0);
    }

    #[test]
    fn single_source_lengths_cover_reachable_set() {
        let g = weighted();
        let d = single_source_lengths(&g, "a").unwrap();
        assert_eq!(d["a"], 0);
        assert_eq!(d["b"], 1);
        assert_eq!(d["d"], 1);
        assert!(!d.contains_key("c"));
    }

    #[test]
    fn hop_diameter_of_path_graph() {
        let mut g = Graph::undirected();
        g.add_edge("1", "2", AttrMap::new());
        g.add_edge("2", "3", AttrMap::new());
        g.add_edge("3", "4", AttrMap::new());
        assert_eq!(hop_diameter(&g).unwrap(), 3);
    }

    #[test]
    fn id_kernels_match_string_api_after_removals() {
        let mut g = weighted();
        g.remove_node("b").unwrap();
        g.add_edge("c", "d", attrs([("w", 1i64)]));
        let names = shortest_path(&g, "a", "c").unwrap();
        assert_eq!(names, vec!["a", "d", "c"]);
        let ids: Vec<&str> =
            shortest_path_ids(&g, g.node_id("a").unwrap(), g.node_id("c").unwrap())
                .unwrap()
                .into_iter()
                .map(|id| g.node_name(id))
                .collect();
        assert_eq!(ids, names);
    }
}
