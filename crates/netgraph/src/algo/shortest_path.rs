//! Unweighted (BFS) and weighted (Dijkstra) shortest paths.
//!
//! These back the benchmark's diagnostic queries such as "What is the
//! required number of hops for data transmission between these two nodes?".

use crate::error::{GraphError, Result};
use crate::graph::Graph;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

/// Shortest path by hop count from `source` to `target`, as the list of
/// nodes on the path (inclusive of both endpoints).
pub fn shortest_path(g: &Graph, source: &str, target: &str) -> Result<Vec<String>> {
    check_endpoints(g, source, target)?;
    if source == target {
        return Ok(vec![source.to_string()]);
    }
    let mut prev: BTreeMap<String, String> = BTreeMap::new();
    let mut queue = VecDeque::new();
    queue.push_back(source.to_string());
    prev.insert(source.to_string(), source.to_string());
    while let Some(u) = queue.pop_front() {
        for v in g.successors(&u)? {
            if !prev.contains_key(&v) {
                prev.insert(v.clone(), u.clone());
                if v == target {
                    return Ok(rebuild_path(&prev, source, target));
                }
                queue.push_back(v);
            }
        }
    }
    Err(GraphError::Algorithm(format!(
        "no path between '{source}' and '{target}'"
    )))
}

/// Number of hops (edges) on the shortest path from `source` to `target`.
pub fn shortest_path_length(g: &Graph, source: &str, target: &str) -> Result<usize> {
    Ok(shortest_path(g, source, target)?.len() - 1)
}

/// Hop distance from `source` to every reachable node (NetworkX
/// `single_source_shortest_path_length`).
pub fn single_source_lengths(g: &Graph, source: &str) -> Result<BTreeMap<String, usize>> {
    if !g.has_node(source) {
        return Err(GraphError::NodeNotFound(source.to_string()));
    }
    let mut dist: BTreeMap<String, usize> = BTreeMap::new();
    let mut queue = VecDeque::new();
    dist.insert(source.to_string(), 0);
    queue.push_back(source.to_string());
    while let Some(u) = queue.pop_front() {
        let du = dist[&u];
        for v in g.successors(&u)? {
            if !dist.contains_key(&v) {
                dist.insert(v.clone(), du + 1);
                queue.push_back(v);
            }
        }
    }
    Ok(dist)
}

/// Weighted shortest path using Dijkstra's algorithm. `weight_attr` names
/// the numeric edge attribute used as the edge cost; missing attributes
/// default to 1.0. Negative weights are rejected.
pub fn dijkstra_path(
    g: &Graph,
    source: &str,
    target: &str,
    weight_attr: &str,
) -> Result<(Vec<String>, f64)> {
    check_endpoints(g, source, target)?;

    #[derive(PartialEq)]
    struct Entry {
        cost: f64,
        node: String,
    }
    impl Eq for Entry {}
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            // Reverse so the BinaryHeap acts as a min-heap; ties broken by id
            // to stay deterministic.
            other
                .cost
                .partial_cmp(&self.cost)
                .unwrap_or(Ordering::Equal)
                .then_with(|| other.node.cmp(&self.node))
        }
    }
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut dist: BTreeMap<String, f64> = BTreeMap::new();
    let mut prev: BTreeMap<String, String> = BTreeMap::new();
    let mut heap = BinaryHeap::new();
    dist.insert(source.to_string(), 0.0);
    heap.push(Entry {
        cost: 0.0,
        node: source.to_string(),
    });
    while let Some(Entry { cost, node }) = heap.pop() {
        if cost > *dist.get(&node).unwrap_or(&f64::INFINITY) {
            continue;
        }
        if node == target {
            let mut path = rebuild_path(&prev, source, target);
            if path.is_empty() {
                path = vec![source.to_string()];
            }
            return Ok((path, cost));
        }
        for v in g.successors(&node)? {
            let w = g
                .get_edge_attr_opt(&node, &v, weight_attr)
                .and_then(|a| a.as_f64())
                .unwrap_or(1.0);
            if w < 0.0 {
                return Err(GraphError::InvalidArgument(format!(
                    "negative weight on edge ('{node}', '{v}')"
                )));
            }
            let next = cost + w;
            if next < *dist.get(&v).unwrap_or(&f64::INFINITY) {
                dist.insert(v.clone(), next);
                prev.insert(v.clone(), node.clone());
                heap.push(Entry {
                    cost: next,
                    node: v,
                });
            }
        }
    }
    Err(GraphError::Algorithm(format!(
        "no path between '{source}' and '{target}'"
    )))
}

/// Weighted shortest-path cost only.
pub fn dijkstra_length(g: &Graph, source: &str, target: &str, weight_attr: &str) -> Result<f64> {
    Ok(dijkstra_path(g, source, target, weight_attr)?.1)
}

/// Eccentricity-free diameter approximation: the maximum over all ordered
/// pairs of the hop distance, ignoring unreachable pairs. Returns 0 for
/// graphs with fewer than two nodes.
pub fn hop_diameter(g: &Graph) -> Result<usize> {
    let mut best = 0;
    for source in g.node_ids() {
        let lengths = single_source_lengths(g, source)?;
        if let Some(m) = lengths.values().max() {
            best = best.max(*m);
        }
    }
    Ok(best)
}

fn check_endpoints(g: &Graph, source: &str, target: &str) -> Result<()> {
    if !g.has_node(source) {
        return Err(GraphError::NodeNotFound(source.to_string()));
    }
    if !g.has_node(target) {
        return Err(GraphError::NodeNotFound(target.to_string()));
    }
    Ok(())
}

fn rebuild_path(prev: &BTreeMap<String, String>, source: &str, target: &str) -> Vec<String> {
    let mut path = vec![target.to_string()];
    let mut cur = target.to_string();
    while cur != source {
        match prev.get(&cur) {
            Some(p) => {
                cur = p.clone();
                path.push(cur.clone());
            }
            None => break,
        }
    }
    path.reverse();
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::{attrs, AttrMap};

    fn weighted() -> Graph {
        // a -1- b -1- d ; a -5- d ; c isolated
        let mut g = Graph::undirected();
        g.add_edge("a", "b", attrs([("w", 1i64)]));
        g.add_edge("b", "d", attrs([("w", 1i64)]));
        g.add_edge("a", "d", attrs([("w", 5i64)]));
        g.add_node("c", AttrMap::new());
        g
    }

    #[test]
    fn bfs_shortest_path_and_length() {
        let g = weighted();
        assert_eq!(shortest_path(&g, "a", "d").unwrap(), vec!["a", "d"]);
        assert_eq!(shortest_path_length(&g, "a", "d").unwrap(), 1);
        assert_eq!(shortest_path(&g, "a", "a").unwrap(), vec!["a"]);
    }

    #[test]
    fn bfs_no_path_is_an_error() {
        let g = weighted();
        assert!(matches!(
            shortest_path(&g, "a", "c"),
            Err(GraphError::Algorithm(_))
        ));
        assert!(matches!(
            shortest_path(&g, "a", "zzz"),
            Err(GraphError::NodeNotFound(_))
        ));
    }

    #[test]
    fn dijkstra_prefers_cheaper_multi_hop_route() {
        let g = weighted();
        let (path, cost) = dijkstra_path(&g, "a", "d", "w").unwrap();
        assert_eq!(path, vec!["a", "b", "d"]);
        assert_eq!(cost, 2.0);
    }

    #[test]
    fn dijkstra_defaults_missing_weight_to_one() {
        let mut g = Graph::directed();
        g.add_edge("a", "b", AttrMap::new());
        g.add_edge("b", "c", AttrMap::new());
        assert_eq!(dijkstra_length(&g, "a", "c", "w").unwrap(), 2.0);
    }

    #[test]
    fn dijkstra_rejects_negative_weights() {
        let mut g = Graph::directed();
        g.add_edge("a", "b", attrs([("w", -3i64)]));
        assert!(matches!(
            dijkstra_path(&g, "a", "b", "w"),
            Err(GraphError::InvalidArgument(_))
        ));
    }

    #[test]
    fn single_source_lengths_cover_reachable_set() {
        let g = weighted();
        let d = single_source_lengths(&g, "a").unwrap();
        assert_eq!(d["a"], 0);
        assert_eq!(d["b"], 1);
        assert_eq!(d["d"], 1);
        assert!(!d.contains_key("c"));
    }

    #[test]
    fn hop_diameter_of_path_graph() {
        let mut g = Graph::undirected();
        g.add_edge("1", "2", AttrMap::new());
        g.add_edge("2", "3", AttrMap::new());
        g.add_edge("3", "4", AttrMap::new());
        assert_eq!(hop_diameter(&g).unwrap(), 3);
    }
}
