//! Minimal JSON support: a value type, serializer, parser, and a node-link
//! graph encoding.
//!
//! The strawman baseline from the paper pastes the entire communication
//! graph, encoded as JSON, into the LLM prompt. Token counting for the cost
//! analysis (Figure 4) therefore depends on exactly how the graph serializes,
//! so the encoder lives here rather than behind an external dependency.

use crate::attr::AttrMap;
use crate::graph::Graph;
use crate::value::AttrValue;
use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64; integers round-trip exactly up to 2^53).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with deterministically ordered keys.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Serializes to a compact JSON string.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => {
                if n.fract() == 0.0 && n.is_finite() && n.abs() < 1e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            JsonValue::String(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    JsonValue::String(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            chars: input.chars().collect(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.parse_value()?;
        p.skip_ws();
        if p.pos != p.chars.len() {
            return Err(JsonError::new(
                p.pos,
                "trailing characters after JSON value",
            ));
        }
        Ok(v)
    }

    /// Converts an [`AttrValue`] into JSON.
    pub fn from_attr(value: &AttrValue) -> JsonValue {
        match value {
            AttrValue::Null => JsonValue::Null,
            AttrValue::Bool(b) => JsonValue::Bool(*b),
            AttrValue::Int(i) => JsonValue::Number(*i as f64),
            AttrValue::Float(f) => JsonValue::Number(*f),
            AttrValue::Str(s) => JsonValue::String(s.to_string()),
            AttrValue::List(items) => {
                JsonValue::Array(items.iter().map(JsonValue::from_attr).collect())
            }
        }
    }

    /// Converts JSON into an [`AttrValue`]; objects become lists of
    /// `[key, value]` pairs since attribute values have no map variant.
    pub fn to_attr(&self) -> AttrValue {
        match self {
            JsonValue::Null => AttrValue::Null,
            JsonValue::Bool(b) => AttrValue::Bool(*b),
            JsonValue::Number(n) => {
                if n.fract() == 0.0 && n.is_finite() && n.abs() < 9e15 {
                    AttrValue::Int(*n as i64)
                } else {
                    AttrValue::Float(*n)
                }
            }
            JsonValue::String(s) => AttrValue::Str(s.as_str().into()),
            JsonValue::Array(items) => {
                AttrValue::List(items.iter().map(JsonValue::to_attr).collect())
            }
            JsonValue::Object(map) => AttrValue::List(
                map.iter()
                    .map(|(k, v)| {
                        AttrValue::List(vec![AttrValue::Str(k.as_str().into()), v.to_attr()])
                    })
                    .collect(),
            ),
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_json())
    }
}

/// Error raised when parsing malformed JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Character offset where the error was detected.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl JsonError {
    fn new(position: usize, message: &str) -> Self {
        JsonError {
            position,
            message: message.to_string(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON error at offset {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for JsonError {}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), JsonError> {
        if self.bump() == Some(c) {
            Ok(())
        } else {
            Err(JsonError::new(self.pos, &format!("expected '{c}'")))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.parse_object(),
            Some('[') => self.parse_array(),
            Some('"') => Ok(JsonValue::String(self.parse_string()?)),
            Some('t') => self.parse_keyword("true", JsonValue::Bool(true)),
            Some('f') => self.parse_keyword("false", JsonValue::Bool(false)),
            Some('n') => self.parse_keyword("null", JsonValue::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(JsonError::new(self.pos, "unexpected character")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        for expected in kw.chars() {
            if self.bump() != Some(expected) {
                return Err(JsonError::new(
                    self.pos,
                    &format!("invalid literal, expected '{kw}'"),
                ));
            }
        }
        Ok(value)
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some('.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some('e' | 'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some('+' | '-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| JsonError::new(start, "invalid number"))
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect('"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(s),
                Some('\\') => match self.bump() {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('/') => s.push('/'),
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('r') => s.push('\r'),
                    Some('b') => s.push('\u{8}'),
                    Some('f') => s.push('\u{c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let c = self
                                .bump()
                                .and_then(|c| c.to_digit(16))
                                .ok_or_else(|| JsonError::new(self.pos, "invalid \\u escape"))?;
                            code = code * 16 + c;
                        }
                        s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(JsonError::new(self.pos, "invalid escape sequence")),
                },
                Some(c) => s.push(c),
                None => return Err(JsonError::new(self.pos, "unterminated string")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(']') => return Ok(JsonValue::Array(items)),
                _ => return Err(JsonError::new(self.pos, "expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect('{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => return Ok(JsonValue::Object(map)),
                _ => return Err(JsonError::new(self.pos, "expected ',' or '}'")),
            }
        }
    }
}

fn attrs_to_object(attrs: &AttrMap) -> JsonValue {
    JsonValue::Object(
        attrs
            .iter()
            .map(|(k, v)| (k.clone(), JsonValue::from_attr(v)))
            .collect(),
    )
}

/// Encodes a graph in node-link form:
/// `{"directed": bool, "nodes": [{"id": ..., ...attrs}], "links": [{"source": ..., "target": ..., ...attrs}]}`.
///
/// This is the JSON shape fed to the strawman prompt and counted by the cost
/// model.
pub fn graph_to_json(g: &Graph) -> JsonValue {
    let nodes: Vec<JsonValue> = g
        .nodes()
        .map(|(id, attrs)| {
            let mut obj = match attrs_to_object(attrs) {
                JsonValue::Object(m) => m,
                _ => unreachable!(),
            };
            obj.insert("id".to_string(), JsonValue::String(id.to_string()));
            JsonValue::Object(obj)
        })
        .collect();
    let links: Vec<JsonValue> = g
        .edges()
        .map(|(u, v, attrs)| {
            let mut obj = match attrs_to_object(attrs) {
                JsonValue::Object(m) => m,
                _ => unreachable!(),
            };
            obj.insert("source".to_string(), JsonValue::String(u.to_string()));
            obj.insert("target".to_string(), JsonValue::String(v.to_string()));
            JsonValue::Object(obj)
        })
        .collect();
    let mut top = BTreeMap::new();
    top.insert("directed".to_string(), JsonValue::Bool(g.is_directed()));
    top.insert("nodes".to_string(), JsonValue::Array(nodes));
    top.insert("links".to_string(), JsonValue::Array(links));
    JsonValue::Object(top)
}

/// Decodes a node-link JSON document produced by [`graph_to_json`].
pub fn graph_from_json(value: &JsonValue) -> Result<Graph, JsonError> {
    let obj = match value {
        JsonValue::Object(m) => m,
        _ => return Err(JsonError::new(0, "expected top-level object")),
    };
    let directed = matches!(obj.get("directed"), Some(JsonValue::Bool(true)));
    let mut g = if directed {
        Graph::directed()
    } else {
        Graph::undirected()
    };
    if let Some(JsonValue::Array(nodes)) = obj.get("nodes") {
        for n in nodes {
            if let JsonValue::Object(m) = n {
                let id = match m.get("id") {
                    Some(JsonValue::String(s)) => s.clone(),
                    Some(other) => other.to_json(),
                    None => return Err(JsonError::new(0, "node missing 'id'")),
                };
                let attrs: AttrMap = m
                    .iter()
                    .filter(|(k, _)| k.as_str() != "id")
                    .map(|(k, v)| (k.clone(), v.to_attr()))
                    .collect();
                g.add_node(&id, attrs);
            }
        }
    }
    if let Some(JsonValue::Array(links)) = obj.get("links") {
        for l in links {
            if let JsonValue::Object(m) = l {
                let get = |key: &str| -> Result<String, JsonError> {
                    match m.get(key) {
                        Some(JsonValue::String(s)) => Ok(s.clone()),
                        Some(other) => Ok(other.to_json()),
                        None => Err(JsonError::new(0, &format!("link missing '{key}'"))),
                    }
                };
                let source = get("source")?;
                let target = get("target")?;
                let attrs: AttrMap = m
                    .iter()
                    .filter(|(k, _)| k.as_str() != "source" && k.as_str() != "target")
                    .map(|(k, v)| (k.clone(), v.to_attr()))
                    .collect();
                g.add_edge(&source, &target, attrs);
            }
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::attrs;
    use crate::graph::graphs_approx_eq;

    #[test]
    fn serialize_basic_values() {
        assert_eq!(JsonValue::Null.to_json(), "null");
        assert_eq!(JsonValue::Bool(true).to_json(), "true");
        assert_eq!(JsonValue::Number(42.0).to_json(), "42");
        assert_eq!(JsonValue::Number(4.25).to_json(), "4.25");
        assert_eq!(JsonValue::String("a\"b".into()).to_json(), "\"a\\\"b\"");
    }

    #[test]
    fn parse_round_trip() {
        let text = r#"{"a": [1, 2.5, "x"], "b": {"nested": true}, "c": null}"#;
        let v = JsonValue::parse(text).unwrap();
        let reparsed = JsonValue::parse(&v.to_json()).unwrap();
        assert_eq!(v, reparsed);
    }

    #[test]
    fn parse_errors_have_positions() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1, 2,]").is_err());
        assert!(JsonValue::parse("tru").is_err());
        assert!(JsonValue::parse("1 2").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
    }

    #[test]
    fn parse_string_escapes() {
        let v = JsonValue::parse(r#""line\nbreak A""#).unwrap();
        assert_eq!(v, JsonValue::String("line\nbreak A".into()));
    }

    #[test]
    fn attr_conversion_round_trip() {
        let attr = AttrValue::List(vec![
            AttrValue::Int(3),
            AttrValue::from("x"),
            AttrValue::Null,
        ]);
        let json = JsonValue::from_attr(&attr);
        assert_eq!(json.to_attr(), attr);
    }

    #[test]
    fn graph_json_round_trip() {
        let mut g = Graph::directed();
        g.add_node("10.0.1.1", attrs([("role", "host")]));
        g.add_edge(
            "10.0.1.1",
            "10.0.2.1",
            attrs([("bytes", 1200i64), ("packets", 8i64)]),
        );
        let json = graph_to_json(&g);
        let text = json.to_json();
        let parsed = JsonValue::parse(&text).unwrap();
        let back = graph_from_json(&parsed).unwrap();
        assert!(graphs_approx_eq(&g, &back));
    }

    #[test]
    fn graph_json_contains_node_link_keys() {
        let mut g = Graph::undirected();
        g.add_edge("a", "b", AttrMap::new());
        let text = graph_to_json(&g).to_json();
        assert!(text.contains("\"nodes\""));
        assert!(text.contains("\"links\""));
        assert!(text.contains("\"source\":\"a\""));
    }

    #[test]
    fn graph_from_json_rejects_non_object() {
        assert!(graph_from_json(&JsonValue::Array(vec![])).is_err());
    }
}
