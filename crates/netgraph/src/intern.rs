//! String interning: stable integer symbols for node names and other
//! high-repetition identifiers.
//!
//! The data plane handles the same strings over and over — every flow names
//! two endpoints, every MALT link names two entities — and string-keyed maps
//! make each touch an O(log n) chain of full string comparisons. An
//! [`Interner`] assigns each distinct string a dense [`Symbol`] (`u32`) on
//! first sight and answers both directions afterwards in O(1):
//! `name -> Symbol` by hash lookup, `Symbol -> name` by index.
//!
//! Interned names are stored as `Arc<str>`, so handing out owned copies
//! ([`Interner::shared`]) is a reference-count bump rather than a heap
//! allocation — the same trick [`crate::AttrValue::Str`] uses for attribute
//! values.
//!
//! ```
//! use netgraph::intern::Interner;
//! let mut interner = Interner::new();
//! let a = interner.intern("10.0.1.1");
//! let b = interner.intern("10.0.2.2");
//! assert_eq!(interner.intern("10.0.1.1"), a);
//! assert_ne!(a, b);
//! assert_eq!(interner.resolve(a), "10.0.1.1");
//! ```

use std::collections::HashMap;
use std::sync::Arc;

/// A dense handle for an interned string (index into its [`Interner`]).
///
/// Symbols are only meaningful together with the interner that produced
/// them; two interners assign symbols independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The symbol's index value.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A string interner: dense symbols out, `O(1)` in both directions.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    names: Vec<Arc<str>>,
    lookup: HashMap<Arc<str>, u32>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Interns `name`, returning its (new or existing) symbol.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&id) = self.lookup.get(name) {
            return Symbol(id);
        }
        let id = u32::try_from(self.names.len()).expect("interner capacity exceeded");
        let shared: Arc<str> = Arc::from(name);
        self.names.push(Arc::clone(&shared));
        self.lookup.insert(shared, id);
        Symbol(id)
    }

    /// The symbol of an already-interned string, if any.
    #[inline]
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.lookup.get(name).map(|&id| Symbol(id))
    }

    /// The string a symbol stands for. Panics on symbols from a different
    /// interner whose index is out of range.
    #[inline]
    pub fn resolve(&self, symbol: Symbol) -> &str {
        &self.names[symbol.index()]
    }

    /// An owned, allocation-shared copy of the interned string: a refcount
    /// bump, not a new heap string.
    #[inline]
    pub fn shared(&self, symbol: Symbol) -> Arc<str> {
        Arc::clone(&self.names[symbol.index()])
    }

    /// Interns `name` and returns the shared allocation directly —
    /// the dedupe-and-share entry point used when loading workloads.
    pub fn intern_shared(&mut self, name: &str) -> Arc<str> {
        let symbol = self.intern(name);
        self.shared(symbol)
    }

    /// Iterator over `(symbol, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, name)| (Symbol(i as u32), &**name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut i = Interner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        assert_eq!(a, Symbol(0));
        assert_eq!(b, Symbol(1));
        assert_eq!(i.intern("a"), a);
        assert_eq!(i.len(), 2);
        assert_eq!(i.resolve(b), "b");
        assert_eq!(i.get("b"), Some(b));
        assert_eq!(i.get("zzz"), None);
    }

    #[test]
    fn shared_returns_the_same_allocation() {
        let mut i = Interner::new();
        let s = i.intern("10.0.0.1");
        let x = i.shared(s);
        let y = i.intern_shared("10.0.0.1");
        assert!(Arc::ptr_eq(&x, &y));
    }

    #[test]
    fn iter_walks_in_interning_order() {
        let mut i = Interner::new();
        i.intern("z");
        i.intern("a");
        let names: Vec<&str> = i.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["z", "a"]);
    }

    #[test]
    fn empty_interner() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }
}
