//! The property-graph data structure.
//!
//! [`Graph`] is the NetworkX-equivalent substrate used by the execution
//! sandbox: a simple (non-multi) graph, directed or undirected, with
//! arbitrary [`AttrMap`] metadata on the graph, every node and every edge.
//! Node identifiers are strings (IP addresses for communication graphs,
//! MALT entity names for topologies).

use crate::attr::{AttrMap, AttrMapExt};
use crate::error::{GraphError, Result};
use crate::value::AttrValue;
use std::collections::{BTreeMap, BTreeSet};

/// A directed or undirected property graph with string node identifiers.
///
/// The representation is an adjacency map (`node -> neighbor set`) plus an
/// edge-attribute map keyed by the canonical endpoint pair, so neighbor
/// queries are `O(log n)` and edge-attribute lookups do not duplicate data
/// for undirected graphs.
///
/// ```
/// use netgraph::Graph;
/// let mut g = Graph::directed();
/// g.add_edge("10.0.1.1", "10.0.2.1", Default::default());
/// assert_eq!(g.number_of_nodes(), 2);
/// assert!(g.has_edge("10.0.1.1", "10.0.2.1"));
/// assert!(!g.has_edge("10.0.2.1", "10.0.1.1"));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Graph {
    directed: bool,
    graph_attrs: AttrMap,
    nodes: BTreeMap<String, AttrMap>,
    /// Outgoing adjacency (all adjacency for undirected graphs).
    succ: BTreeMap<String, BTreeSet<String>>,
    /// Incoming adjacency; mirrors `succ` for undirected graphs.
    pred: BTreeMap<String, BTreeSet<String>>,
    /// Edge attributes keyed by canonical endpoints.
    edges: BTreeMap<(String, String), AttrMap>,
}

impl Graph {
    /// Creates an empty directed graph.
    pub fn directed() -> Self {
        Graph {
            directed: true,
            ..Default::default()
        }
    }

    /// Creates an empty undirected graph.
    pub fn undirected() -> Self {
        Graph {
            directed: false,
            ..Default::default()
        }
    }

    /// Whether edges are directed.
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Canonical key under which an edge's attributes are stored.
    fn edge_key(&self, u: &str, v: &str) -> (String, String) {
        if self.directed || u <= v {
            (u.to_string(), v.to_string())
        } else {
            (v.to_string(), u.to_string())
        }
    }

    // ---------------------------------------------------------------- nodes

    /// Adds a node with the given attributes. If the node already exists its
    /// attributes are merged (new keys overwrite existing ones), matching
    /// NetworkX `add_node` semantics.
    pub fn add_node(&mut self, id: &str, attrs: AttrMap) {
        let entry = self.nodes.entry(id.to_string()).or_default();
        entry.extend(attrs);
        self.succ.entry(id.to_string()).or_default();
        self.pred.entry(id.to_string()).or_default();
    }

    /// Removes a node and all incident edges. Errors if the node is absent.
    pub fn remove_node(&mut self, id: &str) -> Result<()> {
        if !self.nodes.contains_key(id) {
            return Err(GraphError::NodeNotFound(id.to_string()));
        }
        let out: Vec<String> = self
            .succ
            .get(id)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default();
        for v in out {
            self.remove_edge(id, &v).ok();
        }
        let inc: Vec<String> = self
            .pred
            .get(id)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default();
        for u in inc {
            self.remove_edge(&u, id).ok();
        }
        self.nodes.remove(id);
        self.succ.remove(id);
        self.pred.remove(id);
        Ok(())
    }

    /// True if the node exists.
    pub fn has_node(&self, id: &str) -> bool {
        self.nodes.contains_key(id)
    }

    /// Number of nodes.
    pub fn number_of_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Iterator over node ids in sorted order.
    pub fn node_ids(&self) -> impl Iterator<Item = &str> {
        self.nodes.keys().map(|s| s.as_str())
    }

    /// Iterator over `(id, attrs)` pairs in sorted order.
    pub fn nodes(&self) -> impl Iterator<Item = (&str, &AttrMap)> {
        self.nodes.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Immutable access to a node's attributes.
    pub fn node_attrs(&self, id: &str) -> Result<&AttrMap> {
        self.nodes
            .get(id)
            .ok_or_else(|| GraphError::NodeNotFound(id.to_string()))
    }

    /// Mutable access to a node's attributes.
    pub fn node_attrs_mut(&mut self, id: &str) -> Result<&mut AttrMap> {
        self.nodes
            .get_mut(id)
            .ok_or_else(|| GraphError::NodeNotFound(id.to_string()))
    }

    /// Sets a single attribute on a node.
    pub fn set_node_attr(
        &mut self,
        id: &str,
        key: &str,
        value: impl Into<AttrValue>,
    ) -> Result<()> {
        self.node_attrs_mut(id)?.set(key, value);
        Ok(())
    }

    /// Reads a single attribute from a node, erroring if either the node or
    /// the attribute is missing (the latter is the "imaginary graph
    /// attribute" failure mode from the paper's Table 5).
    pub fn get_node_attr(&self, id: &str, key: &str) -> Result<&AttrValue> {
        self.node_attrs(id)?
            .get(key)
            .ok_or_else(|| GraphError::AttrNotFound {
                kind: "node",
                entity: id.to_string(),
                attr: key.to_string(),
            })
    }

    /// Reads a node attribute, returning `None` when absent rather than an
    /// error (NetworkX `.get()` style access).
    pub fn get_node_attr_opt(&self, id: &str, key: &str) -> Option<&AttrValue> {
        self.nodes.get(id).and_then(|a| a.get(key))
    }

    // ---------------------------------------------------------------- edges

    /// Adds an edge, creating missing endpoints, and merges attributes into
    /// any existing edge (NetworkX `add_edge` semantics).
    pub fn add_edge(&mut self, u: &str, v: &str, attrs: AttrMap) {
        if !self.nodes.contains_key(u) {
            self.add_node(u, AttrMap::new());
        }
        if !self.nodes.contains_key(v) {
            self.add_node(v, AttrMap::new());
        }
        self.succ
            .get_mut(u)
            .expect("endpoint exists")
            .insert(v.to_string());
        self.pred
            .get_mut(v)
            .expect("endpoint exists")
            .insert(u.to_string());
        if !self.directed {
            self.succ
                .get_mut(v)
                .expect("endpoint exists")
                .insert(u.to_string());
            self.pred
                .get_mut(u)
                .expect("endpoint exists")
                .insert(v.to_string());
        }
        let key = self.edge_key(u, v);
        self.edges.entry(key).or_default().extend(attrs);
    }

    /// Removes an edge. Errors if it does not exist.
    pub fn remove_edge(&mut self, u: &str, v: &str) -> Result<()> {
        let key = self.edge_key(u, v);
        if self.edges.remove(&key).is_none() {
            return Err(GraphError::EdgeNotFound(u.to_string(), v.to_string()));
        }
        if let Some(s) = self.succ.get_mut(u) {
            s.remove(v);
        }
        if let Some(p) = self.pred.get_mut(v) {
            p.remove(u);
        }
        if !self.directed {
            if let Some(s) = self.succ.get_mut(v) {
                s.remove(u);
            }
            if let Some(p) = self.pred.get_mut(u) {
                p.remove(v);
            }
        }
        Ok(())
    }

    /// True if the edge exists (respecting directionality).
    pub fn has_edge(&self, u: &str, v: &str) -> bool {
        self.edges.contains_key(&self.edge_key(u, v))
            && self.succ.get(u).map(|s| s.contains(v)).unwrap_or(false)
    }

    /// Number of edges.
    pub fn number_of_edges(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over `(u, v, attrs)` triples in canonical order.
    pub fn edges(&self) -> impl Iterator<Item = (&str, &str, &AttrMap)> {
        self.edges
            .iter()
            .map(|((u, v), a)| (u.as_str(), v.as_str(), a))
    }

    /// Immutable access to an edge's attributes.
    pub fn edge_attrs(&self, u: &str, v: &str) -> Result<&AttrMap> {
        if !self.has_edge(u, v) {
            return Err(GraphError::EdgeNotFound(u.to_string(), v.to_string()));
        }
        Ok(self.edges.get(&self.edge_key(u, v)).expect("checked above"))
    }

    /// Mutable access to an edge's attributes.
    pub fn edge_attrs_mut(&mut self, u: &str, v: &str) -> Result<&mut AttrMap> {
        if !self.has_edge(u, v) {
            return Err(GraphError::EdgeNotFound(u.to_string(), v.to_string()));
        }
        let key = self.edge_key(u, v);
        Ok(self.edges.get_mut(&key).expect("checked above"))
    }

    /// Sets a single attribute on an edge.
    pub fn set_edge_attr(
        &mut self,
        u: &str,
        v: &str,
        key: &str,
        value: impl Into<AttrValue>,
    ) -> Result<()> {
        self.edge_attrs_mut(u, v)?.set(key, value);
        Ok(())
    }

    /// Reads a single attribute from an edge, erroring if missing.
    pub fn get_edge_attr(&self, u: &str, v: &str, key: &str) -> Result<&AttrValue> {
        self.edge_attrs(u, v)?
            .get(key)
            .ok_or_else(|| GraphError::AttrNotFound {
                kind: "edge",
                entity: format!("{u}->{v}"),
                attr: key.to_string(),
            })
    }

    /// Reads an edge attribute, returning `None` when absent.
    pub fn get_edge_attr_opt(&self, u: &str, v: &str, key: &str) -> Option<&AttrValue> {
        if !self.has_edge(u, v) {
            return None;
        }
        self.edges
            .get(&self.edge_key(u, v))
            .and_then(|a| a.get(key))
    }

    // ------------------------------------------------------------ adjacency

    /// Out-neighbors for directed graphs, all neighbors for undirected.
    pub fn successors(&self, id: &str) -> Result<Vec<String>> {
        self.succ
            .get(id)
            .map(|s| s.iter().cloned().collect())
            .ok_or_else(|| GraphError::NodeNotFound(id.to_string()))
    }

    /// In-neighbors for directed graphs, all neighbors for undirected.
    pub fn predecessors(&self, id: &str) -> Result<Vec<String>> {
        self.pred
            .get(id)
            .map(|s| s.iter().cloned().collect())
            .ok_or_else(|| GraphError::NodeNotFound(id.to_string()))
    }

    /// All neighbors regardless of edge direction (union of successors and
    /// predecessors).
    pub fn neighbors(&self, id: &str) -> Result<Vec<String>> {
        if !self.nodes.contains_key(id) {
            return Err(GraphError::NodeNotFound(id.to_string()));
        }
        let mut set: BTreeSet<String> = BTreeSet::new();
        if let Some(s) = self.succ.get(id) {
            set.extend(s.iter().cloned());
        }
        if let Some(p) = self.pred.get(id) {
            set.extend(p.iter().cloned());
        }
        Ok(set.into_iter().collect())
    }

    /// Out-degree (degree for undirected graphs).
    pub fn out_degree(&self, id: &str) -> Result<usize> {
        self.succ
            .get(id)
            .map(|s| s.len())
            .ok_or_else(|| GraphError::NodeNotFound(id.to_string()))
    }

    /// In-degree (degree for undirected graphs).
    pub fn in_degree(&self, id: &str) -> Result<usize> {
        self.pred
            .get(id)
            .map(|s| s.len())
            .ok_or_else(|| GraphError::NodeNotFound(id.to_string()))
    }

    /// Total degree: in + out for directed graphs, neighbor count for
    /// undirected graphs.
    pub fn degree(&self, id: &str) -> Result<usize> {
        if self.directed {
            Ok(self.in_degree(id)? + self.out_degree(id)?)
        } else {
            self.out_degree(id)
        }
    }

    // -------------------------------------------------------------- derived

    /// Graph-level attributes (mutable).
    pub fn graph_attrs_mut(&mut self) -> &mut AttrMap {
        &mut self.graph_attrs
    }

    /// Graph-level attributes.
    pub fn graph_attrs(&self) -> &AttrMap {
        &self.graph_attrs
    }

    /// Returns the induced subgraph on `keep`, preserving node, edge and
    /// graph attributes. Unknown ids in `keep` are ignored (NetworkX
    /// `subgraph` semantics).
    pub fn subgraph<'a, I: IntoIterator<Item = &'a str>>(&self, keep: I) -> Graph {
        let keep: BTreeSet<&str> = keep.into_iter().filter(|n| self.has_node(n)).collect();
        let mut g = if self.directed {
            Graph::directed()
        } else {
            Graph::undirected()
        };
        g.graph_attrs = self.graph_attrs.clone();
        for &n in &keep {
            g.add_node(n, self.nodes[n].clone());
        }
        for ((u, v), attrs) in &self.edges {
            if keep.contains(u.as_str()) && keep.contains(v.as_str()) {
                g.add_edge(u, v, attrs.clone());
            }
        }
        g
    }

    /// Returns a directed copy with every edge reversed. For undirected
    /// graphs this is a plain copy.
    pub fn reverse(&self) -> Graph {
        if !self.directed {
            return self.clone();
        }
        let mut g = Graph::directed();
        g.graph_attrs = self.graph_attrs.clone();
        for (id, attrs) in &self.nodes {
            g.add_node(id, attrs.clone());
        }
        for ((u, v), attrs) in &self.edges {
            g.add_edge(v, u, attrs.clone());
        }
        g
    }

    /// Returns an undirected view of the graph; parallel directed edges are
    /// merged and their attributes combined (later edges overwrite).
    pub fn to_undirected(&self) -> Graph {
        let mut g = Graph::undirected();
        g.graph_attrs = self.graph_attrs.clone();
        for (id, attrs) in &self.nodes {
            g.add_node(id, attrs.clone());
        }
        for ((u, v), attrs) in &self.edges {
            g.add_edge(u, v, attrs.clone());
        }
        g
    }

    /// Sum of a numeric edge attribute over all edges. Missing or
    /// non-numeric values count as zero.
    pub fn total_edge_attr(&self, key: &str) -> f64 {
        // `+ 0.0` normalizes the empty sum: `Sum for f64` uses -0.0 as its
        // identity, which would otherwise leak into rendered answers.
        self.edges
            .values()
            .filter_map(|a| a.get_f64(key))
            .sum::<f64>()
            + 0.0
    }

    /// Nodes whose attribute `key` satisfies `pred`.
    pub fn nodes_where<F: Fn(&AttrMap) -> bool>(&self, pred: F) -> Vec<String> {
        self.nodes
            .iter()
            .filter(|(_, a)| pred(a))
            .map(|(id, _)| id.clone())
            .collect()
    }

    /// Edges whose attributes satisfy `pred`, returned as `(u, v)` pairs.
    pub fn edges_where<F: Fn(&AttrMap) -> bool>(&self, pred: F) -> Vec<(String, String)> {
        self.edges
            .iter()
            .filter(|(_, a)| pred(a))
            .map(|((u, v), _)| (u.clone(), v.clone()))
            .collect()
    }
}

/// Structural and attribute equality between two graphs with numeric
/// tolerance. This is the comparison the results evaluator uses for
/// graph-manipulation queries ("Graphs are not identical" in Table 5).
pub fn graphs_approx_eq(a: &Graph, b: &Graph) -> bool {
    if a.is_directed() != b.is_directed()
        || a.number_of_nodes() != b.number_of_nodes()
        || a.number_of_edges() != b.number_of_edges()
    {
        return false;
    }
    for (id, attrs) in a.nodes() {
        match b.nodes.get(id) {
            Some(other) => {
                if !attrs.approx_eq(other) {
                    return false;
                }
            }
            None => return false,
        }
    }
    for (u, v, attrs) in a.edges() {
        if !b.has_edge(u, v) {
            return false;
        }
        let other = b.edge_attrs(u, v).expect("checked");
        if !attrs.approx_eq(other) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::attrs;

    fn sample_directed() -> Graph {
        let mut g = Graph::directed();
        g.add_edge("a", "b", attrs([("w", 1i64)]));
        g.add_edge("b", "c", attrs([("w", 2i64)]));
        g.add_edge("a", "c", attrs([("w", 3i64)]));
        g
    }

    #[test]
    fn add_edge_creates_endpoints() {
        let g = sample_directed();
        assert_eq!(g.number_of_nodes(), 3);
        assert_eq!(g.number_of_edges(), 3);
        assert!(g.has_node("a") && g.has_node("c"));
    }

    #[test]
    fn directed_edges_are_one_way() {
        let g = sample_directed();
        assert!(g.has_edge("a", "b"));
        assert!(!g.has_edge("b", "a"));
    }

    #[test]
    fn undirected_edges_are_symmetric() {
        let mut g = Graph::undirected();
        g.add_edge("x", "y", attrs([("w", 5i64)]));
        assert!(g.has_edge("x", "y"));
        assert!(g.has_edge("y", "x"));
        assert_eq!(g.number_of_edges(), 1);
        assert_eq!(g.get_edge_attr("y", "x", "w").unwrap(), &AttrValue::Int(5));
    }

    #[test]
    fn add_node_merges_attributes() {
        let mut g = Graph::directed();
        g.add_node("a", attrs([("x", 1i64)]));
        g.add_node("a", attrs([("y", 2i64)]));
        let a = g.node_attrs("a").unwrap();
        assert_eq!(a.get_i64("x"), Some(1));
        assert_eq!(a.get_i64("y"), Some(2));
    }

    #[test]
    fn remove_node_drops_incident_edges() {
        let mut g = sample_directed();
        g.remove_node("b").unwrap();
        assert_eq!(g.number_of_nodes(), 2);
        assert_eq!(g.number_of_edges(), 1);
        assert!(g.has_edge("a", "c"));
        assert!(g.remove_node("zzz").is_err());
    }

    #[test]
    fn remove_edge_errors_when_absent() {
        let mut g = sample_directed();
        g.remove_edge("a", "b").unwrap();
        assert!(!g.has_edge("a", "b"));
        assert!(matches!(
            g.remove_edge("a", "b"),
            Err(GraphError::EdgeNotFound(_, _))
        ));
    }

    #[test]
    fn degrees_directed() {
        let g = sample_directed();
        assert_eq!(g.out_degree("a").unwrap(), 2);
        assert_eq!(g.in_degree("a").unwrap(), 0);
        assert_eq!(g.degree("c").unwrap(), 2);
        assert!(g.degree("nope").is_err());
    }

    #[test]
    fn neighbors_union_of_both_directions() {
        let g = sample_directed();
        assert_eq!(
            g.neighbors("b").unwrap(),
            vec!["a".to_string(), "c".to_string()]
        );
        assert_eq!(g.successors("b").unwrap(), vec!["c".to_string()]);
        assert_eq!(g.predecessors("b").unwrap(), vec!["a".to_string()]);
    }

    #[test]
    fn attr_accessors_and_imaginary_attribute_error() {
        let mut g = sample_directed();
        g.set_node_attr("a", "color", "red").unwrap();
        assert_eq!(g.get_node_attr("a", "color").unwrap().as_str(), Some("red"));
        let err = g.get_node_attr("a", "capacity").unwrap_err();
        assert!(matches!(err, GraphError::AttrNotFound { .. }));
        let err = g.get_edge_attr("a", "b", "latency").unwrap_err();
        assert!(matches!(err, GraphError::AttrNotFound { .. }));
    }

    #[test]
    fn subgraph_keeps_attrs_and_internal_edges() {
        let g = sample_directed();
        let s = g.subgraph(["a", "b", "ghost"]);
        assert_eq!(s.number_of_nodes(), 2);
        assert_eq!(s.number_of_edges(), 1);
        assert_eq!(s.get_edge_attr("a", "b", "w").unwrap(), &AttrValue::Int(1));
    }

    #[test]
    fn reverse_flips_directed_edges() {
        let g = sample_directed();
        let r = g.reverse();
        assert!(r.has_edge("b", "a"));
        assert!(!r.has_edge("a", "b"));
        assert_eq!(r.number_of_edges(), 3);
    }

    #[test]
    fn to_undirected_merges_directions() {
        let mut g = Graph::directed();
        g.add_edge("a", "b", attrs([("w", 1i64)]));
        g.add_edge("b", "a", attrs([("w", 2i64)]));
        assert_eq!(g.number_of_edges(), 2);
        let u = g.to_undirected();
        assert_eq!(u.number_of_edges(), 1);
    }

    #[test]
    fn total_edge_attr_sums_numeric_values() {
        let g = sample_directed();
        assert_eq!(g.total_edge_attr("w"), 6.0);
        assert_eq!(g.total_edge_attr("missing"), 0.0);
    }

    #[test]
    fn nodes_where_and_edges_where_filter() {
        let mut g = sample_directed();
        g.set_node_attr("a", "role", "core").unwrap();
        g.set_node_attr("b", "role", "edge").unwrap();
        let core = g.nodes_where(|a| a.get_str("role") == Some("core"));
        assert_eq!(core, vec!["a".to_string()]);
        let heavy = g.edges_where(|a| a.get_i64("w").unwrap_or(0) >= 2);
        assert_eq!(heavy.len(), 2);
    }

    #[test]
    fn graphs_approx_eq_detects_differences() {
        let g = sample_directed();
        let mut h = g.clone();
        assert!(graphs_approx_eq(&g, &h));
        h.set_edge_attr("a", "b", "w", 99i64).unwrap();
        assert!(!graphs_approx_eq(&g, &h));
        let mut k = g.clone();
        k.add_node("extra", AttrMap::new());
        assert!(!graphs_approx_eq(&g, &k));
    }

    #[test]
    fn graphs_approx_eq_tolerates_int_float() {
        let mut a = Graph::undirected();
        a.add_edge("x", "y", attrs([("bytes", AttrValue::Int(10))]));
        let mut b = Graph::undirected();
        b.add_edge("x", "y", attrs([("bytes", AttrValue::Float(10.0))]));
        assert!(graphs_approx_eq(&a, &b));
    }

    #[test]
    fn graph_attrs_round_trip() {
        let mut g = Graph::directed();
        g.graph_attrs_mut().set("name", "test");
        assert_eq!(g.graph_attrs().get_str("name"), Some("test"));
    }
}
