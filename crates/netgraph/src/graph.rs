//! The property-graph data structure.
//!
//! [`Graph`] is the NetworkX-equivalent substrate used by the execution
//! sandbox: a simple (non-multi) graph, directed or undirected, with
//! arbitrary [`AttrMap`] metadata on the graph, every node and every edge.
//! Node identifiers are strings (IP addresses for communication graphs,
//! MALT entity names for topologies) at the API surface, but the core is
//! integer-keyed: every name is interned once into a dense [`NodeId`], and
//! all adjacency is `Vec`-based from there.

use crate::attr::{AttrMap, AttrMapExt};
use crate::error::{GraphError, Result};
use crate::intern::{Interner, Symbol};
use crate::value::AttrValue;
use std::cmp::Ordering;
use std::collections::{BTreeSet, HashMap};
use std::sync::OnceLock;

/// Dense integer handle for a graph node (the node's [`Symbol`] in the
/// graph's private interner). Ids are stable for the lifetime of the graph
/// — removing and re-adding a node yields the same id — but are **not**
/// meaningful across different graphs.
pub type NodeId = Symbol;

/// A directed or undirected property graph with string node identifiers
/// interned to dense integer ids.
///
/// Internally the graph is an index-map plus adjacency vectors: node names
/// intern to [`NodeId`]s, per-node successor/predecessor lists are `Vec`s
/// kept sorted by neighbor *name*, and edge attributes live in a hash map
/// keyed by the canonical endpoint-id pair. Node lookup is O(1), edge
/// probes are O(log degree), and every public iterator walks the sorted
/// view, so iteration order is identical to the historical string-keyed
/// (`BTreeMap`) representation — byte for byte.
///
/// ```
/// use netgraph::Graph;
/// let mut g = Graph::directed();
/// g.add_edge("10.0.1.1", "10.0.2.1", Default::default());
/// assert_eq!(g.number_of_nodes(), 2);
/// assert!(g.has_edge("10.0.1.1", "10.0.2.1"));
/// assert!(!g.has_edge("10.0.2.1", "10.0.1.1"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Graph {
    directed: bool,
    graph_attrs: AttrMap,
    /// Node-name interner; `NodeId` indexes every per-node vector below.
    interner: Interner,
    /// Attributes per interned id; `None` marks an id whose node was
    /// removed (or never added — interning alone does not create a node).
    nodes: Vec<Option<AttrMap>>,
    /// Outgoing adjacency (all adjacency for undirected graphs), sorted by
    /// neighbor name.
    succ: Vec<Vec<NodeId>>,
    /// Incoming adjacency; mirrors `succ` for undirected graphs.
    pred: Vec<Vec<NodeId>>,
    /// Edge attributes keyed by the canonical endpoint-id pair.
    edge_attrs: HashMap<(u32, u32), AttrMap>,
    /// Number of present nodes (ids with `Some` attributes).
    node_count: usize,
    /// Lazily rebuilt list of present ids sorted by name — the sorted view
    /// behind every public iteration order. Invalidated whenever the node
    /// set changes.
    sorted: OnceLock<Vec<NodeId>>,
}

impl Graph {
    /// Creates an empty directed graph.
    pub fn directed() -> Self {
        Graph {
            directed: true,
            ..Default::default()
        }
    }

    /// Creates an empty undirected graph.
    pub fn undirected() -> Self {
        Graph {
            directed: false,
            ..Default::default()
        }
    }

    /// Whether edges are directed.
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    // ------------------------------------------------------------ id plumbing

    /// The interned id of a *present* node, if any.
    #[inline]
    pub fn node_id(&self, name: &str) -> Option<NodeId> {
        let id = self.interner.get(name)?;
        self.nodes[id.index()].as_ref().map(|_| id)
    }

    /// The name behind a [`NodeId`].
    #[inline]
    pub fn node_name(&self, id: NodeId) -> &str {
        self.interner.resolve(id)
    }

    #[inline]
    fn require_id(&self, name: &str) -> Result<NodeId> {
        self.node_id(name)
            .ok_or_else(|| GraphError::NodeNotFound(name.to_string()))
    }

    /// Interns a name and makes sure the per-id rows exist; does **not**
    /// mark the node present.
    fn intern_id(&mut self, name: &str) -> NodeId {
        let id = self.intern_name(name);
        while self.nodes.len() < self.interner.len() {
            self.nodes.push(None);
            self.succ.push(Vec::new());
            self.pred.push(Vec::new());
        }
        id
    }

    fn intern_name(&mut self, name: &str) -> NodeId {
        self.interner.intern(name)
    }

    #[inline]
    fn name_of(&self, id: NodeId) -> &str {
        self.interner.resolve(id)
    }

    /// Canonical key under which an edge's attributes are stored: the exact
    /// pair for directed graphs, the name-ordered pair for undirected ones.
    #[inline]
    fn edge_key(&self, u: NodeId, v: NodeId) -> (u32, u32) {
        if self.directed || self.name_of(u) <= self.name_of(v) {
            (u.0, v.0)
        } else {
            (v.0, u.0)
        }
    }

    /// Position of `target` in `list` (which is sorted by name), if present.
    #[inline]
    fn adj_search(&self, list: &[NodeId], target: NodeId) -> std::result::Result<usize, usize> {
        let target_name = self.name_of(target);
        list.binary_search_by(|&probe| self.name_of(probe).cmp(target_name))
    }

    /// The sorted view: present node ids ordered by name.
    fn sorted_ids(&self) -> &[NodeId] {
        self.sorted.get_or_init(|| {
            let mut ids: Vec<NodeId> = (0..self.nodes.len() as u32)
                .map(Symbol)
                .filter(|id| self.nodes[id.index()].is_some())
                .collect();
            ids.sort_unstable_by(|&a, &b| self.name_of(a).cmp(self.name_of(b)));
            ids
        })
    }

    /// Present node ids in name order (the sorted view behind
    /// [`Graph::node_ids`]).
    pub fn node_id_list(&self) -> &[NodeId] {
        self.sorted_ids()
    }

    /// Exclusive upper bound on [`NodeId`] indices ever issued by this graph
    /// (including removed nodes). Sized `Vec<bool>` visited sets — the
    /// allocation the id-level algorithm kernels use instead of name sets —
    /// index safely with any id below this bound.
    #[inline]
    pub fn id_bound(&self) -> usize {
        self.nodes.len()
    }

    #[inline]
    fn invalidate_sorted(&mut self) {
        self.sorted.take();
    }

    // ---------------------------------------------------------------- nodes

    /// Adds a node with the given attributes. If the node already exists its
    /// attributes are merged (new keys overwrite existing ones), matching
    /// NetworkX `add_node` semantics.
    pub fn add_node(&mut self, id: &str, attrs: AttrMap) {
        let node = self.intern_id(id);
        let slot = &mut self.nodes[node.index()];
        match slot {
            Some(existing) => existing.extend(attrs),
            None => {
                *slot = Some(attrs);
                self.node_count += 1;
                self.invalidate_sorted();
            }
        }
    }

    /// Removes a node and all incident edges. Errors if the node is absent.
    pub fn remove_node(&mut self, id: &str) -> Result<()> {
        let node = self.require_id(id)?;
        let out: Vec<NodeId> = self.succ[node.index()].clone();
        for v in out {
            self.remove_edge_ids(node, v).ok();
        }
        let inc: Vec<NodeId> = self.pred[node.index()].clone();
        for u in inc {
            self.remove_edge_ids(u, node).ok();
        }
        self.nodes[node.index()] = None;
        self.succ[node.index()].clear();
        self.pred[node.index()].clear();
        self.node_count -= 1;
        self.invalidate_sorted();
        Ok(())
    }

    /// True if the node exists.
    #[inline]
    pub fn has_node(&self, id: &str) -> bool {
        self.node_id(id).is_some()
    }

    /// Number of nodes.
    pub fn number_of_nodes(&self) -> usize {
        self.node_count
    }

    /// Iterator over node ids in sorted order.
    pub fn node_ids(&self) -> impl Iterator<Item = &str> {
        self.sorted_ids().iter().map(|&id| self.name_of(id))
    }

    /// Iterator over `(id, attrs)` pairs in sorted order.
    pub fn nodes(&self) -> impl Iterator<Item = (&str, &AttrMap)> {
        self.sorted_ids().iter().map(|&id| {
            (
                self.name_of(id),
                self.nodes[id.index()].as_ref().expect("sorted ids present"),
            )
        })
    }

    /// Immutable access to a node's attributes.
    pub fn node_attrs(&self, id: &str) -> Result<&AttrMap> {
        let node = self.require_id(id)?;
        Ok(self.nodes[node.index()].as_ref().expect("present"))
    }

    /// A node's attributes by interned id; `None` for removed ids.
    #[inline]
    pub fn node_attrs_by_id(&self, id: NodeId) -> Option<&AttrMap> {
        self.nodes.get(id.index()).and_then(Option::as_ref)
    }

    /// Mutable access to a node's attributes.
    pub fn node_attrs_mut(&mut self, id: &str) -> Result<&mut AttrMap> {
        let node = self.require_id(id)?;
        Ok(self.nodes[node.index()].as_mut().expect("present"))
    }

    /// Sets a single attribute on a node.
    pub fn set_node_attr(
        &mut self,
        id: &str,
        key: &str,
        value: impl Into<AttrValue>,
    ) -> Result<()> {
        self.node_attrs_mut(id)?.set(key, value);
        Ok(())
    }

    /// Reads a single attribute from a node, erroring if either the node or
    /// the attribute is missing (the latter is the "imaginary graph
    /// attribute" failure mode from the paper's Table 5).
    pub fn get_node_attr(&self, id: &str, key: &str) -> Result<&AttrValue> {
        self.node_attrs(id)?
            .get(key)
            .ok_or_else(|| GraphError::AttrNotFound {
                kind: "node",
                entity: id.to_string(),
                attr: key.to_string(),
            })
    }

    /// Reads a node attribute, returning `None` when absent rather than an
    /// error (NetworkX `.get()` style access).
    pub fn get_node_attr_opt(&self, id: &str, key: &str) -> Option<&AttrValue> {
        self.node_id(id)
            .and_then(|node| self.nodes[node.index()].as_ref())
            .and_then(|a| a.get(key))
    }

    // ---------------------------------------------------------------- edges

    /// Adds an edge, creating missing endpoints, and merges attributes into
    /// any existing edge (NetworkX `add_edge` semantics).
    pub fn add_edge(&mut self, u: &str, v: &str, attrs: AttrMap) {
        if !self.has_node(u) {
            self.add_node(u, AttrMap::new());
        }
        if !self.has_node(v) {
            self.add_node(v, AttrMap::new());
        }
        let (un, vn) = (
            self.node_id(u).expect("endpoint exists"),
            self.node_id(v).expect("endpoint exists"),
        );
        self.adj_insert_succ(un, vn);
        self.adj_insert_pred(vn, un);
        if !self.directed {
            self.adj_insert_succ(vn, un);
            self.adj_insert_pred(un, vn);
        }
        let key = self.edge_key(un, vn);
        self.edge_attrs.entry(key).or_default().extend(attrs);
    }

    fn adj_insert_succ(&mut self, from: NodeId, to: NodeId) {
        let found = self.adj_search(&self.succ[from.index()], to);
        if let Err(pos) = found {
            self.succ[from.index()].insert(pos, to);
        }
    }

    fn adj_insert_pred(&mut self, from: NodeId, to: NodeId) {
        let found = self.adj_search(&self.pred[from.index()], to);
        if let Err(pos) = found {
            self.pred[from.index()].insert(pos, to);
        }
    }

    fn adj_remove_succ(&mut self, from: NodeId, to: NodeId) {
        let found = self.adj_search(&self.succ[from.index()], to);
        if let Ok(pos) = found {
            self.succ[from.index()].remove(pos);
        }
    }

    fn adj_remove_pred(&mut self, from: NodeId, to: NodeId) {
        let found = self.adj_search(&self.pred[from.index()], to);
        if let Ok(pos) = found {
            self.pred[from.index()].remove(pos);
        }
    }

    fn remove_edge_ids(&mut self, u: NodeId, v: NodeId) -> Result<()> {
        let key = self.edge_key(u, v);
        if self.edge_attrs.remove(&key).is_none() {
            return Err(GraphError::EdgeNotFound(
                self.name_of(u).to_string(),
                self.name_of(v).to_string(),
            ));
        }
        self.adj_remove_succ(u, v);
        self.adj_remove_pred(v, u);
        if !self.directed {
            self.adj_remove_succ(v, u);
            self.adj_remove_pred(u, v);
        }
        Ok(())
    }

    /// Removes an edge. Errors if it does not exist.
    pub fn remove_edge(&mut self, u: &str, v: &str) -> Result<()> {
        let not_found = || GraphError::EdgeNotFound(u.to_string(), v.to_string());
        let un = self.node_id(u).ok_or_else(not_found)?;
        let vn = self.node_id(v).ok_or_else(not_found)?;
        self.remove_edge_ids(un, vn)
    }

    /// True if the edge exists (respecting directionality).
    #[inline]
    pub fn has_edge(&self, u: &str, v: &str) -> bool {
        match (self.node_id(u), self.node_id(v)) {
            (Some(un), Some(vn)) => self.has_edge_by_id(un, vn),
            _ => false,
        }
    }

    /// True if the edge exists, by interned endpoint ids.
    #[inline]
    pub fn has_edge_by_id(&self, u: NodeId, v: NodeId) -> bool {
        self.adj_search(&self.succ[u.index()], v).is_ok()
    }

    /// Number of edges.
    pub fn number_of_edges(&self) -> usize {
        self.edge_attrs.len()
    }

    /// Iterator over `(u, v, attrs)` triples in canonical order.
    pub fn edges(&self) -> impl Iterator<Item = (&str, &str, &AttrMap)> {
        self.edge_id_iter().map(|(u, v)| {
            let attrs = self
                .edge_attrs
                .get(&self.edge_key(u, v))
                .expect("edge listed in adjacency");
            (self.name_of(u), self.name_of(v), attrs)
        })
    }

    /// Iterator over canonical edge id pairs in the same order as
    /// [`Graph::edges`]: ascending by source name, then target name.
    pub fn edge_id_iter(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.sorted_ids().iter().flat_map(move |&u| {
            let list = &self.succ[u.index()];
            // For undirected graphs each edge is listed from both endpoints;
            // emit it only from the name-smaller one (self-loops once).
            let start = if self.directed {
                0
            } else {
                match self.adj_search(list, u) {
                    Ok(pos) | Err(pos) => pos,
                }
            };
            list[start..].iter().map(move |&v| (u, v))
        })
    }

    /// Immutable access to an edge's attributes.
    pub fn edge_attrs(&self, u: &str, v: &str) -> Result<&AttrMap> {
        self.edge_attrs_lookup(u, v)
            .ok_or_else(|| GraphError::EdgeNotFound(u.to_string(), v.to_string()))
    }

    #[inline]
    fn edge_attrs_lookup(&self, u: &str, v: &str) -> Option<&AttrMap> {
        let un = self.node_id(u)?;
        let vn = self.node_id(v)?;
        if !self.has_edge_by_id(un, vn) {
            return None;
        }
        self.edge_attrs.get(&self.edge_key(un, vn))
    }

    /// An edge's attributes by interned endpoint ids.
    pub fn edge_attrs_by_id(&self, u: NodeId, v: NodeId) -> Option<&AttrMap> {
        if !self.has_edge_by_id(u, v) {
            return None;
        }
        self.edge_attrs.get(&self.edge_key(u, v))
    }

    /// Mutable access to an edge's attributes.
    pub fn edge_attrs_mut(&mut self, u: &str, v: &str) -> Result<&mut AttrMap> {
        let not_found = || GraphError::EdgeNotFound(u.to_string(), v.to_string());
        let un = self.node_id(u).ok_or_else(not_found)?;
        let vn = self.node_id(v).ok_or_else(not_found)?;
        if !self.has_edge_by_id(un, vn) {
            return Err(not_found());
        }
        let key = self.edge_key(un, vn);
        Ok(self.edge_attrs.get_mut(&key).expect("checked above"))
    }

    /// Sets a single attribute on an edge.
    pub fn set_edge_attr(
        &mut self,
        u: &str,
        v: &str,
        key: &str,
        value: impl Into<AttrValue>,
    ) -> Result<()> {
        self.edge_attrs_mut(u, v)?.set(key, value);
        Ok(())
    }

    /// Reads a single attribute from an edge, erroring if missing.
    pub fn get_edge_attr(&self, u: &str, v: &str, key: &str) -> Result<&AttrValue> {
        self.edge_attrs(u, v)?
            .get(key)
            .ok_or_else(|| GraphError::AttrNotFound {
                kind: "edge",
                entity: format!("{u}->{v}"),
                attr: key.to_string(),
            })
    }

    /// Reads an edge attribute, returning `None` when absent.
    pub fn get_edge_attr_opt(&self, u: &str, v: &str, key: &str) -> Option<&AttrValue> {
        self.edge_attrs_lookup(u, v).and_then(|a| a.get(key))
    }

    // ------------------------------------------------------------ adjacency

    /// Out-neighbors for directed graphs, all neighbors for undirected.
    pub fn successors(&self, id: &str) -> Result<Vec<String>> {
        Ok(self.successors_iter(id)?.map(str::to_string).collect())
    }

    /// In-neighbors for directed graphs, all neighbors for undirected.
    pub fn predecessors(&self, id: &str) -> Result<Vec<String>> {
        Ok(self.predecessors_iter(id)?.map(str::to_string).collect())
    }

    /// All neighbors regardless of edge direction (union of successors and
    /// predecessors).
    pub fn neighbors(&self, id: &str) -> Result<Vec<String>> {
        Ok(self.neighbors_iter(id)?.map(str::to_string).collect())
    }

    /// Allocation-free variant of [`Graph::successors`]: neighbor names in
    /// sorted order, borrowed from the graph.
    pub fn successors_iter(&self, id: &str) -> Result<impl Iterator<Item = &str>> {
        let node = self.require_id(id)?;
        Ok(self.successor_ids(node).iter().map(|&v| self.name_of(v)))
    }

    /// Allocation-free variant of [`Graph::predecessors`].
    pub fn predecessors_iter(&self, id: &str) -> Result<impl Iterator<Item = &str>> {
        let node = self.require_id(id)?;
        Ok(self.predecessor_ids(node).iter().map(|&v| self.name_of(v)))
    }

    /// Allocation-free variant of [`Graph::neighbors`]: the sorted union of
    /// successor and predecessor names, without materializing a set.
    pub fn neighbors_iter(&self, id: &str) -> Result<impl Iterator<Item = &str>> {
        let node = self.require_id(id)?;
        Ok(self.neighbor_ids(node).map(|v| self.name_of(v)))
    }

    /// Successor ids in neighbor-name order (a borrowed slice; O(1)).
    #[inline]
    pub fn successor_ids(&self, id: NodeId) -> &[NodeId] {
        &self.succ[id.index()]
    }

    /// Predecessor ids in neighbor-name order (a borrowed slice; O(1)).
    #[inline]
    pub fn predecessor_ids(&self, id: NodeId) -> &[NodeId] {
        &self.pred[id.index()]
    }

    /// Sorted, deduplicated union of successor and predecessor ids — the
    /// id-level equivalent of [`Graph::neighbors`], allocation-free.
    pub fn neighbor_ids(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        MergeNeighbors {
            graph: self,
            left: &self.succ[id.index()],
            right: &self.pred[id.index()],
            li: 0,
            ri: 0,
        }
    }

    /// Out-degree (degree for undirected graphs).
    pub fn out_degree(&self, id: &str) -> Result<usize> {
        let node = self.require_id(id)?;
        Ok(self.succ[node.index()].len())
    }

    /// In-degree (degree for undirected graphs).
    pub fn in_degree(&self, id: &str) -> Result<usize> {
        let node = self.require_id(id)?;
        Ok(self.pred[node.index()].len())
    }

    /// Total degree: in + out for directed graphs, neighbor count for
    /// undirected graphs.
    pub fn degree(&self, id: &str) -> Result<usize> {
        let node = self.require_id(id)?;
        Ok(self.degree_by_id(node))
    }

    /// Total degree by interned id (O(1)).
    #[inline]
    pub fn degree_by_id(&self, id: NodeId) -> usize {
        if self.directed {
            self.succ[id.index()].len() + self.pred[id.index()].len()
        } else {
            self.succ[id.index()].len()
        }
    }

    // -------------------------------------------------------------- derived

    /// Graph-level attributes (mutable).
    pub fn graph_attrs_mut(&mut self) -> &mut AttrMap {
        &mut self.graph_attrs
    }

    /// Graph-level attributes.
    pub fn graph_attrs(&self) -> &AttrMap {
        &self.graph_attrs
    }

    /// Returns the induced subgraph on `keep`, preserving node, edge and
    /// graph attributes. Unknown ids in `keep` are ignored (NetworkX
    /// `subgraph` semantics).
    pub fn subgraph<'a, I: IntoIterator<Item = &'a str>>(&self, keep: I) -> Graph {
        let keep: BTreeSet<&str> = keep.into_iter().filter(|n| self.has_node(n)).collect();
        let mut g = if self.directed {
            Graph::directed()
        } else {
            Graph::undirected()
        };
        g.graph_attrs = self.graph_attrs.clone();
        for &n in &keep {
            g.add_node(n, self.node_attrs(n).expect("kept node exists").clone());
        }
        for (u, v, attrs) in self.edges() {
            if keep.contains(u) && keep.contains(v) {
                g.add_edge(u, v, attrs.clone());
            }
        }
        g
    }

    /// Returns a directed copy with every edge reversed. For undirected
    /// graphs this is a plain copy.
    pub fn reverse(&self) -> Graph {
        if !self.directed {
            return self.clone();
        }
        let mut g = Graph::directed();
        g.graph_attrs = self.graph_attrs.clone();
        for (id, attrs) in self.nodes() {
            g.add_node(id, attrs.clone());
        }
        for (u, v, attrs) in self.edges() {
            g.add_edge(v, u, attrs.clone());
        }
        g
    }

    /// Returns an undirected view of the graph; parallel directed edges are
    /// merged and their attributes combined (later edges overwrite).
    pub fn to_undirected(&self) -> Graph {
        let mut g = Graph::undirected();
        g.graph_attrs = self.graph_attrs.clone();
        for (id, attrs) in self.nodes() {
            g.add_node(id, attrs.clone());
        }
        for (u, v, attrs) in self.edges() {
            g.add_edge(u, v, attrs.clone());
        }
        g
    }

    /// Sum of a numeric edge attribute over all edges. Missing or
    /// non-numeric values count as zero.
    pub fn total_edge_attr(&self, key: &str) -> f64 {
        // Summed in canonical edge order so the floating-point result is
        // reproducible; `+ 0.0` normalizes the empty sum (`Sum for f64`
        // uses -0.0 as its identity, which would otherwise leak into
        // rendered answers).
        self.edges()
            .filter_map(|(_, _, a)| a.get_f64(key))
            .sum::<f64>()
            + 0.0
    }

    /// Nodes whose attribute `key` satisfies `pred`.
    pub fn nodes_where<F: Fn(&AttrMap) -> bool>(&self, pred: F) -> Vec<String> {
        self.nodes()
            .filter(|(_, a)| pred(a))
            .map(|(id, _)| id.to_string())
            .collect()
    }

    /// Edges whose attributes satisfy `pred`, returned as `(u, v)` pairs.
    pub fn edges_where<F: Fn(&AttrMap) -> bool>(&self, pred: F) -> Vec<(String, String)> {
        self.edges()
            .filter(|(_, _, a)| pred(a))
            .map(|(u, v, _)| (u.to_string(), v.to_string()))
            .collect()
    }
}

/// Sorted-merge iterator over the successor and predecessor id lists of one
/// node; yields each neighbor once, in name order.
struct MergeNeighbors<'g> {
    graph: &'g Graph,
    left: &'g [NodeId],
    right: &'g [NodeId],
    li: usize,
    ri: usize,
}

impl Iterator for MergeNeighbors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        match (self.left.get(self.li), self.right.get(self.ri)) {
            (None, None) => None,
            (Some(&l), None) => {
                self.li += 1;
                Some(l)
            }
            (None, Some(&r)) => {
                self.ri += 1;
                Some(r)
            }
            (Some(&l), Some(&r)) => {
                if l == r {
                    self.li += 1;
                    self.ri += 1;
                    return Some(l);
                }
                match self.graph.name_of(l).cmp(self.graph.name_of(r)) {
                    Ordering::Less => {
                        self.li += 1;
                        Some(l)
                    }
                    _ => {
                        self.ri += 1;
                        Some(r)
                    }
                }
            }
        }
    }
}

/// Structural equality: same directedness, graph attributes, node set with
/// equal attributes, and edge set with equal attributes. Interned ids are
/// an internal detail, so two graphs built in different insertion orders
/// still compare equal — exactly as the historical `BTreeMap` derive did.
impl PartialEq for Graph {
    fn eq(&self, other: &Self) -> bool {
        if self.directed != other.directed
            || self.graph_attrs != other.graph_attrs
            || self.number_of_nodes() != other.number_of_nodes()
            || self.number_of_edges() != other.number_of_edges()
        {
            return false;
        }
        self.nodes().all(|(id, attrs)| {
            other
                .node_id(id)
                .and_then(|n| other.node_attrs_by_id(n))
                .map(|o| o == attrs)
                .unwrap_or(false)
        }) && self.edges().all(|(u, v, attrs)| {
            other
                .edge_attrs_lookup(u, v)
                .map(|o| o == attrs)
                .unwrap_or(false)
        })
    }
}

/// Structural and attribute equality between two graphs with numeric
/// tolerance. This is the comparison the results evaluator uses for
/// graph-manipulation queries ("Graphs are not identical" in Table 5).
pub fn graphs_approx_eq(a: &Graph, b: &Graph) -> bool {
    if a.is_directed() != b.is_directed()
        || a.number_of_nodes() != b.number_of_nodes()
        || a.number_of_edges() != b.number_of_edges()
    {
        return false;
    }
    for (id, attrs) in a.nodes() {
        match b.node_id(id).and_then(|n| b.node_attrs_by_id(n)) {
            Some(other) => {
                if !attrs.approx_eq(other) {
                    return false;
                }
            }
            None => return false,
        }
    }
    for (u, v, attrs) in a.edges() {
        match b.edge_attrs_lookup(u, v) {
            Some(other) => {
                if !attrs.approx_eq(other) {
                    return false;
                }
            }
            None => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::attrs;

    fn sample_directed() -> Graph {
        let mut g = Graph::directed();
        g.add_edge("a", "b", attrs([("w", 1i64)]));
        g.add_edge("b", "c", attrs([("w", 2i64)]));
        g.add_edge("a", "c", attrs([("w", 3i64)]));
        g
    }

    #[test]
    fn add_edge_creates_endpoints() {
        let g = sample_directed();
        assert_eq!(g.number_of_nodes(), 3);
        assert_eq!(g.number_of_edges(), 3);
        assert!(g.has_node("a") && g.has_node("c"));
    }

    #[test]
    fn directed_edges_are_one_way() {
        let g = sample_directed();
        assert!(g.has_edge("a", "b"));
        assert!(!g.has_edge("b", "a"));
    }

    #[test]
    fn undirected_edges_are_symmetric() {
        let mut g = Graph::undirected();
        g.add_edge("x", "y", attrs([("w", 5i64)]));
        assert!(g.has_edge("x", "y"));
        assert!(g.has_edge("y", "x"));
        assert_eq!(g.number_of_edges(), 1);
        assert_eq!(g.get_edge_attr("y", "x", "w").unwrap(), &AttrValue::Int(5));
    }

    #[test]
    fn add_node_merges_attributes() {
        let mut g = Graph::directed();
        g.add_node("a", attrs([("x", 1i64)]));
        g.add_node("a", attrs([("y", 2i64)]));
        let a = g.node_attrs("a").unwrap();
        assert_eq!(a.get_i64("x"), Some(1));
        assert_eq!(a.get_i64("y"), Some(2));
    }

    #[test]
    fn remove_node_drops_incident_edges() {
        let mut g = sample_directed();
        g.remove_node("b").unwrap();
        assert_eq!(g.number_of_nodes(), 2);
        assert_eq!(g.number_of_edges(), 1);
        assert!(g.has_edge("a", "c"));
        assert!(g.remove_node("zzz").is_err());
    }

    #[test]
    fn remove_edge_errors_when_absent() {
        let mut g = sample_directed();
        g.remove_edge("a", "b").unwrap();
        assert!(!g.has_edge("a", "b"));
        assert!(matches!(
            g.remove_edge("a", "b"),
            Err(GraphError::EdgeNotFound(_, _))
        ));
    }

    #[test]
    fn degrees_directed() {
        let g = sample_directed();
        assert_eq!(g.out_degree("a").unwrap(), 2);
        assert_eq!(g.in_degree("a").unwrap(), 0);
        assert_eq!(g.degree("c").unwrap(), 2);
        assert!(g.degree("nope").is_err());
    }

    #[test]
    fn neighbors_union_of_both_directions() {
        let g = sample_directed();
        assert_eq!(
            g.neighbors("b").unwrap(),
            vec!["a".to_string(), "c".to_string()]
        );
        assert_eq!(g.successors("b").unwrap(), vec!["c".to_string()]);
        assert_eq!(g.predecessors("b").unwrap(), vec!["a".to_string()]);
    }

    #[test]
    fn attr_accessors_and_imaginary_attribute_error() {
        let mut g = sample_directed();
        g.set_node_attr("a", "color", "red").unwrap();
        assert_eq!(g.get_node_attr("a", "color").unwrap().as_str(), Some("red"));
        let err = g.get_node_attr("a", "capacity").unwrap_err();
        assert!(matches!(err, GraphError::AttrNotFound { .. }));
        let err = g.get_edge_attr("a", "b", "latency").unwrap_err();
        assert!(matches!(err, GraphError::AttrNotFound { .. }));
    }

    #[test]
    fn subgraph_keeps_attrs_and_internal_edges() {
        let g = sample_directed();
        let s = g.subgraph(["a", "b", "ghost"]);
        assert_eq!(s.number_of_nodes(), 2);
        assert_eq!(s.number_of_edges(), 1);
        assert_eq!(s.get_edge_attr("a", "b", "w").unwrap(), &AttrValue::Int(1));
    }

    #[test]
    fn reverse_flips_directed_edges() {
        let g = sample_directed();
        let r = g.reverse();
        assert!(r.has_edge("b", "a"));
        assert!(!r.has_edge("a", "b"));
        assert_eq!(r.number_of_edges(), 3);
    }

    #[test]
    fn to_undirected_merges_directions() {
        let mut g = Graph::directed();
        g.add_edge("a", "b", attrs([("w", 1i64)]));
        g.add_edge("b", "a", attrs([("w", 2i64)]));
        assert_eq!(g.number_of_edges(), 2);
        let u = g.to_undirected();
        assert_eq!(u.number_of_edges(), 1);
    }

    #[test]
    fn total_edge_attr_sums_numeric_values() {
        let g = sample_directed();
        assert_eq!(g.total_edge_attr("w"), 6.0);
        assert_eq!(g.total_edge_attr("missing"), 0.0);
    }

    #[test]
    fn nodes_where_and_edges_where_filter() {
        let mut g = sample_directed();
        g.set_node_attr("a", "role", "core").unwrap();
        g.set_node_attr("b", "role", "edge").unwrap();
        let core = g.nodes_where(|a| a.get_str("role") == Some("core"));
        assert_eq!(core, vec!["a".to_string()]);
        let heavy = g.edges_where(|a| a.get_i64("w").unwrap_or(0) >= 2);
        assert_eq!(heavy.len(), 2);
    }

    #[test]
    fn graphs_approx_eq_detects_differences() {
        let g = sample_directed();
        let mut h = g.clone();
        assert!(graphs_approx_eq(&g, &h));
        h.set_edge_attr("a", "b", "w", 99i64).unwrap();
        assert!(!graphs_approx_eq(&g, &h));
        let mut k = g.clone();
        k.add_node("extra", AttrMap::new());
        assert!(!graphs_approx_eq(&g, &k));
    }

    #[test]
    fn graphs_approx_eq_tolerates_int_float() {
        let mut a = Graph::undirected();
        a.add_edge("x", "y", attrs([("bytes", AttrValue::Int(10))]));
        let mut b = Graph::undirected();
        b.add_edge("x", "y", attrs([("bytes", AttrValue::Float(10.0))]));
        assert!(graphs_approx_eq(&a, &b));
    }

    #[test]
    fn graph_attrs_round_trip() {
        let mut g = Graph::directed();
        g.graph_attrs_mut().set("name", "test");
        assert_eq!(g.graph_attrs().get_str("name"), Some("test"));
    }

    // ------------------------------------------------- interned-core tests

    #[test]
    fn equality_is_insertion_order_independent() {
        let mut a = Graph::directed();
        a.add_edge("x", "y", attrs([("w", 1i64)]));
        a.add_edge("p", "q", attrs([("w", 2i64)]));
        let mut b = Graph::directed();
        b.add_edge("p", "q", attrs([("w", 2i64)]));
        b.add_edge("x", "y", attrs([("w", 1i64)]));
        assert_eq!(a, b);
        b.set_edge_attr("p", "q", "w", 3i64).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn node_ids_are_stable_across_removal() {
        let mut g = Graph::directed();
        g.add_node("a", AttrMap::new());
        let id = g.node_id("a").unwrap();
        g.remove_node("a").unwrap();
        assert_eq!(g.node_id("a"), None);
        assert!(!g.has_node("a"));
        g.add_node("a", attrs([("back", true)]));
        assert_eq!(g.node_id("a"), Some(id));
        assert_eq!(g.node_name(id), "a");
    }

    #[test]
    fn iteration_orders_are_name_sorted_regardless_of_insertion() {
        let mut g = Graph::directed();
        for name in ["zeta", "alpha", "mike", "beta"] {
            g.add_node(name, AttrMap::new());
        }
        let ids: Vec<&str> = g.node_ids().collect();
        assert_eq!(ids, vec!["alpha", "beta", "mike", "zeta"]);
        g.add_edge("zeta", "alpha", AttrMap::new());
        g.add_edge("beta", "mike", AttrMap::new());
        g.add_edge("beta", "alpha", AttrMap::new());
        let edges: Vec<(&str, &str)> = g.edges().map(|(u, v, _)| (u, v)).collect();
        assert_eq!(
            edges,
            vec![("beta", "alpha"), ("beta", "mike"), ("zeta", "alpha")]
        );
    }

    #[test]
    fn iterator_variants_match_vec_apis() {
        let g = sample_directed();
        let from_iter: Vec<&str> = g.neighbors_iter("b").unwrap().collect();
        assert_eq!(from_iter, vec!["a", "c"]);
        let succ: Vec<&str> = g.successors_iter("a").unwrap().collect();
        assert_eq!(succ, vec!["b", "c"]);
        let pred: Vec<&str> = g.predecessors_iter("c").unwrap().collect();
        assert_eq!(pred, vec!["a", "b"]);
        assert!(g.successors_iter("missing").is_err());
    }

    #[test]
    fn id_level_adjacency() {
        let g = sample_directed();
        let a = g.node_id("a").unwrap();
        let b = g.node_id("b").unwrap();
        assert!(g.has_edge_by_id(a, b));
        assert!(!g.has_edge_by_id(b, a));
        assert_eq!(g.degree_by_id(a), 2);
        assert_eq!(g.successor_ids(a).len(), 2);
        assert_eq!(g.predecessor_ids(a).len(), 0);
        let neighbor_names: Vec<&str> = g.neighbor_ids(b).map(|id| g.node_name(id)).collect();
        assert_eq!(neighbor_names, vec!["a", "c"]);
        assert_eq!(g.node_id_list().len(), 3);
    }

    #[test]
    fn undirected_self_loop_listed_once() {
        let mut g = Graph::undirected();
        g.add_edge("x", "x", attrs([("w", 1i64)]));
        g.add_edge("x", "a", attrs([("w", 2i64)]));
        let edges: Vec<(&str, &str)> = g.edges().map(|(u, v, _)| (u, v)).collect();
        assert_eq!(edges, vec![("a", "x"), ("x", "x")]);
        assert_eq!(g.number_of_edges(), 2);
    }
}
