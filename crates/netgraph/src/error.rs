//! Error type for graph operations.

use std::fmt;

/// Errors raised by graph mutation and query operations.
///
/// The execution sandbox surfaces these to the error classifier, so the
/// variants intentionally distinguish "the entity does not exist" (which the
/// paper's Table 5 labels *imaginary graph attributes*) from argument
/// problems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node id was referenced that is not present in the graph.
    NodeNotFound(String),
    /// An edge (u, v) was referenced that is not present in the graph.
    EdgeNotFound(String, String),
    /// A node or edge attribute was referenced that does not exist.
    AttrNotFound {
        /// "node" or "edge".
        kind: &'static str,
        /// The owning entity (node id or "u->v").
        entity: String,
        /// The missing attribute name.
        attr: String,
    },
    /// An operation received an argument outside its domain
    /// (e.g. a negative group count, an empty node set for a subgraph).
    InvalidArgument(String),
    /// An algorithm precondition failed (e.g. no path between endpoints).
    Algorithm(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeNotFound(n) => write!(f, "node '{n}' is not in the graph"),
            GraphError::EdgeNotFound(u, v) => {
                write!(f, "edge ('{u}', '{v}') is not in the graph")
            }
            GraphError::AttrNotFound { kind, entity, attr } => {
                write!(f, "{kind} '{entity}' has no attribute '{attr}'")
            }
            GraphError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            GraphError::Algorithm(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_human_readable() {
        assert_eq!(
            GraphError::NodeNotFound("10.0.0.1".into()).to_string(),
            "node '10.0.0.1' is not in the graph"
        );
        assert_eq!(
            GraphError::EdgeNotFound("a".into(), "b".into()).to_string(),
            "edge ('a', 'b') is not in the graph"
        );
        let e = GraphError::AttrNotFound {
            kind: "node",
            entity: "a".into(),
            attr: "color".into(),
        };
        assert_eq!(e.to_string(), "node 'a' has no attribute 'color'");
    }
}
