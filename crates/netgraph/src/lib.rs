//! # netgraph
//!
//! A NetworkX-style property-graph library: the execution substrate for the
//! "NetworkX approach" of the NeMoEval reproduction. The crate provides
//!
//! * [`Graph`] — a directed or undirected simple graph with arbitrary
//!   attribute maps on the graph, nodes and edges,
//! * [`algo`] — traversal, shortest paths, connected components, degree and
//!   weight statistics, clustering/grouping, and coloring,
//! * [`json`] — a small, dependency-free JSON value type plus a node-link
//!   graph encoding (the format the strawman baseline pastes into prompts),
//! * [`generators`] — deterministic graph generators for tests and benches.
//!
//! ```
//! use netgraph::{Graph, attrs};
//! use netgraph::algo::degree::node_weight_totals;
//!
//! let mut g = Graph::directed();
//! g.add_edge("10.0.1.1", "10.0.2.7", attrs([("bytes", 1500i64)]));
//! g.add_edge("10.0.2.7", "10.0.3.3", attrs([("bytes", 800i64)]));
//! let totals = node_weight_totals(&g, "bytes").unwrap();
//! assert_eq!(totals["10.0.2.7"], 2300.0);
//! ```

#![warn(missing_docs)]

pub mod algo;
mod attr;
mod error;
mod generators;
mod graph;
pub mod intern;
pub mod json;
mod value;

pub use attr::{attrs, AttrMap, AttrMapExt};
pub use error::{GraphError, Result};
pub use generators::{binary_tree, complete_graph, cycle_graph, path_graph, star_graph};
pub use graph::{graphs_approx_eq, Graph, NodeId};
pub use intern::{Interner, Symbol};
pub use value::AttrValue;
