//! The NodeId shortest-path kernels must stay byte-identical to the
//! historical string-keyed implementation — same paths (including
//! tie-breaks), same lengths, same errors — mirroring PR 4's BFS/DFS port
//! discipline. The "model" here is an in-test copy of the pre-port
//! `shortest_path.rs` algorithms over the public string API.

use netgraph::algo::shortest_path::{
    dijkstra_path, hop_diameter, shortest_path, single_source_lengths,
};
use netgraph::{attrs, AttrValue, Graph};
use proptest::prelude::*;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

// ------------------------------------------------------------------ model
// A faithful copy of the pre-port string-keyed algorithms.

fn model_shortest_path(g: &Graph, source: &str, target: &str) -> Option<Vec<String>> {
    if !g.has_node(source) || !g.has_node(target) {
        return None;
    }
    if source == target {
        return Some(vec![source.to_string()]);
    }
    let mut prev: BTreeMap<String, String> = BTreeMap::new();
    let mut queue = VecDeque::new();
    queue.push_back(source.to_string());
    prev.insert(source.to_string(), source.to_string());
    while let Some(u) = queue.pop_front() {
        for v in g.successors(&u).unwrap() {
            if !prev.contains_key(&v) {
                prev.insert(v.clone(), u.clone());
                if v == target {
                    return Some(model_rebuild(&prev, source, target));
                }
                queue.push_back(v);
            }
        }
    }
    None
}

fn model_single_source(g: &Graph, source: &str) -> BTreeMap<String, usize> {
    let mut dist: BTreeMap<String, usize> = BTreeMap::new();
    let mut queue = VecDeque::new();
    dist.insert(source.to_string(), 0);
    queue.push_back(source.to_string());
    while let Some(u) = queue.pop_front() {
        let du = dist[&u];
        for v in g.successors(&u).unwrap() {
            if !dist.contains_key(&v) {
                dist.insert(v.clone(), du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

fn model_dijkstra(
    g: &Graph,
    source: &str,
    target: &str,
    weight: &str,
) -> Option<(Vec<String>, f64)> {
    #[derive(PartialEq)]
    struct Entry {
        cost: f64,
        node: String,
    }
    impl Eq for Entry {}
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            other
                .cost
                .partial_cmp(&self.cost)
                .unwrap_or(Ordering::Equal)
                .then_with(|| other.node.cmp(&self.node))
        }
    }
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    let mut dist: BTreeMap<String, f64> = BTreeMap::new();
    let mut prev: BTreeMap<String, String> = BTreeMap::new();
    let mut heap = BinaryHeap::new();
    dist.insert(source.to_string(), 0.0);
    heap.push(Entry {
        cost: 0.0,
        node: source.to_string(),
    });
    while let Some(Entry { cost, node }) = heap.pop() {
        if cost > *dist.get(&node).unwrap_or(&f64::INFINITY) {
            continue;
        }
        if node == target {
            let mut path = model_rebuild(&prev, source, target);
            if path.is_empty() {
                path = vec![source.to_string()];
            }
            return Some((path, cost));
        }
        for v in g.successors(&node).unwrap() {
            let w = g
                .get_edge_attr_opt(&node, &v, weight)
                .and_then(|a| a.as_f64())
                .unwrap_or(1.0);
            let next = cost + w;
            if next < *dist.get(&v).unwrap_or(&f64::INFINITY) {
                dist.insert(v.clone(), next);
                prev.insert(v.clone(), node.clone());
                heap.push(Entry {
                    cost: next,
                    node: v,
                });
            }
        }
    }
    None
}

fn model_rebuild(prev: &BTreeMap<String, String>, source: &str, target: &str) -> Vec<String> {
    let mut path = vec![target.to_string()];
    let mut cur = target.to_string();
    while cur != source {
        match prev.get(&cur) {
            Some(p) => {
                cur = p.clone();
                path.push(cur.clone());
            }
            None => break,
        }
    }
    path.reverse();
    path
}

// -------------------------------------------------------------- generator

/// A deterministic random graph over `n` nodes (dotted-quad names) with
/// weighted edges, plus some node removals to exercise id reuse.
fn build_graph(n: usize, directed: bool, edges: &[(usize, usize, i64)], drop: &[usize]) -> Graph {
    let mut g = if directed {
        Graph::directed()
    } else {
        Graph::undirected()
    };
    let name = |i: usize| format!("10.0.{}.{}", i / 8, i % 8);
    for i in 0..n {
        g.add_node(&name(i), attrs([("idx", AttrValue::Int(i as i64))]));
    }
    for &(u, v, w) in edges {
        let (u, v) = (u % n, v % n);
        if u != v {
            g.add_edge(&name(u), &name(v), attrs([("w", AttrValue::Int(w))]));
        }
    }
    for &d in drop {
        let _ = g.remove_node(&name(d % n));
    }
    g
}

proptest! {
    /// BFS paths, single-source length maps, Dijkstra paths/costs and the
    /// hop diameter all match the historical implementation exactly.
    #[test]
    fn kernels_match_model_on_random_graphs(
        n in 2usize..14,
        directed in 0u8..2,
        edges in prop::collection::vec((0usize..14, 0usize..14, 1i64..9), 0..40),
        drop in prop::collection::vec(0usize..14, 0..3),
        probes in prop::collection::vec((0usize..14, 0usize..14), 1..6),
    ) {
        let g = build_graph(n, directed == 1, &edges, &drop);
        let names: Vec<String> = g.node_ids().map(|s| s.to_string()).collect();
        prop_assume!(!names.is_empty());

        for &(a, b) in &probes {
            let source = &names[a % names.len()];
            let target = &names[b % names.len()];
            // BFS path.
            match (shortest_path(&g, source, target), model_shortest_path(&g, source, target)) {
                (Ok(path), Some(model)) => prop_assert_eq!(path, model),
                (Err(_), None) => {}
                (got, want) => {
                    return Err(format!("BFS mismatch {source}->{target}: {got:?} vs {want:?}"));
                }
            }
            // Dijkstra path and cost.
            match (dijkstra_path(&g, source, target, "w"), model_dijkstra(&g, source, target, "w")) {
                (Ok((path, cost)), Some((mpath, mcost))) => {
                    prop_assert_eq!(path, mpath);
                    prop_assert!((cost - mcost).abs() < 1e-12);
                }
                (Err(_), None) => {}
                (got, want) => {
                    return Err(format!("dijkstra mismatch {source}->{target}: {got:?} vs {want:?}"));
                }
            }
        }
        // Single-source maps from every node, and the diameter.
        let mut model_diameter = 0;
        for source in &names {
            let model = model_single_source(&g, source);
            prop_assert_eq!(single_source_lengths(&g, source).unwrap(), model.clone());
            model_diameter = model.values().copied().max().unwrap_or(0).max(model_diameter);
        }
        prop_assert_eq!(hop_diameter(&g).unwrap(), model_diameter);
    }
}
