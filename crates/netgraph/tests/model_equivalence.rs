//! Model-equivalence property tests for the interned NodeId graph core.
//!
//! The reference model below is a faithful copy of the historical
//! string-keyed representation (`BTreeMap` adjacency + `BTreeMap` edge
//! attributes, exactly as the pre-interning `Graph` stored them). Random
//! operation sequences are applied to both it and the real [`Graph`]; every
//! observable — node iteration order, edge iteration order, adjacency
//! lists, degrees, edge probes, attribute reads — must agree, which pins
//! the interned core to the seed behavior bit for bit.

use netgraph::{AttrMap, AttrMapExt, Graph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// The historical string-keyed graph representation, kept as an oracle.
#[derive(Default)]
struct RefGraph {
    directed: bool,
    nodes: BTreeMap<String, AttrMap>,
    succ: BTreeMap<String, BTreeSet<String>>,
    pred: BTreeMap<String, BTreeSet<String>>,
    edges: BTreeMap<(String, String), AttrMap>,
}

impl RefGraph {
    fn new(directed: bool) -> Self {
        RefGraph {
            directed,
            ..Default::default()
        }
    }

    fn edge_key(&self, u: &str, v: &str) -> (String, String) {
        if self.directed || u <= v {
            (u.to_string(), v.to_string())
        } else {
            (v.to_string(), u.to_string())
        }
    }

    fn add_node(&mut self, id: &str, attrs: AttrMap) {
        self.nodes.entry(id.to_string()).or_default().extend(attrs);
        self.succ.entry(id.to_string()).or_default();
        self.pred.entry(id.to_string()).or_default();
    }

    fn add_edge(&mut self, u: &str, v: &str, attrs: AttrMap) {
        self.add_node(u, AttrMap::new());
        self.add_node(v, AttrMap::new());
        self.succ.get_mut(u).unwrap().insert(v.to_string());
        self.pred.get_mut(v).unwrap().insert(u.to_string());
        if !self.directed {
            self.succ.get_mut(v).unwrap().insert(u.to_string());
            self.pred.get_mut(u).unwrap().insert(v.to_string());
        }
        let key = self.edge_key(u, v);
        self.edges.entry(key).or_default().extend(attrs);
    }

    fn remove_edge(&mut self, u: &str, v: &str) -> bool {
        let key = self.edge_key(u, v);
        if self.edges.remove(&key).is_none() {
            return false;
        }
        if let Some(s) = self.succ.get_mut(u) {
            s.remove(v);
        }
        if let Some(p) = self.pred.get_mut(v) {
            p.remove(u);
        }
        if !self.directed {
            if let Some(s) = self.succ.get_mut(v) {
                s.remove(u);
            }
            if let Some(p) = self.pred.get_mut(u) {
                p.remove(v);
            }
        }
        true
    }

    fn remove_node(&mut self, id: &str) -> bool {
        if !self.nodes.contains_key(id) {
            return false;
        }
        let out: Vec<String> = self
            .succ
            .get(id)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default();
        for v in out {
            self.remove_edge(id, &v);
        }
        let inc: Vec<String> = self
            .pred
            .get(id)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default();
        for u in inc {
            self.remove_edge(&u, id);
        }
        self.nodes.remove(id);
        self.succ.remove(id);
        self.pred.remove(id);
        true
    }

    fn neighbors(&self, id: &str) -> Vec<String> {
        let mut set: BTreeSet<String> = BTreeSet::new();
        if let Some(s) = self.succ.get(id) {
            set.extend(s.iter().cloned());
        }
        if let Some(p) = self.pred.get(id) {
            set.extend(p.iter().cloned());
        }
        set.into_iter().collect()
    }
}

fn node_pool() -> Vec<String> {
    // Deliberately unsorted and with shared prefixes to stress name-order
    // bookkeeping.
    [
        "zeta",
        "10.0.1.9",
        "alpha",
        "10.0.1.10",
        "mid",
        "a",
        "zz",
        "10.10.0.1",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

fn apply_random_ops(seed: u64, directed: bool, ops: usize) -> (Graph, RefGraph) {
    let mut rng = StdRng::seed_from_u64(seed);
    let pool = node_pool();
    let mut g = if directed {
        Graph::directed()
    } else {
        Graph::undirected()
    };
    let mut r = RefGraph::new(directed);
    for step in 0..ops {
        let u = pool[rng.gen_range(0..pool.len())].clone();
        let v = pool[rng.gen_range(0..pool.len())].clone();
        match rng.gen_range(0..10u32) {
            0..=2 => {
                let mut attrs = AttrMap::new();
                attrs.set("step", step as i64);
                g.add_node(&u, attrs.clone());
                r.add_node(&u, attrs);
            }
            3..=6 => {
                let mut attrs = AttrMap::new();
                attrs.set("w", rng.gen_range(0..100i64));
                g.add_edge(&u, &v, attrs.clone());
                r.add_edge(&u, &v, attrs);
            }
            7 => {
                let removed = r.remove_edge(&u, &v);
                assert_eq!(
                    g.remove_edge(&u, &v).is_ok(),
                    removed,
                    "remove_edge({u},{v})"
                );
            }
            8 => {
                let removed = r.remove_node(&u);
                assert_eq!(g.remove_node(&u).is_ok(), removed, "remove_node({u})");
            }
            _ => {
                if g.has_node(&u) {
                    g.set_node_attr(&u, "mark", step as i64).unwrap();
                    r.nodes.get_mut(&u).unwrap().set("mark", step as i64);
                }
            }
        }
    }
    (g, r)
}

fn assert_equivalent(g: &Graph, r: &RefGraph) {
    // Node iteration order and attributes.
    let g_nodes: Vec<(&str, &AttrMap)> = g.nodes().collect();
    let r_nodes: Vec<(&str, &AttrMap)> = r.nodes.iter().map(|(k, v)| (k.as_str(), v)).collect();
    assert_eq!(g_nodes, r_nodes, "node iteration diverged");

    // Edge iteration order and attributes.
    let g_edges: Vec<(&str, &str, &AttrMap)> = g.edges().collect();
    let r_edges: Vec<(&str, &str, &AttrMap)> = r
        .edges
        .iter()
        .map(|((u, v), a)| (u.as_str(), v.as_str(), a))
        .collect();
    assert_eq!(g_edges, r_edges, "edge iteration diverged");
    assert_eq!(g.number_of_nodes(), r.nodes.len());
    assert_eq!(g.number_of_edges(), r.edges.len());

    // Per-node adjacency, degrees, and the allocation-free iterators.
    for id in r.nodes.keys() {
        let succ: Vec<String> = r.succ[id].iter().cloned().collect();
        let pred: Vec<String> = r.pred[id].iter().cloned().collect();
        assert_eq!(g.successors(id).unwrap(), succ, "successors({id})");
        assert_eq!(g.predecessors(id).unwrap(), pred, "predecessors({id})");
        assert_eq!(g.neighbors(id).unwrap(), r.neighbors(id), "neighbors({id})");
        let iter_succ: Vec<&str> = g.successors_iter(id).unwrap().collect();
        assert_eq!(
            iter_succ,
            succ.iter().map(String::as_str).collect::<Vec<_>>()
        );
        let iter_neigh: Vec<&str> = g.neighbors_iter(id).unwrap().collect();
        assert_eq!(
            iter_neigh,
            r.neighbors(id)
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>()
        );
        assert_eq!(g.out_degree(id).unwrap(), r.succ[id].len());
        assert_eq!(g.in_degree(id).unwrap(), r.pred[id].len());
        let expected_degree = if r.directed {
            r.succ[id].len() + r.pred[id].len()
        } else {
            r.succ[id].len()
        };
        assert_eq!(g.degree(id).unwrap(), expected_degree, "degree({id})");
    }

    // Full edge-probe matrix, including absent nodes.
    let mut pool = node_pool();
    pool.push("never-added".to_string());
    for u in &pool {
        for v in &pool {
            let expected = r.edges.contains_key(&r.edge_key(u, v))
                && r.succ.get(u).map(|s| s.contains(v)).unwrap_or(false);
            assert_eq!(g.has_edge(u, v), expected, "has_edge({u},{v})");
            assert_eq!(
                g.get_edge_attr_opt(u, v, "w"),
                if expected {
                    r.edges[&r.edge_key(u, v)].get("w")
                } else {
                    None
                }
            );
        }
    }
}

#[test]
fn random_directed_graphs_match_the_string_keyed_model() {
    for seed in 0..40 {
        let (g, r) = apply_random_ops(seed, true, 120);
        assert_equivalent(&g, &r);
    }
}

#[test]
fn random_undirected_graphs_match_the_string_keyed_model() {
    for seed in 100..140 {
        let (g, r) = apply_random_ops(seed, false, 120);
        assert_equivalent(&g, &r);
    }
}

#[test]
fn derived_views_match_after_random_ops() {
    for seed in 200..215 {
        let (g, r) = apply_random_ops(seed, true, 80);
        // reverse() flips every edge.
        let rev = g.reverse();
        assert_eq!(rev.number_of_edges(), g.number_of_edges());
        for (u, v, attrs) in g.edges() {
            assert_eq!(rev.edge_attrs(v, u).unwrap(), attrs);
        }
        // subgraph() keeps exactly the induced structure.
        let keep: Vec<&str> = r
            .nodes
            .keys()
            .take(r.nodes.len() / 2)
            .map(String::as_str)
            .collect();
        let sub = g.subgraph(keep.iter().copied());
        for (u, v, _) in sub.edges() {
            assert!(keep.contains(&u) && keep.contains(&v));
            assert!(g.has_edge(u, v));
        }
        // to_undirected() merges directions.
        let und = g.to_undirected();
        for (u, v, _) in g.edges() {
            assert!(und.has_edge(u, v) && und.has_edge(v, u));
        }
    }
}

#[test]
fn clone_and_equality_survive_random_ops() {
    for seed in 300..310 {
        let (g, _) = apply_random_ops(seed, seed % 2 == 0, 100);
        let clone = g.clone();
        assert_eq!(g, clone);
        // Rebuild from iteration — different interner id assignment, same
        // semantic graph.
        let mut rebuilt = if g.is_directed() {
            Graph::directed()
        } else {
            Graph::undirected()
        };
        let mut node_names: Vec<String> = g.node_ids().map(str::to_string).collect();
        node_names.reverse();
        for id in &node_names {
            rebuilt.add_node(id, g.node_attrs(id).unwrap().clone());
        }
        for (u, v, attrs) in g.edges() {
            rebuilt.add_edge(u, v, attrs.clone());
        }
        assert_eq!(g, rebuilt);
        assert!(netgraph::graphs_approx_eq(&g, &rebuilt));
    }
}
