//! Property tests for the SQL substrate: pretty-printing is the inverse of
//! parsing up to AST equality, over randomly generated statements.

use netgraph::AttrValue;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlengine::ast::{
    AggregateFunc, BinaryOp, DeleteStmt, Expr, InsertStmt, JoinKind, OrderKey, SelectItem,
    SelectStmt, Statement, TableRef, UpdateStmt,
};
use sqlengine::parse_statement;

const TABLES: [&str; 3] = ["nodes", "edges", "flows"];
const COLUMNS: [&str; 6] = ["id", "source", "target", "bytes", "packets", "prefix16"];
const FUNCTIONS: [&str; 4] = ["LENGTH", "UPPER", "ABS", "COALESCE"];
const STRINGS: [&str; 5] = ["15.76%", "app:production", "it's quoted", "", "10.2"];

fn pick<'a, T>(rng: &mut StdRng, pool: &'a [T]) -> &'a T {
    &pool[rng.gen_range(0..pool.len())]
}

fn arb_literal(rng: &mut StdRng) -> Expr {
    Expr::Literal(match rng.gen_range(0..5u32) {
        0 => AttrValue::Null,
        1 => AttrValue::Bool(rng.gen_range(0..2) == 1),
        2 => AttrValue::Int(rng.gen_range(0..1_000_000i64)),
        3 => AttrValue::Float(rng.gen_range(0.0..1.0e6f64)),
        _ => AttrValue::Str((*pick(rng, &STRINGS)).into()),
    })
}

fn arb_column(rng: &mut StdRng) -> Expr {
    Expr::Column {
        table: if rng.gen_range(0..4u32) == 0 {
            Some(pick(rng, &TABLES).to_string())
        } else {
            None
        },
        name: pick(rng, &COLUMNS).to_string(),
    }
}

fn arb_expr(rng: &mut StdRng, depth: u32) -> Expr {
    if depth == 0 {
        return if rng.gen_range(0..2u32) == 0 {
            arb_literal(rng)
        } else {
            arb_column(rng)
        };
    }
    let sub = |rng: &mut StdRng| Box::new(arb_expr(rng, depth - 1));
    match rng.gen_range(0..10u32) {
        0 => arb_literal(rng),
        1 => arb_column(rng),
        2 => Expr::Neg(sub(rng)),
        3 => Expr::Not(sub(rng)),
        4 => {
            const OPS: [BinaryOp; 13] = [
                BinaryOp::Add,
                BinaryOp::Sub,
                BinaryOp::Mul,
                BinaryOp::Div,
                BinaryOp::Mod,
                BinaryOp::Eq,
                BinaryOp::NotEq,
                BinaryOp::Lt,
                BinaryOp::LtEq,
                BinaryOp::Gt,
                BinaryOp::GtEq,
                BinaryOp::And,
                BinaryOp::Or,
            ];
            Expr::Binary {
                left: sub(rng),
                op: *pick(rng, &OPS),
                right: sub(rng),
            }
        }
        5 => Expr::IsNull {
            expr: sub(rng),
            negated: rng.gen_range(0..2) == 1,
        },
        6 => Expr::InList {
            expr: sub(rng),
            list: (0..rng.gen_range(1..4usize))
                .map(|_| arb_expr(rng, depth - 1))
                .collect(),
            negated: rng.gen_range(0..2) == 1,
        },
        7 => Expr::Between {
            expr: sub(rng),
            low: sub(rng),
            high: sub(rng),
            negated: rng.gen_range(0..2) == 1,
        },
        8 => {
            const AGGS: [AggregateFunc; 5] = [
                AggregateFunc::Count,
                AggregateFunc::Sum,
                AggregateFunc::Avg,
                AggregateFunc::Min,
                AggregateFunc::Max,
            ];
            let func = *pick(rng, &AGGS);
            // `FUNC(*)` only parses for COUNT.
            let arg = if func == AggregateFunc::Count && rng.gen_range(0..2) == 0 {
                None
            } else {
                Some(sub(rng))
            };
            Expr::Aggregate { func, arg }
        }
        _ => match rng.gen_range(0..3u32) {
            0 => Expr::Function {
                name: pick(rng, &FUNCTIONS).to_string(),
                args: (0..rng.gen_range(0..3usize))
                    .map(|_| arb_expr(rng, depth - 1))
                    .collect(),
            },
            1 => Expr::Like {
                expr: sub(rng),
                pattern: Box::new(Expr::Literal(AttrValue::Str((*pick(rng, &STRINGS)).into()))),
                negated: rng.gen_range(0..2) == 1,
            },
            _ => Expr::Case {
                arms: (0..rng.gen_range(1..3usize))
                    .map(|_| (arb_expr(rng, depth - 1), arb_expr(rng, depth - 1)))
                    .collect(),
                otherwise: if rng.gen_range(0..2) == 0 {
                    Some(sub(rng))
                } else {
                    None
                },
            },
        },
    }
}

fn arb_table_ref(rng: &mut StdRng) -> TableRef {
    TableRef {
        name: pick(rng, &TABLES).to_string(),
        alias: if rng.gen_range(0..3u32) == 0 {
            Some(format!("t{}", rng.gen_range(0..3u32)))
        } else {
            None
        },
    }
}

fn arb_statement(rng: &mut StdRng) -> Statement {
    match rng.gen_range(0..4u32) {
        0 => {
            let group_by: Vec<Expr> = (0..rng.gen_range(0..3usize))
                .map(|_| arb_column(rng))
                .collect();
            Statement::Select(SelectStmt {
                distinct: rng.gen_range(0..4u32) == 0,
                items: (0..rng.gen_range(1..4usize))
                    .map(|_| {
                        if rng.gen_range(0..6u32) == 0 {
                            SelectItem::Wildcard
                        } else {
                            SelectItem::Expr {
                                expr: arb_expr(rng, 2),
                                alias: if rng.gen_range(0..2) == 0 {
                                    Some(format!("a{}", rng.gen_range(0..5u32)))
                                } else {
                                    None
                                },
                            }
                        }
                    })
                    .collect(),
                from: arb_table_ref(rng),
                joins: (0..rng.gen_range(0..2usize))
                    .map(|_| sqlengine::ast::Join {
                        kind: if rng.gen_range(0..2) == 0 {
                            JoinKind::Inner
                        } else {
                            JoinKind::Left
                        },
                        table: arb_table_ref(rng),
                        on: arb_expr(rng, 1),
                    })
                    .collect(),
                where_clause: if rng.gen_range(0..2) == 0 {
                    Some(arb_expr(rng, 2))
                } else {
                    None
                },
                // HAVING is only valid (and only printed) with GROUP BY.
                having: if !group_by.is_empty() && rng.gen_range(0..2) == 0 {
                    Some(arb_expr(rng, 1))
                } else {
                    None
                },
                group_by,
                order_by: (0..rng.gen_range(0..3usize))
                    .map(|_| OrderKey {
                        expr: arb_column(rng),
                        ascending: rng.gen_range(0..2) == 0,
                    })
                    .collect(),
                limit: if rng.gen_range(0..2) == 0 {
                    Some(rng.gen_range(0..100usize))
                } else {
                    None
                },
            })
        }
        1 => Statement::Update(UpdateStmt {
            table: pick(rng, &TABLES).to_string(),
            assignments: (0..rng.gen_range(1..3usize))
                .map(|_| (pick(rng, &COLUMNS).to_string(), arb_expr(rng, 2)))
                .collect(),
            where_clause: if rng.gen_range(0..2) == 0 {
                Some(arb_expr(rng, 2))
            } else {
                None
            },
        }),
        2 => {
            let n_columns = rng.gen_range(0..3usize);
            let row_width = n_columns.max(1);
            Statement::Insert(InsertStmt {
                table: pick(rng, &TABLES).to_string(),
                columns: (0..n_columns).map(|i| format!("c{i}")).collect(),
                rows: (0..rng.gen_range(1..3usize))
                    .map(|_| (0..row_width).map(|_| arb_literal(rng)).collect())
                    .collect(),
            })
        }
        _ => Statement::Delete(DeleteStmt {
            table: pick(rng, &TABLES).to_string(),
            where_clause: if rng.gen_range(0..2) == 0 {
                Some(arb_expr(rng, 2))
            } else {
                None
            },
        }),
    }
}

proptest! {
    /// parse(pretty_print(ast)) == ast for arbitrary statements.
    #[test]
    fn pretty_print_parse_round_trip(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ast = arb_statement(&mut rng);
        let printed = ast.to_string();
        let reparsed = match parse_statement(&printed) {
            Ok(ast) => ast,
            Err(e) => {
                prop_assert!(false, "pretty-printed `{}` failed to parse: {}", printed, e);
                unreachable!()
            }
        };
        prop_assert!(
            ast == reparsed,
            "round trip changed `{}`: {:?} vs {:?}",
            printed,
            ast,
            reparsed
        );
    }

    /// Pretty-printed text re-prints to itself (printing is a fixed point
    /// after one round trip).
    #[test]
    fn printing_is_stable(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ast = arb_statement(&mut rng);
        let printed = ast.to_string();
        let reprinted = parse_statement(&printed).unwrap().to_string();
        prop_assert_eq!(printed, reprinted);
    }
}
