//! Equivalence property tests for the compiled SQL executor's fast paths.
//!
//! The executor switches between a hash join and a nested loop (and
//! between hash grouping and a comparison scan) based on whether the key
//! values are exactly hashable. These tests drive random tables through
//! both shapes and check the engine's output row-by-row against reference
//! results computed directly with `AttrValue::approx_eq` — the semantics
//! the historical row-at-a-time interpreter implemented. The compiled
//! `LIKE` matcher is checked against the naive recursive definition.

use dataframe::{Column, DataFrame};
use netgraph::AttrValue;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlengine::functions::LikePattern;
use sqlengine::Database;

/// Random key value. `hashable_only` restricts to the exactly-hashable
/// domain (strings / small ints / bools / nulls) so the fast path is
/// guaranteed to engage; otherwise non-integral floats and huge integers
/// force the fallback.
fn arb_key(rng: &mut StdRng, hashable_only: bool) -> AttrValue {
    let upper = if hashable_only { 4 } else { 6 };
    match rng.gen_range(0..upper) {
        0 => AttrValue::Null,
        1 => AttrValue::Int(rng.gen_range(0..6i64)),
        2 => AttrValue::from(["a", "b", "c", "d"][rng.gen_range(0..4usize)]),
        3 => AttrValue::Bool(rng.gen_range(0..2) == 1),
        4 => AttrValue::Float(rng.gen_range(0..12i64) as f64 / 2.0),
        _ => AttrValue::Int(10_000_000_000 + rng.gen_range(0..3i64)),
    }
}

fn key_table(name: &str, keys: &[AttrValue]) -> (String, DataFrame) {
    let tags: Vec<AttrValue> = (0..keys.len())
        .map(|i| AttrValue::from(format!("{name}{i}")))
        .collect();
    (
        name.to_string(),
        DataFrame::from_columns(vec![
            ("k".to_string(), Column::from_iter(keys.to_vec())),
            ("tag".to_string(), Column::from_iter(tags)),
        ])
        .unwrap(),
    )
}

/// Reference inner/left equi-join: the literal nested loop with
/// `approx_eq`, in left-row-then-right-row order.
fn reference_join(
    left: &[AttrValue],
    right: &[AttrValue],
    left_join: bool,
) -> Vec<(usize, Option<usize>)> {
    let mut out = Vec::new();
    for (li, lk) in left.iter().enumerate() {
        let mut matched = false;
        for (ri, rk) in right.iter().enumerate() {
            if lk.approx_eq(rk) {
                out.push((li, Some(ri)));
                matched = true;
            }
        }
        if !matched && left_join {
            out.push((li, None));
        }
    }
    out
}

fn run_join_case(seed: u64, hashable_only: bool, left_join: bool) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_left = rng.gen_range(0..14);
    let n_right = rng.gen_range(0..14);
    let left_keys: Vec<AttrValue> = (0..n_left)
        .map(|_| arb_key(&mut rng, hashable_only))
        .collect();
    let right_keys: Vec<AttrValue> = (0..n_right)
        .map(|_| arb_key(&mut rng, hashable_only))
        .collect();

    let mut db = Database::new();
    let (name, frame) = key_table("l", &left_keys);
    db.create_table(&name, frame);
    let (name, frame) = key_table("r", &right_keys);
    db.create_table(&name, frame);

    let sql = if left_join {
        "SELECT l.tag, r.tag FROM l LEFT JOIN r ON l.k = r.k"
    } else {
        "SELECT l.tag, r.tag FROM l JOIN r ON l.k = r.k"
    };
    let out = db.execute(sql).unwrap().rows().unwrap().clone();
    let expected = reference_join(&left_keys, &right_keys, left_join);
    assert_eq!(out.n_rows(), expected.len(), "row count (seed {seed})");
    for (row, (li, ri)) in expected.iter().enumerate() {
        assert_eq!(
            out.value(row, "tag").unwrap(),
            &AttrValue::from(format!("l{li}")),
            "left tag at row {row} (seed {seed})"
        );
        let want = match ri {
            Some(ri) => AttrValue::from(format!("r{ri}")),
            None => AttrValue::Null,
        };
        assert_eq!(
            out.value(row, "tag_1").unwrap(),
            &want,
            "right tag at row {row} (seed {seed})"
        );
    }
}

#[test]
fn hash_join_agrees_with_reference_nested_loop() {
    for seed in 0..60 {
        run_join_case(seed, true, false);
        run_join_case(seed, true, true);
    }
}

#[test]
fn fallback_join_agrees_with_reference_nested_loop() {
    for seed in 100..160 {
        run_join_case(seed, false, false);
        run_join_case(seed, false, true);
    }
}

/// Reference grouping: first-match scan with `approx_eq`, first-seen order
/// — the historical algorithm.
fn reference_groups(keys: &[AttrValue]) -> Vec<(AttrValue, usize)> {
    let mut groups: Vec<(AttrValue, usize)> = Vec::new();
    for key in keys {
        match groups.iter_mut().find(|(k, _)| k.approx_eq(key)) {
            Some((_, n)) => *n += 1,
            None => groups.push((key.clone(), 1)),
        }
    }
    groups
}

#[test]
fn hash_grouping_agrees_with_reference_scan() {
    for seed in 0..80u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let hashable_only = seed % 2 == 0;
        let n = rng.gen_range(0..25);
        let keys: Vec<AttrValue> = (0..n).map(|_| arb_key(&mut rng, hashable_only)).collect();
        let mut db = Database::new();
        db.create_table(
            "t",
            DataFrame::from_columns(vec![("k".to_string(), Column::from_iter(keys.clone()))])
                .unwrap(),
        );
        let out = db
            .execute("SELECT k, COUNT(*) AS n FROM t GROUP BY k")
            .unwrap()
            .rows()
            .unwrap()
            .clone();
        let expected = reference_groups(&keys);
        assert_eq!(out.n_rows(), expected.len(), "group count (seed {seed})");
        for (row, (key, count)) in expected.iter().enumerate() {
            assert!(
                out.value(row, "k").unwrap().approx_eq(key),
                "group key order diverged at row {row} (seed {seed})"
            );
            assert_eq!(
                out.value(row, "n").unwrap(),
                &AttrValue::Int(*count as i64),
                "group size at row {row} (seed {seed})"
            );
        }
    }
}

/// The naive recursive LIKE definition the engine historically used.
fn naive_like(text: &str, pattern: &str) -> bool {
    fn rec(t: &[char], p: &[char]) -> bool {
        match p.split_first() {
            None => t.is_empty(),
            Some(('%', rest)) => (0..=t.len()).any(|skip| rec(&t[skip..], rest)),
            Some(('_', rest)) => !t.is_empty() && rec(&t[1..], rest),
            Some((c, rest)) => t.first() == Some(c) && rec(&t[1..], rest),
        }
    }
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&t, &p)
}

#[test]
fn compiled_like_agrees_with_naive_recursion() {
    let alphabet = ['a', 'b', '%', '_', '.', '5'];
    let mut rng = StdRng::seed_from_u64(42);
    for _ in 0..4000 {
        let text: String = (0..rng.gen_range(0..8))
            .map(|_| alphabet[rng.gen_range(0..4usize)])
            .collect();
        let pattern: String = (0..rng.gen_range(0..8))
            .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
            .collect();
        let compiled = LikePattern::compile(&pattern);
        assert_eq!(
            compiled.matches(&text),
            naive_like(&text, &pattern),
            "LIKE diverged: text={text:?} pattern={pattern:?}"
        );
    }
}

#[test]
fn compiled_like_handles_pathological_patterns_quickly() {
    // The recursive definition is exponential on stacked `%`s; the
    // compiled matcher must stay linear-ish and agree on the verdict.
    let text = "a".repeat(200);
    let pattern = format!("{}b", "%a".repeat(30));
    let compiled = LikePattern::compile(&pattern);
    assert!(!compiled.matches(&text));
    let pattern = format!("{}a", "%a".repeat(30));
    let compiled = LikePattern::compile(&pattern);
    assert!(compiled.matches(&text));
}

#[test]
fn join_on_i64_min_key_does_not_panic() {
    // Regression: `value_key` once classified keys with `i.abs()`, which
    // overflows (and panics in debug builds) on `i64::MIN`.
    let mut db = Database::new();
    db.create_table(
        "a",
        DataFrame::from_columns(vec![("k".to_string(), Column::from_values([i64::MIN, 7]))])
            .unwrap(),
    );
    db.create_table(
        "b",
        DataFrame::from_columns(vec![("k".to_string(), Column::from_values([i64::MIN, 7]))])
            .unwrap(),
    );
    let out = db
        .execute("SELECT a.k FROM a JOIN b ON a.k = b.k")
        .unwrap()
        .rows()
        .unwrap()
        .clone();
    assert_eq!(out.n_rows(), 2);
}
