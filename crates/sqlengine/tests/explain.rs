//! Golden-output tests for `EXPLAIN`: the rendered plan is part of the
//! engine's contract (operators read it to see whether a join hashed or
//! looped and where a predicate runs), so these pin exact line-by-line
//! output.

use dataframe::{Column, DataFrame};
use sqlengine::{parse_statement, Database};

fn traffic_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        "nodes",
        DataFrame::from_columns(vec![
            ("id".to_string(), Column::from_values(["a", "b", "c"])),
            (
                "prefix16".to_string(),
                Column::from_values(["15.76", "15.76", "10.2"]),
            ),
        ])
        .unwrap(),
    );
    db.create_table(
        "edges",
        DataFrame::from_columns(vec![
            ("source".to_string(), Column::from_values(["a", "b"])),
            ("target".to_string(), Column::from_values(["b", "c"])),
            ("bytes".to_string(), Column::from_values([10i64, 20])),
        ])
        .unwrap(),
    );
    db
}

fn plan_lines(db: &mut Database, sql: &str) -> Vec<String> {
    let result = db.execute(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
    let frame = result.rows().expect("EXPLAIN returns rows");
    assert_eq!(frame.column_names(), vec!["plan"]);
    (0..frame.n_rows())
        .map(|i| {
            frame
                .value(i, "plan")
                .unwrap()
                .as_str()
                .expect("plan lines are strings")
                .to_string()
        })
        .collect()
}

#[test]
fn explain_scan_with_pushed_down_where() {
    let mut db = traffic_db();
    let lines = plan_lines(
        &mut db,
        "EXPLAIN SELECT id FROM nodes WHERE prefix16 LIKE '15.%' ORDER BY id LIMIT 2",
    );
    assert_eq!(
        lines,
        vec![
            "select",
            "  scan nodes",
            "  where (pushed down to scan): (prefix16 LIKE '15.%')",
            "  project: id",
            "  order by: id ASC",
            "  limit: 2",
        ]
    );
}

#[test]
fn explain_hash_equi_join_with_grouping() {
    let mut db = traffic_db();
    let lines = plan_lines(
        &mut db,
        "EXPLAIN SELECT n.prefix16, SUM(e.bytes) AS total FROM edges e \
         JOIN nodes n ON e.source = n.id WHERE e.bytes > 5 \
         GROUP BY n.prefix16 HAVING SUM(e.bytes) > 10 ORDER BY total DESC",
    );
    assert_eq!(
        lines,
        vec![
            "select",
            "  scan edges AS e",
            "  hash equi-join nodes AS n ON (e.source = n.id)",
            "  where (post-join filter): (e.bytes > 5)",
            "  group by (hash): n.prefix16",
            "  having: (SUM(e.bytes) > 10)",
            "  project: n.prefix16, SUM(e.bytes) AS total",
            "  order by: total DESC",
        ]
    );
}

#[test]
fn explain_non_equi_join_is_a_nested_loop() {
    let mut db = traffic_db();
    let lines = plan_lines(
        &mut db,
        "EXPLAIN SELECT * FROM edges e LEFT JOIN nodes n ON e.bytes > 15",
    );
    assert_eq!(
        lines,
        vec![
            "select",
            "  scan edges AS e",
            "  left nested-loop join nodes AS n ON (e.bytes > 15)",
            "  project: *",
        ]
    );
}

#[test]
fn explain_implicit_aggregation_and_distinct() {
    let mut db = traffic_db();
    let lines = plan_lines(&mut db, "EXPLAIN SELECT COUNT(*) AS n FROM edges");
    assert_eq!(
        lines,
        vec![
            "select",
            "  scan edges",
            "  aggregate: single group",
            "  project: COUNT(*) AS n",
        ]
    );
    let lines = plan_lines(&mut db, "EXPLAIN SELECT DISTINCT prefix16 FROM nodes");
    assert_eq!(
        lines,
        vec![
            "select",
            "  scan nodes",
            "  project: prefix16",
            "  distinct",
        ]
    );
}

#[test]
fn explain_mutations() {
    let mut db = traffic_db();
    let lines = plan_lines(
        &mut db,
        "EXPLAIN UPDATE nodes SET prefix16 = '0.0' WHERE id = 'a'",
    );
    assert_eq!(
        lines,
        vec![
            "update nodes",
            "  set prefix16 = '0.0'",
            "  where: (id = 'a')",
        ]
    );
    let lines = plan_lines(&mut db, "EXPLAIN DELETE FROM edges");
    assert_eq!(lines, vec!["delete from edges", "  all rows"]);
    let lines = plan_lines(
        &mut db,
        "EXPLAIN INSERT INTO nodes (id, prefix16) VALUES ('d', '10.3'), ('e', '10.3')",
    );
    assert_eq!(
        lines,
        vec![
            "insert into nodes",
            "  columns: id, prefix16",
            "  values: 2 row(s)",
        ]
    );
}

#[test]
fn explain_does_not_execute_the_statement() {
    let mut db = traffic_db();
    plan_lines(&mut db, "EXPLAIN DELETE FROM edges");
    let count = db
        .execute("SELECT COUNT(*) AS n FROM edges")
        .unwrap()
        .rows()
        .unwrap()
        .value(0, "n")
        .unwrap()
        .as_i64();
    assert_eq!(count, Some(2));
}

#[test]
fn explain_errors_on_unknown_tables_and_nesting() {
    let mut db = traffic_db();
    assert!(db.execute("EXPLAIN SELECT * FROM ghosts").is_err());
    assert!(db.execute("EXPLAIN EXPLAIN SELECT * FROM nodes").is_err());
}

#[test]
fn explain_display_round_trips_through_the_parser() {
    let sql = "EXPLAIN SELECT source, SUM(bytes) AS total FROM edges \
               GROUP BY source ORDER BY total DESC LIMIT 3";
    let ast = parse_statement(sql).unwrap();
    let printed = ast.to_string();
    assert!(printed.starts_with("EXPLAIN SELECT"));
    assert_eq!(parse_statement(&printed).unwrap(), ast);
}
