//! End-to-end and property tests for the SQL engine, exercising it the way
//! the NeMoEval golden SQL programs do: node/edge tables for a communication
//! graph, analytical SELECTs and state-mutating UPDATE/DELETE scripts.

use dataframe::{Column, DataFrame};
use netgraph::AttrValue;
use proptest::prelude::*;
use sqlengine::{Database, SqlError};

/// A small communication graph: nodes with IP ids and roles, edges with
/// byte/packet weights.
fn comm_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        "nodes",
        DataFrame::from_columns(vec![
            (
                "id".to_string(),
                Column::from_values([
                    "15.76.0.1",
                    "15.76.0.2",
                    "15.76.1.9",
                    "10.2.0.1",
                    "10.2.0.2",
                    "10.3.7.7",
                ]),
            ),
            (
                "role".to_string(),
                Column::from_values(["server", "server", "client", "client", "client", "server"]),
            ),
        ])
        .unwrap(),
    );
    db.create_table(
        "edges",
        DataFrame::from_columns(vec![
            (
                "source".to_string(),
                Column::from_values([
                    "15.76.0.1",
                    "15.76.0.2",
                    "15.76.1.9",
                    "10.2.0.1",
                    "10.2.0.2",
                    "10.2.0.1",
                ]),
            ),
            (
                "target".to_string(),
                Column::from_values([
                    "10.2.0.1",
                    "10.2.0.2",
                    "10.3.7.7",
                    "15.76.0.1",
                    "15.76.1.9",
                    "10.3.7.7",
                ]),
            ),
            (
                "bytes".to_string(),
                Column::from_values([1200i64, 900, 450, 3000, 150, 600]),
            ),
            (
                "connections".to_string(),
                Column::from_values([3i64, 2, 1, 9, 1, 2]),
            ),
        ])
        .unwrap(),
    );
    db
}

#[test]
fn label_nodes_with_prefix_via_update() {
    // "Add a label app:production to nodes with address prefix 15.76"
    let mut db = comm_db();
    db.execute("UPDATE nodes SET role = 'app:production' WHERE id LIKE '15.76%'")
        .unwrap();
    let labelled = db
        .execute("SELECT COUNT(*) AS n FROM nodes WHERE role = 'app:production'")
        .unwrap();
    assert_eq!(
        labelled.rows().unwrap().value(0, "n").unwrap(),
        &AttrValue::Int(3)
    );
}

#[test]
fn per_prefix_traffic_report() {
    // "Total bytes exchanged per /16 prefix of the source"
    let mut db = comm_db();
    let out = db
        .execute(
            "SELECT IP_PREFIX(source, 2) AS prefix, SUM(bytes) AS total \
             FROM edges GROUP BY IP_PREFIX(source, 2) ORDER BY total DESC",
        )
        .unwrap();
    let rows = out.rows().unwrap();
    assert_eq!(rows.n_rows(), 2);
    assert_eq!(rows.value(0, "prefix").unwrap().as_str(), Some("10.2"));
    assert_eq!(rows.value(0, "total").unwrap().as_f64(), Some(3750.0));
    assert_eq!(rows.value(1, "total").unwrap().as_f64(), Some(2550.0));
}

#[test]
fn top_talker_with_join() {
    // "Which server sends the most bytes?"
    let mut db = comm_db();
    let out = db
        .execute(
            "SELECT e.source AS node, SUM(e.bytes) AS sent FROM edges e \
             JOIN nodes n ON e.source = n.id WHERE n.role = 'server' \
             GROUP BY e.source ORDER BY sent DESC LIMIT 1",
        )
        .unwrap();
    let rows = out.rows().unwrap();
    assert_eq!(rows.value(0, "node").unwrap().as_str(), Some("15.76.0.1"));
}

#[test]
fn node_degree_via_union_style_counting() {
    // Out-degree per node from the edge table.
    let mut db = comm_db();
    let out = db
        .execute(
            "SELECT source, COUNT(*) AS out_degree FROM edges GROUP BY source \
             ORDER BY out_degree DESC, source ASC",
        )
        .unwrap();
    let rows = out.rows().unwrap();
    assert_eq!(rows.value(0, "source").unwrap().as_str(), Some("10.2.0.1"));
    assert_eq!(rows.value(0, "out_degree").unwrap(), &AttrValue::Int(2));
}

#[test]
fn delete_light_edges_then_count() {
    let mut db = comm_db();
    let results = db
        .execute_script(
            "DELETE FROM edges WHERE bytes < 500; SELECT COUNT(*) AS remaining FROM edges;",
        )
        .unwrap();
    assert_eq!(results[0].affected(), Some(2));
    assert_eq!(
        results[1].rows().unwrap().value(0, "remaining").unwrap(),
        &AttrValue::Int(4)
    );
}

#[test]
fn state_comparison_detects_divergence() {
    let mut a = comm_db();
    let mut b = comm_db();
    a.execute("UPDATE edges SET bytes = bytes + 1 WHERE connections = 9")
        .unwrap();
    assert!(!a.approx_eq(&b));
    b.execute("UPDATE edges SET bytes = bytes + 1 WHERE connections = 9")
        .unwrap();
    assert!(a.approx_eq(&b));
}

#[test]
fn error_kinds_match_the_paper_taxonomy() {
    let mut db = comm_db();
    // Syntax error.
    assert!(db.execute("SELEC * FROM edges").unwrap_err().is_syntax());
    // Imaginary column ("imaginary graph attribute").
    assert!(matches!(
        db.execute("SELECT latency FROM edges"),
        Err(SqlError::UnknownColumn(_))
    ));
    // Imaginary function.
    assert!(matches!(
        db.execute("SELECT TOTAL_BYTES(bytes) FROM edges"),
        Err(SqlError::UnknownFunction(_))
    ));
    // Argument error.
    assert!(matches!(
        db.execute("SELECT SUBSTR(source) FROM edges"),
        Err(SqlError::Arity { .. })
    ));
    // Operation error.
    assert!(matches!(
        db.execute("SELECT bytes / (connections - connections) FROM edges"),
        Err(SqlError::Execution(_))
    ));
}

proptest! {
    /// SQL filtering agrees with dataframe filtering for the same predicate.
    #[test]
    fn sql_where_matches_dataframe_filter(values in prop::collection::vec(0i64..10_000, 1..60), threshold in 0i64..10_000) {
        let frame = DataFrame::from_columns(vec![
            ("x".to_string(), Column::from_values(values.clone())),
        ]).unwrap();
        let mut db = Database::new();
        db.create_table("t", frame.clone());
        let sql_rows = db
            .execute(&format!("SELECT x FROM t WHERE x >= {threshold}"))
            .unwrap()
            .rows()
            .unwrap()
            .n_rows();
        let df_rows = frame
            .filter_by("x", dataframe::ops::CmpOp::Ge, AttrValue::Int(threshold))
            .unwrap()
            .n_rows();
        prop_assert_eq!(sql_rows, df_rows);
    }

    /// GROUP BY SUM agrees with the dataframe group-by aggregation.
    #[test]
    fn sql_group_sum_matches_dataframe(rows in prop::collection::vec(("[a-c]", 0i64..1_000), 1..60)) {
        let keys: Vec<&str> = rows.iter().map(|(k, _)| k.as_str()).collect();
        let vals: Vec<i64> = rows.iter().map(|(_, v)| *v).collect();
        let frame = DataFrame::from_columns(vec![
            ("k".to_string(), Column::from_values(keys)),
            ("v".to_string(), Column::from_values(vals)),
        ]).unwrap();
        let mut db = Database::new();
        db.create_table("t", frame.clone());
        let sql = db
            .execute("SELECT k, SUM(v) AS total FROM t GROUP BY k ORDER BY k")
            .unwrap();
        let sql = sql.rows().unwrap();
        let df = frame
            .group_agg("k", "v", dataframe::ops::AggFunc::Sum, "total")
            .unwrap()
            .sort_values(&["k"], true)
            .unwrap();
        prop_assert_eq!(sql.n_rows(), df.n_rows());
        for i in 0..sql.n_rows() {
            prop_assert!(sql.value(i, "total").unwrap().approx_eq(df.value(i, "total").unwrap()));
        }
    }

    /// UPDATE affects exactly the rows the WHERE clause selects, and DELETE
    /// plus the kept remainder partition the table.
    #[test]
    fn update_and_delete_row_accounting(values in prop::collection::vec(0i64..100, 1..50), threshold in 0i64..100) {
        let frame = DataFrame::from_columns(vec![
            ("x".to_string(), Column::from_values(values.clone())),
        ]).unwrap();
        let mut db = Database::new();
        db.create_table("t", frame);
        let matching = values.iter().filter(|&&v| v < threshold).count();
        let updated = db
            .execute(&format!("UPDATE t SET x = x WHERE x < {threshold}"))
            .unwrap()
            .affected()
            .unwrap();
        prop_assert_eq!(updated, matching);
        let deleted = db
            .execute(&format!("DELETE FROM t WHERE x < {threshold}"))
            .unwrap()
            .affected()
            .unwrap();
        prop_assert_eq!(deleted, matching);
        let remaining = db.table("t").unwrap().n_rows();
        prop_assert_eq!(remaining + deleted, values.len());
    }
}
