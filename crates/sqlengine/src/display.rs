//! Pretty-printing: renders an AST back to parseable SQL text.
//!
//! The printer is the inverse of the parser up to AST equality:
//! `parse(pretty_print(ast)) == ast` for every representable statement
//! (the property tests exercise this, both over generated ASTs and over
//! the benchmark's golden corpus). To make the inverse unconditional the
//! printer fully parenthesizes compound expressions — the parser folds
//! parentheses away, so the reparsed tree is identical regardless of
//! operator precedence.

use crate::ast::{
    BinaryOp, DeleteStmt, Expr, InsertStmt, Join, JoinKind, OrderKey, SelectItem, SelectStmt,
    Statement, TableRef, UpdateStmt,
};
use netgraph::AttrValue;
use std::fmt;

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(s) => write!(f, "{s}"),
            Statement::Update(s) => write!(f, "{s}"),
            Statement::Insert(s) => write!(f, "{s}"),
            Statement::Delete(s) => write!(f, "{s}"),
            Statement::Explain(inner) => write!(f, "EXPLAIN {inner}"),
        }
    }
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, " FROM {}", self.from)?;
        for join in &self.joins {
            write!(f, " {join}")?;
        }
        if let Some(pred) = &self.where_clause {
            write!(f, " WHERE {pred}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, expr) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{expr}")?;
            }
        }
        if let Some(pred) = &self.having {
            write!(f, " HAVING {pred}")?;
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, key) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{key}")?;
            }
        }
        if let Some(limit) = self.limit {
            write!(f, " LIMIT {limit}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => write!(f, "*"),
            SelectItem::Expr { expr, alias } => {
                write!(f, "{expr}")?;
                if let Some(alias) = alias {
                    write!(f, " AS {alias}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if let Some(alias) = &self.alias {
            write!(f, " AS {alias}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Join {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            JoinKind::Inner => "JOIN",
            JoinKind::Left => "LEFT JOIN",
        };
        write!(f, "{kind} {} ON {}", self.table, self.on)
    }
}

impl fmt::Display for OrderKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}",
            self.expr,
            if self.ascending { "ASC" } else { "DESC" }
        )
    }
}

impl fmt::Display for UpdateStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UPDATE {} SET ", self.table)?;
        for (i, (column, value)) in self.assignments.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{column} = {value}")?;
        }
        if let Some(pred) = &self.where_clause {
            write!(f, " WHERE {pred}")?;
        }
        Ok(())
    }
}

impl fmt::Display for InsertStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "INSERT INTO {}", self.table)?;
        if !self.columns.is_empty() {
            write!(f, " ({})", self.columns.join(", "))?;
        }
        write!(f, " VALUES ")?;
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "(")?;
            for (j, value) in row.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{value}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl fmt::Display for DeleteStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DELETE FROM {}", self.table)?;
        if let Some(pred) = &self.where_clause {
            write!(f, " WHERE {pred}")?;
        }
        Ok(())
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "!=",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
        };
        write!(f, "{op}")
    }
}

fn write_literal(f: &mut fmt::Formatter<'_>, value: &AttrValue) -> fmt::Result {
    match value {
        AttrValue::Null => write!(f, "NULL"),
        AttrValue::Bool(true) => write!(f, "TRUE"),
        AttrValue::Bool(false) => write!(f, "FALSE"),
        AttrValue::Int(i) => write!(f, "{i}"),
        // Rust's float Display never uses exponent notation, so the lexer
        // re-reads the exact digits; the parser's whole-number folding to
        // Int is absorbed by AttrValue's numeric-coercing equality.
        AttrValue::Float(x) => write!(f, "{x}"),
        AttrValue::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
        // Lists are not expressible as SQL literals; they do not occur in
        // parsed ASTs.
        AttrValue::List(_) => write!(f, "NULL"),
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(value) => write_literal(f, value),
            Expr::Column { table, name } => match table {
                Some(table) => write!(f, "{table}.{name}"),
                None => write!(f, "{name}"),
            },
            Expr::Neg(inner) => write!(f, "(-{inner})"),
            Expr::Not(inner) => write!(f, "(NOT {inner})"),
            Expr::Binary { left, op, right } => write!(f, "({left} {op} {right})"),
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, item) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "))")
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "({expr} {}LIKE {pattern})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(
                f,
                "({expr} {}BETWEEN {low} AND {high})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Function { name, args } => {
                write!(f, "{name}(")?;
                for (i, arg) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{arg}")?;
                }
                write!(f, ")")
            }
            Expr::Aggregate { func, arg } => match arg {
                Some(arg) => write!(f, "{}({arg})", func.name()),
                None => write!(f, "{}(*)", func.name()),
            },
            Expr::Case { arms, otherwise } => {
                write!(f, "CASE")?;
                for (condition, result) in arms {
                    write!(f, " WHEN {condition} THEN {result}")?;
                }
                if let Some(otherwise) = otherwise {
                    write!(f, " ELSE {otherwise}")?;
                }
                write!(f, " END")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::{parse_statement, parse_statements};

    #[test]
    fn golden_style_statements_round_trip() {
        let corpus = [
            "SELECT COUNT(*) AS n FROM nodes",
            "SELECT id FROM nodes WHERE id LIKE '15.76%' ORDER BY id ASC",
            "SELECT source, SUM(bytes) AS sent FROM edges GROUP BY source \
             ORDER BY sent DESC, source ASC LIMIT 3",
            "SELECT DISTINCT prefix16 FROM nodes ORDER BY prefix16 ASC",
            "UPDATE nodes SET label = 'app:production' WHERE (id LIKE '15.76%')",
            "DELETE FROM edges WHERE (packets < 10)",
            "INSERT INTO nodes (id, prefix16) VALUES ('10.0.0.1', '10.0')",
            "SELECT n.id FROM nodes AS n LEFT JOIN edges AS e ON (n.id = e.source) \
             WHERE (e.bytes IS NOT NULL)",
            "SELECT CASE WHEN (bytes < 100) THEN 0 ELSE 1 END AS tier FROM edges",
            "SELECT * FROM edges WHERE ((bytes BETWEEN 10 AND 20) \
             AND (source IN ('a', 'b')))",
        ];
        for sql in corpus {
            let ast = parse_statement(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
            let printed = ast.to_string();
            let reparsed = parse_statement(&printed)
                .unwrap_or_else(|e| panic!("pretty-printed `{printed}` failed to parse: {e}"));
            assert_eq!(ast, reparsed, "round trip changed the AST for `{sql}`");
        }
    }

    #[test]
    fn multi_statement_scripts_round_trip() {
        let script = "UPDATE edges SET bytes = (bytes / 2) WHERE (source = 'a');\n\
                      SELECT SUM(bytes) AS total FROM edges";
        let statements = parse_statements(script).unwrap();
        let printed: Vec<String> = statements.iter().map(|s| s.to_string()).collect();
        let reparsed = parse_statements(&printed.join(";\n")).unwrap();
        assert_eq!(statements, reparsed);
    }
}
