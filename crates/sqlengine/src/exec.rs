//! Statement execution: evaluates parsed statements against a [`Database`].
//!
//! The evaluator is a straightforward row-at-a-time interpreter: the `FROM`
//! clause and joins build a working set of rows with qualified column names,
//! `WHERE` filters them, optional grouping partitions them, and the
//! projection/`ORDER BY`/`LIMIT` stages shape the output frame. There is no
//! query optimizer — the benchmark graphs are small (hundreds of rows) and
//! determinism matters more than speed here.

use crate::ast::*;
use crate::database::{Database, QueryResult};
use crate::error::{Result, SqlError};
use crate::functions::{call_scalar, like_match};
use dataframe::{Column, DataFrame};
use netgraph::AttrValue;
use std::cmp::Ordering;

/// Executes a parsed statement against the database.
pub fn execute_statement(db: &mut Database, stmt: &Statement) -> Result<QueryResult> {
    match stmt {
        Statement::Select(s) => Ok(QueryResult::Rows(execute_select(db, s)?)),
        Statement::Update(s) => Ok(QueryResult::Affected(execute_update(db, s)?)),
        Statement::Insert(s) => Ok(QueryResult::Affected(execute_insert(db, s)?)),
        Statement::Delete(s) => Ok(QueryResult::Affected(execute_delete(db, s)?)),
    }
}

// ------------------------------------------------------------------ rowsets

/// A working set of rows whose columns carry an optional table qualifier.
#[derive(Debug, Clone)]
struct RowSet {
    /// `(qualifier, column name)` per column.
    columns: Vec<(Option<String>, String)>,
    rows: Vec<Vec<AttrValue>>,
}

impl RowSet {
    fn from_table(db: &Database, table: &TableRef) -> Result<RowSet> {
        let frame = db.table(&table.name)?;
        let qualifier = table.alias.clone().unwrap_or_else(|| table.name.clone());
        let columns = frame
            .column_names()
            .iter()
            .map(|c| (Some(qualifier.clone()), c.to_string()))
            .collect();
        let rows = (0..frame.n_rows())
            .map(|i| frame.row(i).expect("in range"))
            .collect();
        Ok(RowSet { columns, rows })
    }

    /// Index of the column matching `name` with optional `qualifier`.
    fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        let matches: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .filter(|(_, (q, n))| {
                n == name
                    && qualifier
                        .map(|want| q.as_deref() == Some(want))
                        .unwrap_or(true)
            })
            .map(|(i, _)| i)
            .collect();
        match matches.as_slice() {
            [] => Err(SqlError::UnknownColumn(match qualifier {
                Some(q) => format!("{q}.{name}"),
                None => name.to_string(),
            })),
            [one] => Ok(*one),
            // Ambiguous unqualified reference: prefer the leftmost, which is
            // what the permissive engines the paper targets do in practice.
            [first, ..] => Ok(*first),
        }
    }
}

// --------------------------------------------------------------- evaluation

/// Evaluates a non-aggregate expression against one row.
fn eval_row(rs: &RowSet, row: &[AttrValue], expr: &Expr) -> Result<AttrValue> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column { table, name } => {
            let idx = rs.resolve(table.as_deref(), name)?;
            Ok(row[idx].clone())
        }
        Expr::Neg(inner) => {
            let v = eval_row(rs, row, inner)?;
            match v {
                AttrValue::Int(i) => Ok(AttrValue::Int(-i)),
                AttrValue::Float(f) => Ok(AttrValue::Float(-f)),
                AttrValue::Null => Ok(AttrValue::Null),
                other => Err(SqlError::Type(format!(
                    "cannot negate a {}",
                    other.type_name()
                ))),
            }
        }
        Expr::Not(inner) => {
            let v = eval_row(rs, row, inner)?;
            Ok(AttrValue::Bool(!v.is_truthy()))
        }
        Expr::Binary { left, op, right } => {
            let l = eval_row(rs, row, left)?;
            let r = eval_row(rs, row, right)?;
            eval_binary(&l, *op, &r)
        }
        Expr::IsNull { expr, negated } => {
            let v = eval_row(rs, row, expr)?;
            Ok(AttrValue::Bool(v.is_null() != *negated))
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval_row(rs, row, expr)?;
            let mut found = false;
            for item in list {
                if eval_row(rs, row, item)?.approx_eq(&v) {
                    found = true;
                    break;
                }
            }
            Ok(AttrValue::Bool(found != *negated))
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval_row(rs, row, expr)?;
            let p = eval_row(rs, row, pattern)?;
            match (v.as_str(), p.as_str()) {
                (Some(text), Some(pat)) => Ok(AttrValue::Bool(like_match(text, pat) != *negated)),
                _ => Ok(AttrValue::Bool(false)),
            }
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval_row(rs, row, expr)?;
            let lo = eval_row(rs, row, low)?;
            let hi = eval_row(rs, row, high)?;
            let inside = matches!(
                v.partial_cmp_value(&lo),
                Some(Ordering::Greater | Ordering::Equal)
            ) && matches!(
                v.partial_cmp_value(&hi),
                Some(Ordering::Less | Ordering::Equal)
            );
            Ok(AttrValue::Bool(inside != *negated))
        }
        Expr::Function { name, args } => {
            let values: Vec<AttrValue> = args
                .iter()
                .map(|a| eval_row(rs, row, a))
                .collect::<Result<_>>()?;
            call_scalar(name, &values)
        }
        Expr::Aggregate { func, .. } => Err(SqlError::Execution(format!(
            "aggregate {} used outside of an aggregating query",
            func.name()
        ))),
        Expr::Case { arms, otherwise } => {
            for (cond, result) in arms {
                if eval_row(rs, row, cond)?.is_truthy() {
                    return eval_row(rs, row, result);
                }
            }
            match otherwise {
                Some(e) => eval_row(rs, row, e),
                None => Ok(AttrValue::Null),
            }
        }
    }
}

/// Evaluates an expression over a *group* of rows, computing aggregates over
/// the whole group and non-aggregate parts on the group's first row.
fn eval_group(rs: &RowSet, group: &[usize], expr: &Expr) -> Result<AttrValue> {
    match expr {
        Expr::Aggregate { func, arg } => {
            let mut values: Vec<AttrValue> = Vec::with_capacity(group.len());
            for &row_idx in group {
                match arg {
                    Some(a) => values.push(eval_row(rs, &rs.rows[row_idx], a)?),
                    None => values.push(AttrValue::Int(1)),
                }
            }
            eval_aggregate(*func, &values)
        }
        Expr::Binary { left, op, right } => {
            let l = eval_group(rs, group, left)?;
            let r = eval_group(rs, group, right)?;
            eval_binary(&l, *op, &r)
        }
        Expr::Neg(inner) => {
            let v = eval_group(rs, group, inner)?;
            match v {
                AttrValue::Int(i) => Ok(AttrValue::Int(-i)),
                AttrValue::Float(f) => Ok(AttrValue::Float(-f)),
                other => Ok(other),
            }
        }
        Expr::Not(inner) => Ok(AttrValue::Bool(!eval_group(rs, group, inner)?.is_truthy())),
        Expr::Function { name, args } => {
            let values: Vec<AttrValue> = args
                .iter()
                .map(|a| eval_group(rs, group, a))
                .collect::<Result<_>>()?;
            call_scalar(name, &values)
        }
        Expr::Case { arms, otherwise } => {
            for (cond, result) in arms {
                if eval_group(rs, group, cond)?.is_truthy() {
                    return eval_group(rs, group, result);
                }
            }
            match otherwise {
                Some(e) => eval_group(rs, group, e),
                None => Ok(AttrValue::Null),
            }
        }
        // Everything else is evaluated against the group's first row.
        other => match group.first() {
            Some(&row_idx) => eval_row(rs, &rs.rows[row_idx], other),
            None => Ok(AttrValue::Null),
        },
    }
}

fn eval_aggregate(func: AggregateFunc, values: &[AttrValue]) -> Result<AttrValue> {
    let numeric: Vec<f64> = values.iter().filter_map(AttrValue::as_f64).collect();
    Ok(match func {
        AggregateFunc::Count => {
            AttrValue::Int(values.iter().filter(|v| !v.is_null()).count() as i64)
        }
        AggregateFunc::Sum => AttrValue::Float(numeric.iter().sum()),
        AggregateFunc::Avg => {
            if numeric.is_empty() {
                AttrValue::Null
            } else {
                AttrValue::Float(numeric.iter().sum::<f64>() / numeric.len() as f64)
            }
        }
        AggregateFunc::Min => min_max_value(values, Ordering::Less),
        AggregateFunc::Max => min_max_value(values, Ordering::Greater),
    })
}

fn min_max_value(values: &[AttrValue], keep: Ordering) -> AttrValue {
    let mut best: Option<&AttrValue> = None;
    for v in values.iter().filter(|v| !v.is_null()) {
        best = match best {
            None => Some(v),
            Some(b) => {
                if v.partial_cmp_value(b) == Some(keep) {
                    Some(v)
                } else {
                    Some(b)
                }
            }
        };
    }
    best.cloned().unwrap_or(AttrValue::Null)
}

fn eval_binary(l: &AttrValue, op: BinaryOp, r: &AttrValue) -> Result<AttrValue> {
    use BinaryOp::*;
    match op {
        And => return Ok(AttrValue::Bool(l.is_truthy() && r.is_truthy())),
        Or => return Ok(AttrValue::Bool(l.is_truthy() || r.is_truthy())),
        Eq => return Ok(AttrValue::Bool(l.approx_eq(r))),
        NotEq => return Ok(AttrValue::Bool(!l.approx_eq(r))),
        Lt | LtEq | Gt | GtEq => {
            let ord = l.partial_cmp_value(r);
            let result = matches!(
                (op, ord),
                (Lt, Some(Ordering::Less))
                    | (LtEq, Some(Ordering::Less | Ordering::Equal))
                    | (Gt, Some(Ordering::Greater))
                    | (GtEq, Some(Ordering::Greater | Ordering::Equal))
            );
            return Ok(AttrValue::Bool(result));
        }
        _ => {}
    }
    // Arithmetic. String + string concatenates; NULL propagates.
    if l.is_null() || r.is_null() {
        return Ok(AttrValue::Null);
    }
    if op == Add {
        if let (Some(a), Some(b)) = (l.as_str(), r.as_str()) {
            return Ok(AttrValue::Str(format!("{a}{b}")));
        }
    }
    let (a, b) = match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(SqlError::Type(format!(
                "cannot apply arithmetic to {} and {}",
                l.type_name(),
                r.type_name()
            )))
        }
    };
    let result = match op {
        Add => a + b,
        Sub => a - b,
        Mul => a * b,
        Div => {
            if b == 0.0 {
                return Err(SqlError::Execution("division by zero".to_string()));
            }
            a / b
        }
        Mod => {
            if b == 0.0 {
                return Err(SqlError::Execution("modulo by zero".to_string()));
            }
            a % b
        }
        _ => unreachable!("comparisons handled above"),
    };
    // Keep integer results integral when both operands were integers.
    if matches!((l, r), (AttrValue::Int(_), AttrValue::Int(_)))
        && result.fract() == 0.0
        && matches!(op, Add | Sub | Mul | Mod)
    {
        Ok(AttrValue::Int(result as i64))
    } else {
        Ok(AttrValue::Float(result))
    }
}

// ------------------------------------------------------------------- select

fn execute_select(db: &Database, stmt: &SelectStmt) -> Result<DataFrame> {
    // FROM + JOINs.
    let mut rs = RowSet::from_table(db, &stmt.from)?;
    for join in &stmt.joins {
        rs = apply_join(db, rs, join)?;
    }

    // WHERE.
    if let Some(pred) = &stmt.where_clause {
        let mut kept = Vec::new();
        for row in rs.rows {
            if eval_row(
                &RowSet {
                    columns: rs.columns.clone(),
                    rows: vec![],
                },
                &row,
                pred,
            )?
            .is_truthy()
            {
                kept.push(row);
            }
        }
        rs.rows = kept;
    }

    let has_aggregates = stmt.items.iter().any(|i| match i {
        SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
        SelectItem::Wildcard => false,
    }) || stmt
        .having
        .as_ref()
        .map(Expr::contains_aggregate)
        .unwrap_or(false);

    let (mut out, order_rows): (DataFrame, Vec<Vec<AttrValue>>) =
        if !stmt.group_by.is_empty() || has_aggregates {
            project_grouped(&rs, stmt)?
        } else {
            project_rows(&rs, stmt)?
        };

    // DISTINCT.
    if stmt.distinct {
        let mut seen: Vec<String> = Vec::new();
        let mut keep: Vec<usize> = Vec::new();
        for i in 0..out.n_rows() {
            let key = out
                .row(i)
                .expect("in range")
                .iter()
                .map(|v| format!("{}:{v}", v.type_name()))
                .collect::<Vec<_>>()
                .join("\u{1f}");
            if !seen.contains(&key) {
                seen.push(key);
                keep.push(i);
            }
        }
        out = out.take(&keep).expect("indices valid");
    }

    // ORDER BY: keys may reference output aliases or source columns.
    if !stmt.order_by.is_empty() {
        let mut indices: Vec<usize> = (0..out.n_rows()).collect();
        let mut keys: Vec<Vec<AttrValue>> = Vec::with_capacity(out.n_rows());
        for i in 0..out.n_rows() {
            let mut row_keys = Vec::new();
            for key in &stmt.order_by {
                row_keys.push(order_key_value(&out, &rs, &order_rows, i, &key.expr)?);
            }
            keys.push(row_keys);
        }
        indices.sort_by(|&a, &b| {
            for (k, spec) in stmt.order_by.iter().enumerate() {
                let ord = keys[a][k]
                    .partial_cmp_value(&keys[b][k])
                    .unwrap_or(Ordering::Equal);
                let ord = if spec.ascending { ord } else { ord.reverse() };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
        out = out.take(&indices).expect("indices valid");
    }

    // LIMIT.
    if let Some(limit) = stmt.limit {
        out = out.head(limit);
    }
    Ok(out)
}

/// Resolves one ORDER BY key for output row `i`: an expression naming an
/// output column uses the projected value, anything else is evaluated
/// against the pre-projection row that produced this output row.
fn order_key_value(
    out: &DataFrame,
    rs: &RowSet,
    order_rows: &[Vec<AttrValue>],
    i: usize,
    expr: &Expr,
) -> Result<AttrValue> {
    if let Expr::Column { table: None, name } = expr {
        if out.has_column(name) {
            return Ok(out.value(i, name).expect("in range").clone());
        }
    }
    match order_rows.get(i) {
        Some(row) => eval_row(rs, row, expr),
        None => Err(SqlError::Execution(
            "ORDER BY expression cannot be resolved".to_string(),
        )),
    }
}

fn apply_join(db: &Database, left: RowSet, join: &Join) -> Result<RowSet> {
    let right = RowSet::from_table(db, &join.table)?;
    let mut columns = left.columns.clone();
    columns.extend(right.columns.clone());
    let combined = RowSet {
        columns: columns.clone(),
        rows: vec![],
    };
    let right_width = right.columns.len();
    let mut rows = Vec::new();
    for lrow in &left.rows {
        let mut matched = false;
        for rrow in &right.rows {
            let mut candidate = lrow.clone();
            candidate.extend(rrow.iter().cloned());
            if eval_row(&combined, &candidate, &join.on)?.is_truthy() {
                rows.push(candidate);
                matched = true;
            }
        }
        if !matched && join.kind == JoinKind::Left {
            let mut candidate = lrow.clone();
            candidate.extend(std::iter::repeat(AttrValue::Null).take(right_width));
            rows.push(candidate);
        }
    }
    Ok(RowSet { columns, rows })
}

/// Projection without grouping: one output row per input row. Returns the
/// output frame plus, for each output row, the source row (used by ORDER BY).
fn project_rows(rs: &RowSet, stmt: &SelectStmt) -> Result<(DataFrame, Vec<Vec<AttrValue>>)> {
    let (names, exprs) = projection_list(rs, stmt)?;
    let mut columns: Vec<Column> = names.iter().map(|_| Column::new()).collect();
    for row in &rs.rows {
        for (i, expr) in exprs.iter().enumerate() {
            columns[i].push(eval_row(rs, row, expr)?);
        }
    }
    let frame = build_frame(names, columns)?;
    Ok((frame, rs.rows.clone()))
}

/// Projection with grouping (explicit GROUP BY or implicit single-group
/// aggregation). Returns the output frame plus each group's first source row
/// for ORDER BY resolution.
fn project_grouped(rs: &RowSet, stmt: &SelectStmt) -> Result<(DataFrame, Vec<Vec<AttrValue>>)> {
    // Partition row indices by the GROUP BY key values.
    let mut groups: Vec<(Vec<AttrValue>, Vec<usize>)> = Vec::new();
    if stmt.group_by.is_empty() {
        groups.push((Vec::new(), (0..rs.rows.len()).collect()));
    } else {
        for (idx, row) in rs.rows.iter().enumerate() {
            let key: Vec<AttrValue> = stmt
                .group_by
                .iter()
                .map(|e| eval_row(rs, row, e))
                .collect::<Result<_>>()?;
            match groups.iter_mut().find(|(k, _)| {
                k.iter().zip(&key).all(|(a, b)| a.approx_eq(b)) && k.len() == key.len()
            }) {
                Some((_, members)) => members.push(idx),
                None => groups.push((key, vec![idx])),
            }
        }
    }

    // HAVING.
    if let Some(having) = &stmt.having {
        groups.retain(|(_, members)| {
            eval_group(rs, members, having)
                .map(|v| v.is_truthy())
                .unwrap_or(false)
        });
    }

    let (names, exprs) = projection_list(rs, stmt)?;
    let mut columns: Vec<Column> = names.iter().map(|_| Column::new()).collect();
    let mut order_rows = Vec::new();
    for (_, members) in &groups {
        for (i, expr) in exprs.iter().enumerate() {
            columns[i].push(eval_group(rs, members, expr)?);
        }
        order_rows.push(match members.first() {
            Some(&first) => rs.rows[first].clone(),
            None => vec![AttrValue::Null; rs.columns.len()],
        });
    }
    let frame = build_frame(names, columns)?;
    Ok((frame, order_rows))
}

/// Expands the projection list into `(output name, expression)` pairs.
fn projection_list(rs: &RowSet, stmt: &SelectStmt) -> Result<(Vec<String>, Vec<Expr>)> {
    let mut names = Vec::new();
    let mut exprs = Vec::new();
    for item in &stmt.items {
        match item {
            SelectItem::Wildcard => {
                for (qualifier, name) in &rs.columns {
                    // Use the bare name unless it would collide with an
                    // earlier output column.
                    let out_name = if names.contains(name) {
                        format!("{}.{}", qualifier.clone().unwrap_or_default(), name)
                    } else {
                        name.clone()
                    };
                    names.push(out_name);
                    exprs.push(Expr::Column {
                        table: qualifier.clone(),
                        name: name.clone(),
                    });
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| expr.default_name());
                names.push(name);
                exprs.push(expr.clone());
            }
        }
    }
    Ok((names, exprs))
}

fn build_frame(names: Vec<String>, columns: Vec<Column>) -> Result<DataFrame> {
    let mut unique_names: Vec<String> = Vec::with_capacity(names.len());
    for name in names {
        let mut candidate = name.clone();
        let mut suffix = 1;
        while unique_names.contains(&candidate) {
            candidate = format!("{name}_{suffix}");
            suffix += 1;
        }
        unique_names.push(candidate);
    }
    DataFrame::from_columns(unique_names.into_iter().zip(columns).collect())
        .map_err(|e| SqlError::Execution(e.to_string()))
}

// ---------------------------------------------------------------- mutations

fn execute_update(db: &mut Database, stmt: &UpdateStmt) -> Result<usize> {
    let table_ref = TableRef {
        name: stmt.table.clone(),
        alias: None,
    };
    let rs = RowSet::from_table(db, &table_ref)?;
    // Determine which rows match and the new values before mutating.
    let mut updates: Vec<(usize, Vec<(String, AttrValue)>)> = Vec::new();
    for (idx, row) in rs.rows.iter().enumerate() {
        let matches = match &stmt.where_clause {
            Some(pred) => eval_row(&rs, row, pred)?.is_truthy(),
            None => true,
        };
        if matches {
            let mut assigned = Vec::new();
            for (col, expr) in &stmt.assignments {
                assigned.push((col.clone(), eval_row(&rs, row, expr)?));
            }
            updates.push((idx, assigned));
        }
    }
    let affected = updates.len();
    let frame = db.table_mut(&stmt.table)?;
    for (row, assignments) in updates {
        for (col, value) in assignments {
            if !frame.has_column(&col) {
                return Err(SqlError::UnknownColumn(col));
            }
            frame
                .set_value(row, &col, value)
                .map_err(|e| SqlError::Execution(e.to_string()))?;
        }
    }
    Ok(affected)
}

fn execute_insert(db: &mut Database, stmt: &InsertStmt) -> Result<usize> {
    // Literal-only row evaluation (no row context).
    let empty = RowSet {
        columns: vec![],
        rows: vec![],
    };
    let frame = db.table(&stmt.table)?.clone();
    let target_columns: Vec<String> = if stmt.columns.is_empty() {
        frame.column_names().iter().map(|s| s.to_string()).collect()
    } else {
        stmt.columns.clone()
    };
    for col in &target_columns {
        if !frame.has_column(col) {
            return Err(SqlError::UnknownColumn(col.clone()));
        }
    }
    let mut new_rows = Vec::new();
    for row_exprs in &stmt.rows {
        if row_exprs.len() != target_columns.len() {
            return Err(SqlError::Execution(format!(
                "INSERT supplies {} values for {} columns",
                row_exprs.len(),
                target_columns.len()
            )));
        }
        let mut by_name: Vec<(String, AttrValue)> = Vec::new();
        for (col, expr) in target_columns.iter().zip(row_exprs) {
            by_name.push((col.clone(), eval_row(&empty, &[], expr)?));
        }
        // Fill unspecified columns with NULL, in table order.
        let full_row: Vec<AttrValue> = frame
            .column_names()
            .iter()
            .map(|c| {
                by_name
                    .iter()
                    .find(|(name, _)| name == c)
                    .map(|(_, v)| v.clone())
                    .unwrap_or(AttrValue::Null)
            })
            .collect();
        new_rows.push(full_row);
    }
    let affected = new_rows.len();
    let frame = db.table_mut(&stmt.table)?;
    for row in new_rows {
        frame
            .push_row(row)
            .map_err(|e| SqlError::Execution(e.to_string()))?;
    }
    Ok(affected)
}

fn execute_delete(db: &mut Database, stmt: &DeleteStmt) -> Result<usize> {
    let table_ref = TableRef {
        name: stmt.table.clone(),
        alias: None,
    };
    let rs = RowSet::from_table(db, &table_ref)?;
    let mut keep = Vec::new();
    for (idx, row) in rs.rows.iter().enumerate() {
        let matches = match &stmt.where_clause {
            Some(pred) => eval_row(&rs, row, pred)?.is_truthy(),
            None => true,
        };
        if !matches {
            keep.push(idx);
        }
    }
    let affected = rs.rows.len() - keep.len();
    let frame = db.table_mut(&stmt.table)?;
    *frame = frame
        .take(&keep)
        .map_err(|e| SqlError::Execution(e.to_string()))?;
    Ok(affected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataframe::Column;

    fn test_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "nodes",
            DataFrame::from_columns(vec![
                (
                    "id".to_string(),
                    Column::from_values(["10.0.1.1", "10.0.2.2", "10.1.3.3", "10.1.4.4"]),
                ),
                (
                    "role".to_string(),
                    Column::from_values(["core", "edge", "edge", "leaf"]),
                ),
            ])
            .unwrap(),
        );
        db.create_table(
            "edges",
            DataFrame::from_columns(vec![
                (
                    "source".to_string(),
                    Column::from_values(["10.0.1.1", "10.0.1.1", "10.0.2.2", "10.1.3.3"]),
                ),
                (
                    "target".to_string(),
                    Column::from_values(["10.0.2.2", "10.1.3.3", "10.1.3.3", "10.1.4.4"]),
                ),
                (
                    "bytes".to_string(),
                    Column::from_values([100i64, 200, 300, 400]),
                ),
                ("packets".to_string(), Column::from_values([1i64, 2, 3, 4])),
            ])
            .unwrap(),
        );
        db
    }

    fn select(db: &mut Database, sql: &str) -> DataFrame {
        db.execute(sql).unwrap().rows().unwrap().clone()
    }

    #[test]
    fn select_star_and_where() {
        let mut db = test_db();
        let all = select(&mut db, "SELECT * FROM edges");
        assert_eq!(all.n_rows(), 4);
        assert_eq!(
            all.column_names(),
            vec!["source", "target", "bytes", "packets"]
        );
        let heavy = select(
            &mut db,
            "SELECT source, bytes FROM edges WHERE bytes >= 300",
        );
        assert_eq!(heavy.n_rows(), 2);
    }

    #[test]
    fn arithmetic_and_alias() {
        let mut db = test_db();
        let out = select(
            &mut db,
            "SELECT bytes * 2 AS double_bytes FROM edges WHERE packets = 1",
        );
        assert_eq!(out.value(0, "double_bytes").unwrap(), &AttrValue::Int(200));
    }

    #[test]
    fn aggregate_without_group_by() {
        let mut db = test_db();
        let out = select(
            &mut db,
            "SELECT COUNT(*) AS n, SUM(bytes) AS total, AVG(bytes) AS mean FROM edges",
        );
        assert_eq!(out.n_rows(), 1);
        assert_eq!(out.value(0, "n").unwrap(), &AttrValue::Int(4));
        assert_eq!(out.value(0, "total").unwrap(), &AttrValue::Float(1000.0));
        assert_eq!(out.value(0, "mean").unwrap(), &AttrValue::Float(250.0));
    }

    #[test]
    fn group_by_having_order_limit() {
        let mut db = test_db();
        let out = select(
            &mut db,
            "SELECT source, SUM(bytes) AS total FROM edges GROUP BY source \
             HAVING SUM(bytes) > 250 ORDER BY total DESC LIMIT 1",
        );
        assert_eq!(out.n_rows(), 1);
        assert_eq!(out.value(0, "source").unwrap().as_str(), Some("10.1.3.3"));
        assert_eq!(out.value(0, "total").unwrap(), &AttrValue::Float(400.0));
    }

    #[test]
    fn join_inner_and_left() {
        let mut db = test_db();
        let inner = select(
            &mut db,
            "SELECT e.source, n.role FROM edges e JOIN nodes n ON e.source = n.id",
        );
        assert_eq!(inner.n_rows(), 4);
        assert_eq!(inner.value(0, "role").unwrap().as_str(), Some("core"));

        db.execute("DELETE FROM nodes WHERE id = '10.0.2.2'")
            .unwrap();
        let left = select(
            &mut db,
            "SELECT e.source, n.role FROM edges e LEFT JOIN nodes n ON e.source = n.id",
        );
        assert_eq!(left.n_rows(), 4);
        assert!(left.value(2, "role").unwrap().is_null());
    }

    #[test]
    fn distinct_and_in_and_like() {
        let mut db = test_db();
        let d = select(&mut db, "SELECT DISTINCT source FROM edges");
        assert_eq!(d.n_rows(), 3);
        let i = select(
            &mut db,
            "SELECT * FROM nodes WHERE role IN ('core', 'leaf')",
        );
        assert_eq!(i.n_rows(), 2);
        let l = select(&mut db, "SELECT * FROM nodes WHERE id LIKE '10.0%'");
        assert_eq!(l.n_rows(), 2);
    }

    #[test]
    fn case_expression_and_functions() {
        let mut db = test_db();
        let out = select(
            &mut db,
            "SELECT id, CASE WHEN id LIKE '10.0%' THEN 'prod' ELSE 'lab' END AS env, \
             IP_PREFIX(id, 2) AS prefix FROM nodes ORDER BY id",
        );
        assert_eq!(out.value(0, "env").unwrap().as_str(), Some("prod"));
        assert_eq!(out.value(3, "env").unwrap().as_str(), Some("lab"));
        assert_eq!(out.value(0, "prefix").unwrap().as_str(), Some("10.0"));
    }

    #[test]
    fn update_insert_delete_cycle() {
        let mut db = test_db();
        let n = db
            .execute("UPDATE nodes SET role = 'spine' WHERE id LIKE '10.1%'")
            .unwrap()
            .affected()
            .unwrap();
        assert_eq!(n, 2);
        let spines = select(&mut db, "SELECT * FROM nodes WHERE role = 'spine'");
        assert_eq!(spines.n_rows(), 2);

        let n = db
            .execute("INSERT INTO nodes (id, role) VALUES ('10.9.9.9', 'core')")
            .unwrap()
            .affected()
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(db.table("nodes").unwrap().n_rows(), 5);

        let n = db
            .execute("DELETE FROM nodes WHERE role = 'spine'")
            .unwrap()
            .affected()
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(db.table("nodes").unwrap().n_rows(), 3);
    }

    #[test]
    fn unknown_column_table_and_function_errors() {
        let mut db = test_db();
        assert!(matches!(
            db.execute("SELECT nope FROM nodes"),
            Err(SqlError::UnknownColumn(_))
        ));
        assert!(matches!(
            db.execute("SELECT * FROM ghosts"),
            Err(SqlError::UnknownTable(_))
        ));
        assert!(matches!(
            db.execute("SELECT FROBNICATE(id) FROM nodes"),
            Err(SqlError::UnknownFunction(_))
        ));
        assert!(matches!(
            db.execute("UPDATE nodes SET ghost = 1"),
            Err(SqlError::UnknownColumn(_))
        ));
    }

    #[test]
    fn division_by_zero_is_an_execution_error() {
        let mut db = test_db();
        assert!(matches!(
            db.execute("SELECT bytes / 0 FROM edges"),
            Err(SqlError::Execution(_))
        ));
    }

    #[test]
    fn order_by_source_column_not_in_projection() {
        let mut db = test_db();
        let out = select(&mut db, "SELECT source FROM edges ORDER BY bytes DESC");
        assert_eq!(out.value(0, "source").unwrap().as_str(), Some("10.1.3.3"));
    }

    #[test]
    fn string_concatenation_with_plus() {
        let mut db = test_db();
        let out = select(&mut db, "SELECT id + ':' + role AS tag FROM nodes LIMIT 1");
        assert_eq!(out.value(0, "tag").unwrap().as_str(), Some("10.0.1.1:core"));
    }

    #[test]
    fn between_and_is_null() {
        let mut db = test_db();
        let b = select(
            &mut db,
            "SELECT * FROM edges WHERE bytes BETWEEN 150 AND 350",
        );
        assert_eq!(b.n_rows(), 2);
        db.execute("INSERT INTO nodes (id) VALUES ('10.5.5.5')")
            .unwrap();
        let n = select(&mut db, "SELECT * FROM nodes WHERE role IS NULL");
        assert_eq!(n.n_rows(), 1);
        let nn = select(&mut db, "SELECT * FROM nodes WHERE role IS NOT NULL");
        assert_eq!(nn.n_rows(), 4);
    }

    #[test]
    fn implicit_group_aggregate_on_empty_table() {
        let mut db = Database::new();
        db.create_table(
            "t",
            DataFrame::from_columns(vec![("x".to_string(), Column::new())]).unwrap(),
        );
        let out = select(&mut db, "SELECT COUNT(*) AS n, SUM(x) AS s FROM t");
        assert_eq!(out.value(0, "n").unwrap(), &AttrValue::Int(0));
        assert_eq!(out.value(0, "s").unwrap(), &AttrValue::Float(0.0));
    }
}
